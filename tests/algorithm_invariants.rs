//! Cross-crate invariant tests: every bundled algorithm conserves the mean,
//! converges to the true average on well-connected graphs, and behaves
//! sensibly under the full simulator stack.

mod common;

use common::dumbbell_fixture;
use proptest::prelude::*;
use sparse_cut_gossip::prelude::*;

fn all_async_algorithms(graph: &Graph, partition: &Partition) -> Vec<Box<dyn EdgeTickHandler>> {
    vec![
        Box::new(VanillaGossip::new()),
        Box::new(WeightedConvexGossip::new(0.6).expect("valid alpha")),
        Box::new(RandomNeighborGossip::new(5)),
        Box::new(TwoTimeScaleGossip::for_graph(graph, 0.5).expect("valid momentum")),
        Box::new(
            SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                .expect("valid partition"),
        ),
    ]
}

#[test]
fn every_algorithm_conserves_the_mean_and_converges_on_the_dumbbell() {
    let (graph, partition) = dumbbell_fixture(10);
    let initial = InitialCondition::Uniform { lo: -3.0, hi: 5.0 }
        .generate(graph.node_count(), Some(&partition), 99)
        .expect("valid initial condition");
    let target = initial.mean();
    for handler in all_async_algorithms(&graph, &partition) {
        let name = handler.name().to_string();
        let config = SimulationConfig::new(17)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_time(100_000.0));
        let mut simulator =
            AsyncSimulator::new(&graph, initial.clone(), handler, config).expect("valid setup");
        let outcome = simulator.run().expect("run succeeds");
        assert!(outcome.converged(), "{name} did not converge");
        assert!(
            (outcome.final_values.mean() - target).abs() < 1e-6,
            "{name} drifted from the true average"
        );
        // Every node agrees with the average at convergence.
        for &value in outcome.final_values.as_slice() {
            assert!(
                (value - target).abs() < 1e-2,
                "{name} left node value {value} far from {target}"
            );
        }
    }
}

#[test]
fn synchronous_baselines_converge_and_conserve_mass() {
    let (graph, partition) = dumbbell_fixture(10);
    let initial = InitialCondition::AdversarialCut
        .generate(graph.node_count(), Some(&partition), 0)
        .expect("valid initial condition");
    for (name, handler) in [
        (
            "first-order diffusion",
            Box::new(FirstOrderDiffusion::new()) as Box<dyn RoundHandler>,
        ),
        (
            "second-order diffusion",
            Box::new(SecondOrderDiffusion::new(1.7).expect("valid beta")),
        ),
    ] {
        let config = SyncConfig::new()
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000));
        let mut simulator =
            SyncSimulator::new(&graph, initial.clone(), handler, config).expect("valid setup");
        let outcome = simulator.run().expect("run succeeds");
        assert!(outcome.converged(), "{name} did not converge");
        assert!(
            outcome.final_values.mean().abs() < 1e-8,
            "{name} did not conserve the zero mean"
        );
    }
}

#[test]
fn spectral_and_empirical_vanilla_times_agree_within_an_order_of_magnitude() {
    let graph = complete(16).expect("valid graph");
    let partition = Partition::from_block_one(&graph, &(0..8).map(NodeId).collect::<Vec<_>>())
        .expect("valid partition");
    let spectral = sparse_cut_gossip::core::bounds::t_van_spectral(&graph).expect("connected");
    let estimator =
        AveragingTimeEstimator::new(EstimatorConfig::new(5).with_runs(5).with_max_time(2_000.0));
    let empirical = estimator
        .estimate(&graph, &partition, VanillaGossip::new)
        .expect("estimation succeeds")
        .averaging_time;
    assert!(
        empirical < 10.0 * spectral && spectral < 10.0 * empirical.max(1e-3),
        "spectral {spectral} and empirical {empirical} estimates diverge"
    );
}

#[test]
fn algorithm_a_trace_shows_nonmonotone_variance_but_final_convergence() {
    // The hallmark of the non-convex update: the variance spikes at
    // transfers yet the run still converges — unlike any convex algorithm,
    // whose variance is monotone.
    let (graph, partition) = dumbbell_fixture(12);
    // The cut-aligned adversarial vector forces the non-convex transfer to do
    // real work (and hence to visibly spike the variance before mixing).
    let initial = InitialCondition::AdversarialCut
        .generate(graph.node_count(), Some(&partition), 4)
        .expect("valid initial condition");
    let algorithm = SparseCutAlgorithm::from_partition(
        &graph,
        &partition,
        SparseCutConfig::new().with_epoch_constant(1.0),
    )
    .expect("valid partition");
    let config = SimulationConfig::new(23)
        .with_trace(TraceConfig::every_ticks(1))
        .with_stopping_rule(StoppingRule::definition1().or_max_time(50_000.0));
    let mut simulator =
        AsyncSimulator::new(&graph, initial, algorithm, config).expect("valid setup");
    let outcome = simulator.run().expect("run succeeds");
    assert!(outcome.converged());
    let trace = outcome.trace.expect("trace requested");
    let variances: Vec<f64> = trace.variance_series().map(|(_, v)| v).collect();
    let increased_somewhere = variances.windows(2).any(|w| w[1] > w[0] + 1e-12);
    assert!(
        increased_somewhere,
        "expected at least one variance increase from a non-convex transfer"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_simulations_preserve_mass_for_every_seed(seed in 0u64..1000) {
        let (graph, partition) = dumbbell_fixture(6);
        let initial = InitialCondition::Gaussian { mean: 2.0, std: 1.0 }
            .generate(graph.node_count(), Some(&partition), seed)
            .expect("valid initial condition");
        let target = initial.mean();
        let algorithm = SparseCutAlgorithm::from_partition(
            &graph,
            &partition,
            SparseCutConfig::default(),
        )
        .expect("valid partition");
        let config = SimulationConfig::new(seed)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(20_000.0));
        let mut simulator =
            AsyncSimulator::new(&graph, initial, algorithm, config).expect("valid setup");
        let outcome = simulator.run().expect("run succeeds");
        prop_assert!((outcome.final_values.mean() - target).abs() < 1e-7);
    }

    #[test]
    fn prop_convex_runs_have_monotone_variance_traces(seed in 0u64..500) {
        let (graph, partition) = dumbbell_fixture(5);
        let initial = InitialCondition::Uniform { lo: 0.0, hi: 1.0 }
            .generate(graph.node_count(), Some(&partition), seed)
            .expect("valid initial condition");
        let config = SimulationConfig::new(seed)
            .with_trace(TraceConfig::every_ticks(1))
            .with_stopping_rule(StoppingRule::max_ticks(2_000));
        let mut simulator =
            AsyncSimulator::new(&graph, initial, VanillaGossip::new(), config)
                .expect("valid setup");
        let outcome = simulator.run().expect("run succeeds");
        let trace = outcome.trace.expect("trace requested");
        let variances: Vec<f64> = trace.variance_series().map(|(_, v)| v).collect();
        for w in variances.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
    }
}
