//! End-to-end workload tests: every named scenario × initial condition runs
//! through the full stack (generator → partition → algorithm → simulator →
//! estimator) and produces sane results.

mod common;

use common::shape_estimator;
use sparse_cut_gossip::prelude::*;
use sparse_cut_gossip::workloads::scenarios::robustness_suite;

#[test]
fn robustness_suite_runs_both_algorithms_end_to_end() {
    for (index, scenario) in robustness_suite(24).into_iter().enumerate() {
        let instance = scenario
            .instantiate(7 + index as u64)
            .expect("valid scenario");
        instance.validate_notation1().expect("Notation 1 holds");
        let graph = &instance.graph;
        let partition = &instance.partition;
        let estimator = shape_estimator(partition, 13 + index as u64, 400.0);
        let vanilla = estimator
            .estimate(graph, partition, VanillaGossip::new)
            .expect("vanilla estimation succeeds");
        let algo = estimator
            .estimate(graph, partition, || {
                SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                    .expect("valid partition")
            })
            .expect("Algorithm A estimation succeeds");
        assert!(
            vanilla.fully_confirmed(),
            "{}: vanilla censored",
            instance.name
        );
        assert!(
            algo.fully_confirmed(),
            "{}: Algorithm A censored",
            instance.name
        );
        assert!(vanilla.averaging_time > 0.0);
        assert!(algo.averaging_time > 0.0);
    }
}

#[test]
fn every_initial_condition_runs_on_the_grid_corridor() {
    let scenario = Scenario::GridCorridor {
        rows: 3,
        cols: 4,
        corridor_width: 1,
    };
    let instance = scenario.instantiate(3).expect("valid scenario");
    let graph = &instance.graph;
    let partition = &instance.partition;
    let conditions = vec![
        InitialCondition::AdversarialCut,
        InitialCondition::Spike { spike_at: 0 },
        InitialCondition::Uniform { lo: -1.0, hi: 1.0 },
        InitialCondition::Gaussian {
            mean: 5.0,
            std: 2.0,
        },
        InitialCondition::LinearField,
    ];
    for condition in conditions {
        let initial = condition
            .generate(graph.node_count(), Some(partition), 11)
            .expect("valid initial condition");
        let target = initial.mean();
        let config = SimulationConfig::new(19)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-4).or_max_time(100_000.0));
        let algorithm =
            SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                .expect("valid partition");
        let mut simulator =
            AsyncSimulator::new(graph, initial, algorithm, config).expect("valid setup");
        let outcome = simulator.run().expect("run succeeds");
        assert!(
            outcome.converged(),
            "{} did not converge on the grid corridor",
            condition.name()
        );
        assert!((outcome.final_values.mean() - target).abs() < 1e-6);
    }
}

#[test]
fn experiment_descriptors_cover_all_ids_and_reference_real_targets() {
    for id in ExperimentId::all() {
        let descriptor = id.descriptor();
        assert_eq!(descriptor.id, id);
        assert!(
            descriptor.bench_target.contains("harness")
                || descriptor.bench_target.contains("gossip-bench"),
            "{id}: bench target should reference the harness or a bench file"
        );
    }
}

#[test]
fn sparse_cut_detection_recovers_the_planted_cut_on_workload_graphs() {
    // Spectral bisection (used when no partition is given) recovers the
    // planted cut of the SBM workload, tying the cut-finding substrate into
    // the workload layer.
    let scenario = Scenario::TwoBlockSbm {
        n1: 12,
        n2: 12,
        p_in: 0.8,
        p_out: 0.02,
    };
    let instance = scenario.instantiate(5).expect("valid scenario");
    let found = sparse_cut_gossip::graph::cut::find_sparse_cut(
        &instance.graph,
        sparse_cut_gossip::graph::cut::CutStrategy::SweepCut,
    )
    .expect("spectral bisection succeeds");
    assert_eq!(
        found.cut_edge_count(),
        instance.partition.cut_edge_count(),
        "spectral bisection should recover the planted sparse cut"
    );
    assert_eq!(found.smaller_block_size(), 12);
}
