//! The deterministic test-harness layer: seed-pinned property tests for the
//! invariants every future scale/perf PR must preserve.
//!
//! * every class `C` (convex) update conserves mass *exactly at every tick*
//!   and never increases the variance — checked by driving handlers tick by
//!   tick through the per-edge clock queue, not just end to end;
//! * the two clock models (per-edge queue vs. global uniform process) give
//!   statistically equivalent averaging-time estimates in situ;
//! * the Theorem 1 quantity `min(n₁,n₂)/|E₁₂|` really is a floor (up to the
//!   constant absorbed in `Ω(·)`) for vanilla gossip on dumbbell *and*
//!   barbell generators.
//!
//! All stochastic inputs are seed-pinned through the vendored deterministic
//! proptest (see `vendor/README.md`); two consecutive runs are identical.

mod common;

use common::{barbell_fixture, dumbbell_fixture, measure_averaging_time, seeds};
use proptest::prelude::*;
use sparse_cut_gossip::core::averaging_time::{AveragingTimeEstimator, EstimatorConfig};
use sparse_cut_gossip::prelude::*;
use sparse_cut_gossip::sim::clock::{EdgeClockQueue, TickProcess};
use sparse_cut_gossip::sim::engine::ClockModel;

/// Drives `handler` through `ticks` events of a per-edge clock queue,
/// asserting after every single tick that the sum is conserved and the
/// variance did not increase.  Returns an error message on violation so the
/// property harness reports the failing case.
fn check_class_c_tick_invariants<H: EdgeTickHandler>(
    graph: &Graph,
    mut values: NodeValues,
    mut handler: H,
    clock_seed: u64,
    ticks: usize,
) -> Result<(), String> {
    let mut clock = EdgeClockQueue::new(graph, clock_seed).expect("graph has edges");
    let initial_sum = values.sum();
    let mut last_variance = values.variance();
    for _ in 0..ticks {
        let event = clock.next_tick();
        let ctx = EdgeTickContext {
            graph,
            edge: graph.edge(event.edge).expect("edge exists"),
            edge_id: event.edge,
            time: event.time,
            edge_tick_count: event.edge_tick_count,
            global_tick_count: event.global_tick_count,
        };
        handler.on_edge_tick(&mut values, &ctx);
        let sum = values.sum();
        if (sum - initial_sum).abs() > 1e-9 * initial_sum.abs().max(1.0) {
            return Err(format!(
                "mass not conserved at tick {}: {initial_sum} -> {sum}",
                event.global_tick_count
            ));
        }
        let variance = values.variance();
        if variance > last_variance + 1e-9 {
            return Err(format!(
                "variance increased at tick {}: {last_variance} -> {variance}",
                event.global_tick_count
            ));
        }
        last_variance = variance;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mass conservation + variance monotonicity for every bundled member of
    /// the paper's class `C`, at every tick, under arbitrary seeds, sizes,
    /// initial conditions, and convex weights.
    #[test]
    fn prop_class_c_members_conserve_mass_and_contract_variance(
        half in 3usize..8,
        alpha in 0.05f64..0.95,
        seed in 0u64..10_000,
    ) {
        let (graph, partition) = dumbbell_fixture(half);
        let initial = InitialCondition::Uniform { lo: -5.0, hi: 5.0 }
            .generate(graph.node_count(), Some(&partition), seed)
            .expect("valid initial condition");
        let handlers: Vec<Box<dyn EdgeTickHandler>> = vec![
            Box::new(VanillaGossip::new()),
            Box::new(WeightedConvexGossip::new(alpha).expect("alpha in (0,1)")),
            Box::new(RandomNeighborGossip::new(seed)),
        ];
        for handler in handlers {
            if let Err(message) = check_class_c_tick_invariants(
                &graph,
                initial.clone(),
                handler,
                seed.wrapping_add(1),
                400,
            ) {
                prop_assert!(false, "{message}");
            }
        }
    }

    /// The same per-tick invariants hold on the barbell (asymmetric blocks),
    /// so the class-C analysis does not silently depend on symmetry.
    #[test]
    fn prop_class_c_invariants_hold_on_asymmetric_barbell(
        left in 3usize..7,
        extra in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let (graph, partition) = barbell_fixture(left, left + extra);
        let initial = InitialCondition::Gaussian { mean: 1.0, std: 2.0 }
            .generate(graph.node_count(), Some(&partition), seed)
            .expect("valid initial condition");
        if let Err(message) = check_class_c_tick_invariants(
            &graph,
            initial,
            VanillaGossip::new(),
            seed,
            400,
        ) {
            prop_assert!(false, "{message}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Theorem 1 floor on the dumbbell: the measured vanilla averaging time
    /// never drops below a constant fraction of `min(n₁,n₂)/|E₁₂|`.  The
    /// constant 0.3 absorbs the `Ω(·)` of the theorem plus Monte-Carlo
    /// variance at 4 runs; seeds are pinned via the deterministic harness.
    #[test]
    fn prop_theorem1_bound_floors_vanilla_on_dumbbell(half in 4usize..12) {
        let (graph, partition) = dumbbell_fixture(half);
        let bound = theorem1_lower_bound(&partition);
        let measured = measure_averaging_time(
            &graph,
            &partition,
            VanillaGossip::new,
            seeds::HARNESS_THEOREM1_FLOOR + half as u64,
            200.0,
        );
        prop_assert!(
            measured > 0.3 * bound,
            "T_av {measured} below Theorem 1 floor {bound} at half={half}"
        );
    }

    /// Theorem 1 floor on the asymmetric barbell: the bound is
    /// `min(n₁,n₂)/1`, so it must track the *smaller* block.
    #[test]
    fn prop_theorem1_bound_floors_vanilla_on_barbell(
        left in 4usize..9,
        extra in 1usize..8,
    ) {
        let (graph, partition) = barbell_fixture(left, left + extra);
        let bound = theorem1_lower_bound(&partition);
        prop_assert!(
            (bound - left as f64).abs() < 1e-12,
            "barbell bound should equal the smaller block size"
        );
        let measured = measure_averaging_time(
            &graph,
            &partition,
            VanillaGossip::new,
            seeds::HARNESS_THEOREM1_FLOOR + 100 + (left * 13 + extra) as u64,
            200.0,
        );
        prop_assert!(
            measured > 0.3 * bound,
            "T_av {measured} below Theorem 1 floor {bound} at left={left}, extra={extra}"
        );
    }
}

/// The two clock samplers are interchangeable in situ: estimating the same
/// algorithm's averaging time under `PerEdgeQueue` and `GlobalUniform`
/// yields values within a factor absorbed by Monte-Carlo noise.  This is
/// the system-level counterpart of the distributional tests in
/// `gossip-sim/src/clock.rs`.
#[test]
fn clock_models_give_equivalent_averaging_times() {
    let (graph, partition) = dumbbell_fixture(10);
    let estimate_under = |model: ClockModel, seed: u64| {
        AveragingTimeEstimator::new(
            EstimatorConfig::new(seed)
                .with_runs(6)
                .with_max_time(5_000.0)
                .with_clock_model(model),
        )
        .estimate(&graph, &partition, VanillaGossip::new)
        .expect("estimation succeeds")
        .averaging_time
    };
    let per_edge = estimate_under(ClockModel::PerEdgeQueue, 7);
    let global = estimate_under(ClockModel::GlobalUniform, 7);
    assert!(
        per_edge < 2.5 * global && global < 2.5 * per_edge,
        "clock models disagree: per-edge {per_edge} vs global {global}"
    );
}

/// The exact tick streams of both samplers, pinned bit-for-bit.
///
/// This is the harness-level guard behind hot-loop refactors of the clock
/// code (the `peek_mut` single-sift re-arm, the batched global sampler):
/// any change that perturbs the delivered `(edge, time)` sequence — even
/// while remaining distributionally correct — silently reshuffles every
/// seeded experiment in the repository, so it must fail loudly here
/// instead.  The reference-implementation equivalence tests live in
/// `gossip-sim/src/clock.rs`; this pins the absolute stream.
#[test]
#[allow(clippy::excessive_precision)] // full-precision pins are the point
fn clock_tick_streams_are_pinned_bit_for_bit() {
    use sparse_cut_gossip::sim::clock::{EdgeClockQueue, GlobalTickProcess, TickProcess};
    let (graph, _) = dumbbell_fixture(3);
    let expected_queue = [
        (3usize, 3.58098696363254809e-1f64),
        (3, 4.93027336994565912e-1),
        (6, 5.88955697031959824e-1),
        (0, 5.98495752404341053e-1),
        (5, 7.67048511208316519e-1),
    ];
    let expected_global = [
        (3usize, 8.54993932006201524e-2f64),
        (2, 2.75347942269882129e-1),
        (3, 4.97170914808564401e-1),
        (0, 5.81307442955987241e-1),
        (2, 8.58302709213610182e-1),
    ];
    let mut queue = EdgeClockQueue::new(&graph, 2024).expect("graph has edges");
    let mut global = GlobalTickProcess::new(&graph, 2024).expect("graph has edges");
    for (clock, expected) in [
        (
            &mut queue as &mut dyn sparse_cut_gossip::sim::clock::TickProcess,
            &expected_queue,
        ),
        (&mut global, &expected_global),
    ] {
        for (tick, &(edge, time)) in expected.iter().enumerate() {
            let event = clock.next_tick();
            assert_eq!(event.edge.index(), edge, "tick {tick}");
            assert_eq!(event.time.to_bits(), time.to_bits(), "tick {tick}");
        }
        let _ = TickProcess::now(clock);
    }
}

/// Exact determinism at the harness level: re-running the full estimator
/// pipeline with the same seed reproduces the averaging time bit for bit.
#[test]
fn estimator_pipeline_is_bit_deterministic() {
    let (graph, partition) = dumbbell_fixture(8);
    let run = || {
        AveragingTimeEstimator::new(
            EstimatorConfig::new(1234)
                .with_runs(3)
                .with_max_time(2_000.0),
        )
        .estimate(&graph, &partition, VanillaGossip::new)
        .expect("estimation succeeds")
        .averaging_time
    };
    let first = run();
    let second = run();
    assert!(
        first.to_bits() == second.to_bits(),
        "same seed must give bit-identical estimates: {first} vs {second}"
    );
    // A different seed must explore a different sample path.
    let other = AveragingTimeEstimator::new(
        EstimatorConfig::new(1235)
            .with_runs(3)
            .with_max_time(2_000.0),
    )
    .estimate(&graph, &partition, VanillaGossip::new)
    .expect("estimation succeeds")
    .averaging_time;
    assert!(
        first.to_bits() != other.to_bits(),
        "different seeds should not collide bit-for-bit"
    );
}

/// The per-edge queue exposed through the facade is usable directly by
/// downstream crates (the API the bench probes rely on).
#[test]
fn facade_exposes_tick_process_interface() {
    let (graph, _) = dumbbell_fixture(4);
    let mut clock = EdgeClockQueue::new(&graph, 99).expect("graph has edges");
    let mut last = 0.0;
    for _ in 0..200 {
        let event = clock.next_tick();
        assert!(event.time >= last);
        last = event.time;
    }
    assert!(clock.now() > 0.0);
}
