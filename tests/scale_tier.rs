//! The large-`n` scaling-tier acceptance tests.
//!
//! The headline guarantee: a 10 000-node dumbbell's `SpectralProfile` and
//! `T_van` estimate run entirely through the sparse CSR/Lanczos path,
//! **never materializing a dense n×n matrix** — verified against the
//! process-global dense-allocation tracker in `gossip-linalg`.  (The sparse
//! path does densify its small k×k Lanczos tridiagonal internally; the
//! tracker bound below the dispatch threshold proves that is all it does.)
//!
//! Every test in this binary works exclusively with large sparse instances,
//! so the monotone tracker stays meaningful regardless of test order.

mod common;

use common::seeds;
use sparse_cut_gossip::linalg::matrix::largest_dense_dimension;
use sparse_cut_gossip::prelude::*;
use sparse_cut_gossip::workloads::scenarios::scale_suite;

#[test]
fn ten_thousand_node_dumbbell_runs_sparse_without_dense_matrices() {
    let scenario = Scenario::ExpanderDumbbell { half: 5_000 };
    let instance = scenario
        .instantiate(seeds::SCALE_DUMBBELL)
        .expect("valid scenario");
    assert_eq!(instance.graph.node_count(), 10_000);
    assert!(instance.graph.node_count() > SPARSE_DISPATCH_THRESHOLD);
    instance.validate_notation1().expect("notation 1 holds");

    // The dispatching entry point must route to the sparse path here.
    let profile = SpectralProfile::compute(&instance.graph).expect("sparse spectral profile");
    assert_eq!(profile.node_count, 10_000);
    assert_eq!(profile.edge_count, instance.graph.edge_count());
    assert!(
        profile.algebraic_connectivity > 0.0,
        "connected graph must have λ₂ > 0"
    );
    // The bridge bottleneck: λ₂ is tiny compared to the internal
    // connectivity captured by λ_max.
    assert!(profile.algebraic_connectivity < 0.01);
    assert!(profile.laplacian_lambda_max > 10.0);

    let t_van = profile.vanilla_averaging_time_estimate();
    assert!(t_van.is_finite() && t_van > 0.0);
    assert!(profile.relaxation_ticks.is_finite());

    // The acceptance gate: nothing on this path allocated a dense matrix at
    // (or anywhere near) graph size.  The only dense work allowed is the
    // k×k Lanczos tridiagonal, which sits far below the dispatch threshold.
    let largest = largest_dense_dimension();
    assert!(
        largest < SPARSE_DISPATCH_THRESHOLD,
        "dense constructor saw dimension {largest} — the sparse path leaked \
         an O(n²) allocation"
    );
}

#[test]
fn scale_suite_families_stay_sparse_end_to_end() {
    for scenario in scale_suite(1_000) {
        let instance = scenario
            .instantiate(seeds::SCALE_SUITE)
            .expect("valid scenario");
        instance.validate_notation1().expect("notation 1 holds");
        assert!(instance.graph.node_count() > SPARSE_DISPATCH_THRESHOLD);
        let profile = SpectralProfile::compute(&instance.graph).expect("sparse spectral profile");
        assert!(profile.algebraic_connectivity > 0.0, "{}", instance.name);
        assert!(
            profile.vanilla_averaging_time_estimate() > 0.0,
            "{}",
            instance.name
        );
        // Bounded-degree families: |E| = O(n log n), nowhere near n²/4.
        let n = instance.graph.node_count() as f64;
        assert!(
            (instance.graph.edge_count() as f64) < n * n.log2(),
            "{}: too dense for the scale tier",
            instance.name
        );
    }
    let largest = largest_dense_dimension();
    assert!(
        largest < SPARSE_DISPATCH_THRESHOLD,
        "dense constructor saw dimension {largest} on the scale suite"
    );
}
