//! The adversary-path differential oracle.
//!
//! The Byzantine adversary layer threads through the same hot path as the
//! fault layer, so its zero-cost contract is pinned the same way
//! (`tests/fault_differential.rs`): a run configured with the no-op
//! [`AdversaryPlan::none`] must be **byte-identical** — stop tick, stop
//! time, stop reason, moment refresh count, and bitwise final state — to a
//! run with no plan at all, on every scale generator family, under both
//! clock models, at pinned seeds.
//!
//! On top of the identity oracle: a mixed adversary + crash-fault run must
//! keep the honest-subset mean within the per-capita falsification bound
//! (`gossip_analysis::robust::honest_drift_bound`); the robust aggregation
//! rules must converge under an extreme-value attack that pins vanilla
//! gossip away from the Definition 1 stop; and the sharded engine must stay
//! bit-identical across shard counts when the handler's kernel opts in.

mod common;

use common::seeds;
use sparse_cut_gossip::analysis::robust::{honest_drift_bound, hull_drift_bound};
use sparse_cut_gossip::prelude::*;

/// Small instances of every scale generator family (mirrors the fault
/// differential oracle at reduced sizes — the attacked runs below burn
/// their full tick caps, so debug-profile speed matters here).
fn oracle_families() -> Vec<(&'static str, Scenario)> {
    vec![
        ("chordal-ring", Scenario::ChordalRing { n: 64 }),
        ("expander-dumbbell", Scenario::ExpanderDumbbell { half: 32 }),
        (
            "expander-barbell",
            Scenario::ExpanderBarbell {
                left: 21,
                right: 43,
            },
        ),
        (
            "ring-of-cliques",
            Scenario::RingOfCliques {
                cliques: 4,
                clique_size: 16,
            },
        ),
    ]
}

/// Runs vanilla gossip on `scenario` from the adversarial initial condition
/// with the given (optional) adversary plan and returns the outcome.
fn run_with_plan(
    scenario: &Scenario,
    sim_seed: u64,
    clock_model: ClockModel,
    plan: Option<AdversaryPlan>,
) -> SimulationOutcome {
    let instance = scenario
        .instantiate(seeds::ADVERSARY_SCENARIO)
        .expect("valid scenario");
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
    let mut config = SimulationConfig::new(sim_seed)
        .with_clock_model(clock_model)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(20_000_000))
        .with_moment_refresh_every_ticks(128);
    config.adversary_plan = plan;
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("valid simulation");
    simulator.run().expect("run completes")
}

/// Mean of the values at the nodes not listed in `excluded`.
fn honest_mean(values: &NodeValues, excluded: &[NodeId]) -> f64 {
    let excluded: std::collections::BTreeSet<usize> = excluded.iter().map(|n| n.0).collect();
    let (sum, count) = values
        .as_slice()
        .iter()
        .enumerate()
        .filter(|(i, _)| !excluded.contains(i))
        .fold((0.0, 0usize), |(s, c), (_, v)| (s + v, c + 1));
    sum / count as f64
}

#[test]
fn noop_adversary_plan_is_bit_identical_to_the_unmodified_engine_on_every_family() {
    for (index, (name, scenario)) in oracle_families().into_iter().enumerate() {
        for clock_model in [ClockModel::GlobalUniform, ClockModel::PerEdgeQueue] {
            let sim_seed = seeds::ADVERSARY_DIFFERENTIAL + index as u64;
            let baseline = run_with_plan(&scenario, sim_seed, clock_model, None);
            let noop = run_with_plan(
                &scenario,
                sim_seed,
                clock_model,
                Some(AdversaryPlan::none()),
            );

            assert!(baseline.converged(), "{name}/{clock_model:?}: baseline");
            assert_eq!(
                baseline.total_ticks, noop.total_ticks,
                "{name}/{clock_model:?}: stop ticks diverged"
            );
            assert_eq!(
                baseline.elapsed_time.to_bits(),
                noop.elapsed_time.to_bits(),
                "{name}/{clock_model:?}: stop times diverged"
            );
            assert_eq!(
                baseline.stop_reason, noop.stop_reason,
                "{name}/{clock_model:?}: stop reasons diverged"
            );
            assert_eq!(
                baseline.moment_refreshes, noop.moment_refreshes,
                "{name}/{clock_model:?}: moment refresh counts diverged"
            );
            for (node, (a, b)) in baseline
                .final_values
                .as_slice()
                .iter()
                .zip(noop.final_values.as_slice())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}/{clock_model:?}: node {node} diverged ({a} vs {b})"
                );
            }
            // The empty plan classifies every contact as honest and touches
            // nothing else; no plan at all leaves the stats at their default.
            assert_eq!(
                noop.adversary_stats,
                AdversaryStats {
                    honest_contacts: noop.total_ticks,
                    ..AdversaryStats::default()
                },
                "{name}/{clock_model:?}"
            );
            assert_eq!(
                baseline.adversary_stats,
                AdversaryStats::default(),
                "{name}/{clock_model:?}"
            );
        }
    }
}

#[test]
fn mixed_adversary_and_crash_faults_keep_the_honest_subset_within_the_oracle_bound() {
    // All four behaviors plus crash-style faults on the asymmetric barbell:
    // a biased injector, an extreme-value node, a stale replayer, a censored
    // cut, 20% message loss, and an early node pause.  The honest-subset
    // mean may move only through falsified contacts, so it must stay within
    // the per-capita falsification budget the injector accounts exactly.
    let scenario = Scenario::ExpanderBarbell {
        left: 21,
        right: 43,
    };
    let instance = scenario
        .instantiate(seeds::ADVERSARY_SCENARIO)
        .expect("valid scenario");
    let cut_edge = instance.partition.cut_edges()[0];
    let adversary = AdversaryPlan::new(seeds::ADVERSARY_PLAN)
        .with_biased_injector(NodeId(2), 3.0)
        .with_extreme_value_node(NodeId(11), 25.0)
        .with_stale_replay_node(NodeId(5), 500)
        .with_censoring_bridge(vec![cut_edge], 0.5)
        .with_detection_threshold(5.0);
    let faults = FaultPlan::new(seeds::ADVERSARY_FAULT)
        .with_drop_probability(0.2)
        .with_node_pause(NodeId(0), 0, 1_000);
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
    let adversarial_nodes = adversary.adversarial_nodes();
    let honest_initial = honest_mean(&initial, &adversarial_nodes);

    let config = SimulationConfig::new(seeds::ADVERSARY_DIFFERENTIAL)
        .with_clock_model(ClockModel::GlobalUniform)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000))
        .with_fault_plan(faults)
        .with_adversary_plan(adversary);
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("valid simulation");
    let outcome = simulator.run().expect("run completes");
    let stats = outcome.adversary_stats;

    // Every layer engaged.
    assert!(outcome.fault_stats.dropped > 0, "loss never engaged");
    assert!(
        outcome.fault_stats.node_pause_skips > 0,
        "pause never engaged"
    );
    assert!(stats.falsified_contacts > 0, "no contact was falsified");
    assert!(stats.censored_contacts > 0, "nothing was censored");
    assert!(stats.flagged_reports > 0, "detection never fired");
    // Only delivered contacts are classified, exactly once each.
    assert_eq!(stats.total_classified(), outcome.fault_stats.delivered);

    let drift = (honest_mean(&outcome.final_values, &adversarial_nodes) - honest_initial).abs();
    let bound = honest_drift_bound(
        stats.falsification_l1,
        instance.graph.node_count() - adversarial_nodes.len(),
    )
    .expect("valid oracle inputs");
    assert!(
        drift <= bound + 1e-9,
        "honest-subset drift {drift} exceeds the falsification budget {bound}"
    );
    assert!(drift > 0.0, "the adversary never moved the honest subset");
}

#[test]
fn robust_aggregation_converges_where_extreme_outliers_pin_vanilla_gossip() {
    // Two extreme-value nodes (one per block) shouting ±50 on the expander
    // dumbbell: their frozen state pins the global variance above the
    // Definition 1 threshold for vanilla averaging, while the clamped
    // trimmed-mean rule rejects almost all of each outlier and converges.
    // Every run must respect its drift oracle (per-capita falsification
    // budget for the conserving rules, convex hull for median).
    let scenario = Scenario::ExpanderDumbbell { half: 16 };
    let instance = scenario
        .instantiate(seeds::ADVERSARY_SCENARIO)
        .expect("valid scenario");
    let n = instance.graph.node_count();
    let plan = AdversaryPlan::new(seeds::ADVERSARY_PLAN)
        .with_extreme_value_node(NodeId(3), 50.0)
        .with_extreme_value_node(NodeId(20), 50.0)
        .with_detection_threshold(25.0);
    let adversarial_nodes = plan.adversarial_nodes();
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
    let honest_initial = honest_mean(&initial, &adversarial_nodes);
    let (initial_min, initial_max) = initial
        .as_slice()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });

    let config = SimulationConfig::new(seeds::ADVERSARY_ROBUST)
        .with_clock_model(ClockModel::GlobalUniform)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000))
        .with_adversary_plan(plan);

    let run = |handler: Box<dyn EdgeTickHandler>| -> SimulationOutcome {
        let mut simulator =
            AsyncSimulator::new(&instance.graph, initial.clone(), handler, config.clone())
                .expect("valid simulation");
        simulator.run().expect("run completes")
    };
    let drift_of = |outcome: &SimulationOutcome| -> f64 {
        (honest_mean(&outcome.final_values, &adversarial_nodes) - honest_initial).abs()
    };

    let vanilla = run(Box::new(VanillaGossip::new()));
    let trimmed = run(Box::new(TrimmedMeanGossip::default_radius()));
    let median = run(Box::new(MedianNeighborGossip::new(n)));

    // Vanilla is pinned by the ±50 reports; the robust rules converge.
    assert!(
        !vanilla.converged(),
        "vanilla unexpectedly converged under the extreme attack"
    );
    assert!(trimmed.converged(), "trimmed-mean did not converge");
    assert!(median.converged(), "median-of-neighbors did not converge");

    // The robust rules are dragged strictly less than vanilla.
    let vanilla_drift = drift_of(&vanilla);
    assert!(
        drift_of(&trimmed) < vanilla_drift && drift_of(&median) < vanilla_drift,
        "robust rules must out-resist vanilla (vanilla {vanilla_drift}, trimmed {}, median {})",
        drift_of(&trimmed),
        drift_of(&median)
    );

    // Each run satisfies its drift oracle.
    for (name, outcome) in [("vanilla", &vanilla), ("trimmed", &trimmed)] {
        let bound = honest_drift_bound(
            outcome.adversary_stats.falsification_l1,
            n - adversarial_nodes.len(),
        )
        .expect("valid oracle inputs");
        assert!(
            drift_of(outcome) <= bound + 1e-9,
            "{name}: drift oracle violated"
        );
    }
    let hull = hull_drift_bound(
        initial_min,
        initial_max,
        median.adversary_stats.report_min,
        median.adversary_stats.report_max,
        honest_initial,
    )
    .expect("valid oracle inputs");
    assert!(
        drift_of(&median) <= hull + 1e-9,
        "median: hull oracle violated"
    );

    // Detection fired on every arm (|±50 − honest| far exceeds 25).
    for outcome in [&vanilla, &trimmed, &median] {
        assert!(outcome.adversary_stats.flagged_reports > 0);
    }
}

#[test]
fn sharded_adversary_runs_with_an_opted_in_kernel_are_bit_identical_across_shard_counts() {
    // The trimmed-mean rule exposes a pairwise kernel at its default radius,
    // so the sharded engine accepts it; under a mixed adversary plan the
    // final state must be bitwise invariant in the shard count, under both
    // clock models.
    let scenario = Scenario::ExpanderDumbbell { half: 16 };
    let instance = scenario
        .instantiate(seeds::ADVERSARY_SCENARIO)
        .expect("valid scenario");
    let cut_edge = instance.partition.cut_edges()[0];
    let plan = AdversaryPlan::new(seeds::ADVERSARY_PLAN)
        .with_biased_injector(NodeId(2), 3.0)
        .with_extreme_value_node(NodeId(11), 25.0)
        .with_stale_replay_node(NodeId(5), 200)
        .with_censoring_bridge(vec![cut_edge], 0.5)
        .with_detection_threshold(5.0);
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);

    for clock_model in [ClockModel::GlobalUniform, ClockModel::PerEdgeQueue] {
        let outcomes: Vec<SimulationOutcome> = [1usize, 2, 4]
            .into_iter()
            .map(|shards| {
                let config = SimulationConfig::new(seeds::ADVERSARY_SHARDED)
                    .with_clock_model(clock_model)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(100_000))
                    .with_adversary_plan(plan.clone())
                    .with_shards(shards);
                let mut simulator = AsyncSimulator::new(
                    &instance.graph,
                    initial.clone(),
                    TrimmedMeanGossip::default_radius(),
                    config,
                )
                .expect("valid simulation");
                simulator.run().expect("run completes")
            })
            .collect();

        let reference = &outcomes[0];
        assert!(
            reference.adversary_stats.falsified_contacts > 0
                && reference.adversary_stats.censored_contacts > 0,
            "{clock_model:?}: the mixed plan never engaged"
        );
        for (outcome, shards) in outcomes.iter().zip([1, 2, 4]) {
            assert_eq!(
                reference.total_ticks, outcome.total_ticks,
                "{clock_model:?}/shards {shards}: ticks diverged"
            );
            assert_eq!(
                reference.adversary_stats, outcome.adversary_stats,
                "{clock_model:?}/shards {shards}: stats diverged"
            );
            for (node, (a, b)) in reference
                .final_values
                .as_slice()
                .iter()
                .zip(outcome.final_values.as_slice())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{clock_model:?}/shards {shards}: node {node} diverged ({a} vs {b})"
                );
            }
        }
    }
}
