//! Integration test for the shape of Theorem 2: Algorithm A's averaging time
//! on the dumbbell stays polylogarithmic — it grows far slower than the
//! convex algorithms' linear growth, so the speed-up widens with `n`.

use sparse_cut_gossip::prelude::*;

fn averaging_time<H, F>(half: usize, factory: F, seed: u64) -> f64
where
    H: EdgeTickHandler,
    F: Fn() -> H,
{
    let (graph, partition) = dumbbell(half).expect("valid dumbbell");
    let estimator = AveragingTimeEstimator::new(
        EstimatorConfig::new(seed)
            .with_runs(4)
            .with_max_time(80.0 * theorem1_lower_bound(&partition) + 400.0)
            .with_check_every_ticks((graph.edge_count() / 10).max(1) as u64),
    );
    estimator
        .estimate(&graph, &partition, factory)
        .expect("estimation succeeds")
        .averaging_time
}

fn algorithm_a_factory<'a>(
    graph: &'a Graph,
    partition: &'a Partition,
) -> impl Fn() -> SparseCutAlgorithm + 'a {
    move || {
        SparseCutAlgorithm::from_partition(
            graph,
            partition,
            SparseCutConfig::new().with_epoch_constant(2.0),
        )
        .expect("valid partition")
    }
}

#[test]
fn algorithm_a_beats_vanilla_at_moderate_sizes() {
    let half = 24;
    let (graph, partition) = dumbbell(half).expect("valid dumbbell");
    let vanilla = averaging_time(half, VanillaGossip::new, 41);
    let algo = averaging_time(half, algorithm_a_factory(&graph, &partition), 42);
    assert!(
        algo < vanilla,
        "Algorithm A ({algo}) should beat vanilla ({vanilla}) at n = {}",
        2 * half
    );
}

#[test]
fn algorithm_a_growth_is_much_slower_than_vanilla_growth() {
    let sizes = [8usize, 32];
    let mut vanilla_times = Vec::new();
    let mut algo_times = Vec::new();
    for (i, &half) in sizes.iter().enumerate() {
        let (graph, partition) = dumbbell(half).expect("valid dumbbell");
        vanilla_times.push(averaging_time(half, VanillaGossip::new, 50 + i as u64));
        algo_times.push(averaging_time(
            half,
            algorithm_a_factory(&graph, &partition),
            60 + i as u64,
        ));
    }
    let vanilla_growth = vanilla_times[1] / vanilla_times[0];
    let algo_growth = algo_times[1] / algo_times[0];
    // Quadrupling n: vanilla grows ~4x, Algorithm A should grow by a much
    // smaller factor.  Require at least a 1.8x gap between the growth rates
    // to stay robust to Monte-Carlo noise.
    assert!(
        vanilla_growth > 1.8 * algo_growth,
        "growth rates too close: vanilla {vanilla_growth:.2}x vs Algorithm A {algo_growth:.2}x"
    );
}

#[test]
fn speedup_widens_with_n() {
    let speedup_at = |half: usize, seed: u64| {
        let (graph, partition) = dumbbell(half).expect("valid dumbbell");
        let vanilla = averaging_time(half, VanillaGossip::new, seed);
        let algo = averaging_time(half, algorithm_a_factory(&graph, &partition), seed + 1);
        vanilla / algo.max(1e-9)
    };
    let small = speedup_at(8, 70);
    let large = speedup_at(32, 80);
    assert!(
        large > small,
        "speed-up should widen with n: {small:.2}x at n=16 vs {large:.2}x at n=64"
    );
    assert!(large > 1.5, "speed-up at n=64 should be material, got {large:.2}x");
}

#[test]
fn theorem2_quantity_tracks_measured_time_within_constant() {
    let half = 32;
    let (graph, partition) = dumbbell(half).expect("valid dumbbell");
    let bounds = BoundsSummary::compute(&graph, &partition, 2.0).expect("bounds computable");
    let algo = averaging_time(half, algorithm_a_factory(&graph, &partition), 91);
    // The measured time should be within a generous constant factor of the
    // C·ln n·(T_van+T_van) quantity (the natural per-epoch time scale).
    assert!(
        algo < 20.0 * bounds.theorem2_upper_bound + 20.0,
        "Algorithm A time {algo} far above the Theorem 2 scale {}",
        bounds.theorem2_upper_bound
    );
}
