//! Integration test for the shape of Theorem 2: Algorithm A's averaging time
//! on the dumbbell stays polylogarithmic — it grows far slower than the
//! convex algorithms' linear growth, so the speed-up widens with `n`.
//!
//! # Seed policy
//!
//! Seeds come from `common::seeds` (THEOREM2_*); the growth-rate and
//! speed-up tests offset the base seed per size.  The deterministic stack
//! (see `vendor/README.md`) makes every margin below reproducible bit for
//! bit; the margins themselves (1.8× growth-rate gap, 1.5× material
//! speed-up, 20× Theorem 2 scale) absorb which-seed variance only.

mod common;

use common::{algorithm_a_factory, dumbbell_fixture, measure_averaging_time, seeds};
use sparse_cut_gossip::prelude::*;

/// Slack added to the `80 × bound` horizon: Algorithm A's epoch structure
/// needs a little more absolute room than the vanilla runs at small sizes.
const SLACK: f64 = 400.0;

fn averaging_time<H, F>(half: usize, factory: F, seed: u64) -> f64
where
    H: EdgeTickHandler,
    F: Fn() -> H + Sync,
{
    let (graph, partition) = dumbbell_fixture(half);
    measure_averaging_time(&graph, &partition, factory, seed, SLACK)
}

#[test]
fn algorithm_a_beats_vanilla_at_moderate_sizes() {
    let half = 24;
    let (graph, partition) = dumbbell_fixture(half);
    let vanilla = averaging_time(half, VanillaGossip::new, seeds::THEOREM2_VANILLA);
    let algo = averaging_time(
        half,
        algorithm_a_factory(&graph, &partition),
        seeds::THEOREM2_ALGO_A,
    );
    assert!(
        algo < vanilla,
        "Algorithm A ({algo}) should beat vanilla ({vanilla}) at n = {}",
        2 * half
    );
}

#[test]
fn algorithm_a_growth_is_much_slower_than_vanilla_growth() {
    let sizes = [8usize, 32];
    let mut vanilla_times = Vec::new();
    let mut algo_times = Vec::new();
    for (i, &half) in sizes.iter().enumerate() {
        let (graph, partition) = dumbbell_fixture(half);
        vanilla_times.push(averaging_time(
            half,
            VanillaGossip::new,
            seeds::THEOREM2_GROWTH_VANILLA + i as u64,
        ));
        algo_times.push(averaging_time(
            half,
            algorithm_a_factory(&graph, &partition),
            seeds::THEOREM2_GROWTH_ALGO_A + i as u64,
        ));
    }
    let vanilla_growth = vanilla_times[1] / vanilla_times[0];
    let algo_growth = algo_times[1] / algo_times[0];
    // Quadrupling n: vanilla grows ~4x, Algorithm A should grow by a much
    // smaller factor.  Require at least a 1.8x gap between the growth rates
    // to stay robust to Monte-Carlo noise.
    assert!(
        vanilla_growth > 1.8 * algo_growth,
        "growth rates too close: vanilla {vanilla_growth:.2}x vs Algorithm A {algo_growth:.2}x"
    );
}

#[test]
fn speedup_widens_with_n() {
    let speedup_at = |half: usize, seed: u64| {
        let (graph, partition) = dumbbell_fixture(half);
        let vanilla = averaging_time(half, VanillaGossip::new, seed);
        let algo = averaging_time(half, algorithm_a_factory(&graph, &partition), seed + 1);
        vanilla / algo.max(1e-9)
    };
    let small = speedup_at(8, seeds::THEOREM2_SPEEDUP_SMALL);
    let large = speedup_at(32, seeds::THEOREM2_SPEEDUP_LARGE);
    assert!(
        large > small,
        "speed-up should widen with n: {small:.2}x at n=16 vs {large:.2}x at n=64"
    );
    assert!(
        large > 1.5,
        "speed-up at n=64 should be material, got {large:.2}x"
    );
}

#[test]
fn theorem2_quantity_tracks_measured_time_within_constant() {
    let half = 32;
    let (graph, partition) = dumbbell_fixture(half);
    let bounds = BoundsSummary::compute(&graph, &partition, 2.0).expect("bounds computable");
    let algo = averaging_time(
        half,
        algorithm_a_factory(&graph, &partition),
        seeds::THEOREM2_SCALE,
    );
    // The measured time should be within a generous constant factor of the
    // C·ln n·(T_van+T_van) quantity (the natural per-epoch time scale).
    assert!(
        algo < 20.0 * bounds.theorem2_upper_bound + 20.0,
        "Algorithm A time {algo} far above the Theorem 2 scale {}",
        bounds.theorem2_upper_bound
    );
}
