//! Parallel-executor determinism oracles.
//!
//! The deterministic run executor (`gossip-exec`) promises that fanning
//! independent seeded runs out over worker threads changes **nothing** about
//! the output: ordered collection makes every estimate, row, and report
//! byte-identical to the serial order.  This suite pins that promise on the
//! real production entry points (the Definition 1 estimator, the PERF tier,
//! the SIM_SCALE row machinery, a fully deterministic bench table) at
//! `jobs = 1` versus `jobs = 4`, plus the pool's panic-propagation contract.
//!
//! Seeds 461–464 (see `tests/common`).

mod common;

use common::seeds;
use gossip_bench::runner::{self, HarnessConfig};
use sparse_cut_gossip::prelude::*;

/// Strips the volatile lines — the same field set the CI determinism gate
/// filters with `grep -vE` — from a pretty-printed perf report.
fn strip_volatile(json: &str) -> String {
    json.lines()
        .filter(|line| {
            ![
                "\"jobs\":",
                "\"shards\":",
                "\"wall_ms",
                "\"ticks_per_sec\":",
                "\"speedup\":",
            ]
            .iter()
            .any(|needle| line.trim_start().starts_with(needle))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn estimator_is_byte_identical_at_any_job_count() {
    let (graph, partition) = common::dumbbell_fixture(8);
    let estimate_at = |jobs: usize| {
        AveragingTimeEstimator::new(
            EstimatorConfig::new(seeds::PARALLEL_ESTIMATOR)
                .with_runs(8)
                .with_max_time(80.0 * theorem1_lower_bound(&partition) + 400.0)
                .with_jobs(Some(jobs)),
        )
        .estimate(&graph, &partition, VanillaGossip::new)
        .expect("estimation succeeds")
    };
    let serial = estimate_at(1);
    assert!(serial.fully_confirmed());
    for jobs in [2, 4] {
        let parallel = estimate_at(jobs);
        assert_eq!(serial, parallel, "jobs = {jobs}");
        // PartialEq on f64 conflates 0.0/-0.0; the settling times must agree
        // at the bit level for the reports built from them to diff clean.
        for (a, b) in serial
            .settling_times
            .iter()
            .zip(parallel.settling_times.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "jobs = {jobs}");
        }
    }
}

#[test]
fn perf_report_is_byte_identical_across_job_counts() {
    // Small sizes through the real `run_perf` machinery (the standard grid
    // is CI-sized); the report minus its declared volatile fields must
    // serialize to the same bytes at 1 and 4 jobs.
    let report_at = |jobs: usize| {
        let config = HarnessConfig {
            seed: seeds::PARALLEL_PERF,
            jobs: Some(jobs),
            ..HarnessConfig::quick()
        };
        let (report, _) = runner::run_perf_sized(&config, &gossip_store::NullSink, 256, 96, 4, 256)
            .expect("perf tier runs");
        report
    };
    let serial = report_at(1);
    let parallel = report_at(4);
    for row in &serial.throughput {
        assert_eq!(
            row.stop_reason, "Converged",
            "{} did not converge",
            row.family
        );
    }
    assert_eq!(serial.throughput.len(), 4, "one row per scale family");
    assert_eq!(serial.estimator.len(), 4);
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    let parallel_json = serde_json::to_string_pretty(&parallel).unwrap();
    assert_eq!(strip_volatile(&serial_json), strip_volatile(&parallel_json));
    // The filter actually removed the volatile lines (guards against field
    // renames silently emptying the CI gate).
    assert!(serial_json.contains("\"wall_ms\""));
    assert!(!strip_volatile(&serial_json).contains("\"wall_ms\""));
}

#[test]
fn sim_scale_rows_are_byte_identical_across_job_counts() {
    let suite = gossip_workloads::scenarios::sim_scale_suite(512);
    let rows_at = |jobs: usize| {
        let config = HarnessConfig {
            seed: seeds::PARALLEL_SIM_SCALE,
            jobs: Some(jobs),
            ..HarnessConfig::quick()
        };
        runner::sim_scale_rows(&config, &gossip_store::NullSink, &suite)
            .expect("sim-scale rows run")
    };
    let serial = rows_at(1);
    let parallel = rows_at(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.family, b.family);
        assert_eq!(a.n, b.n);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.ticks, b.ticks, "{}", a.family);
        assert_eq!(a.stop_time.to_bits(), b.stop_time.to_bits(), "{}", a.family);
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(
            a.variance_ratio.to_bits(),
            b.variance_ratio.to_bits(),
            "{}",
            a.family
        );
        assert_eq!(a.moment_refreshes, b.moment_refreshes);
    }
}

#[test]
fn deterministic_bench_table_renders_identically_across_job_counts() {
    // E9 has no wall-clock columns, so the whole rendered table must match.
    let table_at = |jobs: usize| {
        let config = HarnessConfig {
            seed: seeds::PARALLEL_TABLE,
            jobs: Some(jobs),
            ..HarnessConfig::quick()
        };
        runner::run_e9(&config, &gossip_store::NullSink)
            .expect("E9 runs")
            .to_string()
    };
    assert_eq!(table_at(1), table_at(4));
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    let caught = std::panic::catch_unwind(|| {
        Executor::new(4).map_indexed(32, |i| {
            if i == 11 {
                panic!("worker 11 exploded");
            }
            i * 2
        })
    });
    let payload = caught.expect_err("the pool must re-raise the worker panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("worker 11 exploded"),
        "panic payload must survive propagation, got {message:?}"
    );
}

#[test]
fn panicking_run_inside_the_estimator_propagates() {
    // The estimator's fan-out must not swallow a panicking handler factory.
    let (graph, partition) = common::dumbbell_fixture(4);
    let caught = std::panic::catch_unwind(|| {
        AveragingTimeEstimator::new(
            EstimatorConfig::new(seeds::PARALLEL_ESTIMATOR)
                .with_runs(4)
                .with_jobs(Some(4)),
        )
        .estimate(&graph, &partition, || -> VanillaGossip {
            panic!("factory refused")
        })
    });
    assert!(caught.is_err(), "factory panic must reach the caller");
}
