//! Flat-SoA engine bit-identity oracles.
//!
//! The flat memory layout (`SimulationConfig::with_flat_layout`) promises
//! that packing the edge endpoints into a flat SoA table changes *where*
//! the per-tick loop reads its operands — never the event schedule, the
//! update order, or a single bit of the result.  This suite pins that
//! promise against the legacy layout on every scale family, under both
//! clock samplers, fault-free and under a mixed fault + adversary plan:
//! the stop tick, the stop time, the stop reason, the refresh count, the
//! fault and adversary counters, and the final state vector must agree
//! bit for bit.
//!
//! (That the flat path actually engages — rather than silently falling
//! back — is pinned by the dispatch unit tests in `gossip-sim::engine`;
//! every configuration here is eligible: a kernel-capable handler,
//! incremental variance, no trace, no shards.)
//!
//! Seeds 501–505 (see `tests/common`).

mod common;

use common::seeds;
use sparse_cut_gossip::prelude::*;

/// Runs one simulation under the given layout and returns everything the
/// oracle compares.
fn run_case(
    scenario: &Scenario,
    case: u64,
    clock: ClockModel,
    hostile: bool,
    layout: MemoryLayout,
) -> (SimulationOutcome, Vec<u64>) {
    let instance = scenario
        .instantiate(seeds::MEMSCALE_SCENARIO + case)
        .expect("scenario instantiates");
    let initial = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
        .generate(
            instance.graph.node_count(),
            Some(&instance.partition),
            seeds::MEMSCALE_INITIAL + case,
        )
        .expect("initial generates");
    let mut config = SimulationConfig::new(seeds::MEMSCALE_CLOCK + case)
        .with_clock_model(clock)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(50_000_000))
        .with_memory_layout(layout);
    if hostile {
        config = config
            .with_fault_plan(
                FaultPlan::new(seeds::MEMSCALE_FAULT + case)
                    .with_drop_probability(0.15)
                    .with_edge_outage(EdgeId(0), 100, 4_000)
                    .with_node_pause(NodeId(2), 200, 2_500),
            )
            .with_adversary_plan(
                AdversaryPlan::new(seeds::MEMSCALE_ADVERSARY + case)
                    .with_biased_injector(NodeId(1), 0.3)
                    .with_extreme_value_node(NodeId(3), 25.0),
            );
    }
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("simulator builds");
    let outcome = simulator.run().expect("run succeeds");
    let bits = outcome
        .final_values
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (outcome, bits)
}

/// Asserts that the flat and legacy layouts agree on every deterministic
/// field — which here is *every* field, wall-clock is not recorded.
fn assert_layout_invariant(scenario: &Scenario, case: u64, clock: ClockModel, hostile: bool) {
    let label = format!("{scenario:?} under {clock:?} (hostile: {hostile})");
    let (legacy, legacy_bits) = run_case(scenario, case, clock, hostile, MemoryLayout::Legacy);
    assert!(
        legacy.total_ticks > 0,
        "{label}: the oracle run must process events"
    );
    let (flat, flat_bits) = run_case(scenario, case, clock, hostile, MemoryLayout::FlatSoA);
    assert_eq!(
        legacy.total_ticks, flat.total_ticks,
        "{label}: stop tick diverged under the flat layout"
    );
    assert_eq!(
        legacy.elapsed_time.to_bits(),
        flat.elapsed_time.to_bits(),
        "{label}: stop time diverged under the flat layout"
    );
    assert_eq!(
        legacy.stop_reason, flat.stop_reason,
        "{label}: stop reason diverged under the flat layout"
    );
    assert_eq!(
        legacy.moment_refreshes, flat.moment_refreshes,
        "{label}: refresh count diverged under the flat layout"
    );
    assert_eq!(
        legacy.fault_stats, flat.fault_stats,
        "{label}: fault counters diverged under the flat layout"
    );
    assert_eq!(
        legacy.adversary_stats, flat.adversary_stats,
        "{label}: adversary counters diverged under the flat layout"
    );
    assert_eq!(
        legacy.final_variance.to_bits(),
        flat.final_variance.to_bits(),
        "{label}: final variance diverged under the flat layout"
    );
    assert_eq!(
        legacy_bits, flat_bits,
        "{label}: final state diverged under the flat layout"
    );
}

#[test]
fn all_families_are_bit_identical_per_edge_queue() {
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(256)
        .iter()
        .enumerate()
    {
        assert_layout_invariant(scenario, index as u64, ClockModel::PerEdgeQueue, false);
    }
}

#[test]
fn all_families_are_bit_identical_global_uniform() {
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(256)
        .iter()
        .enumerate()
    {
        assert_layout_invariant(scenario, index as u64, ClockModel::GlobalUniform, false);
    }
}

#[test]
fn hostile_families_are_bit_identical() {
    // The fault and adversary streams are classified in tick order before
    // the state update, so loss, churn and falsified reports must not
    // break the invariant — and the counters prove both paths engaged.
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(256)
        .iter()
        .enumerate()
    {
        for clock in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            assert_layout_invariant(scenario, 100 + index as u64, clock, true);
        }
    }
}

#[test]
fn hostile_oracle_runs_actually_engage_both_plans() {
    let suite = gossip_workloads::scenarios::sim_scale_suite(256);
    let (outcome, _) = run_case(
        &suite[0],
        100,
        ClockModel::GlobalUniform,
        true,
        MemoryLayout::FlatSoA,
    );
    assert!(
        outcome.fault_stats.total_suppressed() > 0,
        "the hostile oracle must exercise the fault path"
    );
    assert!(
        outcome.adversary_stats.total_reports() > 0,
        "the hostile oracle must exercise the falsified-report path"
    );
}
