//! Shared fixtures and seed registry for the workspace integration suites.
//!
//! Every integration suite builds its graphs and estimators through this
//! module instead of re-deriving them, so that (a) the sizes and estimator
//! settings stay consistent across suites and (b) every stochastic run is
//! pinned to a seed recorded in [`seeds`].
//!
//! # Determinism contract
//!
//! Nothing in this workspace draws OS entropy: the simulator's Poisson
//! clocks, the random graph generators, and the vendored property-test
//! harness are all pure functions of their seeds (see `vendor/README.md`).
//! Consequently a passing assertion is stable across runs and machines for
//! a fixed toolchain — the margins in the shape suites only need to absorb
//! *model* variance (which seed was picked), not run-to-run jitter.  Seeds
//! below were validated against the vendored ChaCha8 stream; if the vendored
//! RNG stack is ever replaced by crates.io `rand`, re-validate them.

#![allow(dead_code)] // each test binary uses its own subset of the fixtures

use sparse_cut_gossip::prelude::*;

/// The seed registry: every pinned seed used by the integration suites,
/// in one place so collisions and reuse are visible at a glance.
pub mod seeds {
    /// `theorem1_shape`: vanilla gossip at half = 8.
    pub const THEOREM1_VANILLA_SMALL: u64 = 11;
    /// `theorem1_shape`: vanilla gossip at half = 32.
    pub const THEOREM1_VANILLA_LARGE: u64 = 12;
    /// `theorem1_shape`: weighted convex member.
    pub const THEOREM1_WEIGHTED: u64 = 21;
    /// `theorem1_shape`: random-neighbour member.
    pub const THEOREM1_RANDOM_NEIGHBOR: u64 = 22;
    /// `theorem1_shape`: narrow-cut bridged clusters.
    pub const THEOREM1_NARROW_CUT: u64 = 31;
    /// `theorem1_shape`: wide-cut bridged clusters.
    pub const THEOREM1_WIDE_CUT: u64 = 32;
    /// `theorem2_shape`: vanilla baseline of the head-to-head comparison.
    pub const THEOREM2_VANILLA: u64 = 41;
    /// `theorem2_shape`: Algorithm A in the head-to-head comparison.
    pub const THEOREM2_ALGO_A: u64 = 42;
    /// `theorem2_shape`: growth-rate measurement (offsets 0/1 per size).
    pub const THEOREM2_GROWTH_VANILLA: u64 = 50;
    /// `theorem2_shape`: growth-rate measurement for Algorithm A.
    pub const THEOREM2_GROWTH_ALGO_A: u64 = 60;
    /// `theorem2_shape`: speed-up at the small size.
    pub const THEOREM2_SPEEDUP_SMALL: u64 = 70;
    /// `theorem2_shape`: speed-up at the large size.
    pub const THEOREM2_SPEEDUP_LARGE: u64 = 80;
    /// `theorem2_shape`: Theorem 2 scale comparison.
    pub const THEOREM2_SCALE: u64 = 91;
    /// `harness_properties`: Theorem 1 floor sweep base seed.
    pub const HARNESS_THEOREM1_FLOOR: u64 = 301;
    /// `workloads_end_to_end` and `algorithm_invariants` keep their original
    /// inline seeds (0, 4, 5, 17, 23, 99) — documented here for the
    /// registry's completeness.
    pub const INVARIANTS_BASE: u64 = 0;
    /// `sparse_dense_differential`: Erdős–Rényi family instance.
    pub const DIFFERENTIAL_ER: u64 = 401;
    /// `sparse_dense_differential`: random-regular family instance.
    pub const DIFFERENTIAL_REGULAR: u64 = 402;
    /// `sparse_dense_differential`: bridged-clusters family instance.
    pub const DIFFERENTIAL_BRIDGED: u64 = 403;
    /// `sparse_dense_differential`: two-block SBM family instance.
    pub const DIFFERENTIAL_SBM: u64 = 404;
    /// `sparse_dense_differential`: random-geometric family instance
    /// (matrix agreement only — the sample may be disconnected).
    pub const DIFFERENTIAL_GEOMETRIC: u64 = 405;
    /// `sparse_dense_differential`: seeded probe vectors for matvec checks.
    pub const DIFFERENTIAL_PROBE: u64 = 406;
    /// `lanczos_adversarial`: disconnected bridged-cluster halves.  (The
    /// suite's barbell instances are deterministic constructions and need no
    /// seed.)
    pub const LANCZOS_DISCONNECTED: u64 = 412;
    /// `scale_tier`: the 10k-node sparse-path dumbbell acceptance instance.
    pub const SCALE_DUMBBELL: u64 = 421;
    /// `scale_tier`: the 1k scale-suite sweep.
    pub const SCALE_SUITE: u64 = 422;
    /// `moment_differential`: base seed of the incremental-vs-full stopping
    /// oracle (offset by the family index).
    pub const MOMENT_DIFFERENTIAL: u64 = 431;
    /// `moment_differential`: the driven long-run tracker drift check.
    pub const MOMENT_DRIFT: u64 = 432;
    /// `sim_scale_tier`: the mid-size expander-dumbbell relaxation.
    pub const SIM_SCALE_DUMBBELL: u64 = 441;
    /// `sim_scale_tier`: the quick sim-scale sweep.
    pub const SIM_SCALE_SUITE: u64 = 442;
    /// `fault_differential`: clock seed of the no-op-plan bit-identity
    /// oracle (offset by the family index).
    pub const FAULT_DIFFERENTIAL: u64 = 451;
    /// `fault_differential`: scenario instantiation of the oracle families.
    pub const FAULT_SCENARIO: u64 = 452;
    /// `fault_differential`: clock seed of the deterministic mixed-fault
    /// conservation runs (offset by the family index).
    pub const FAULT_CONSERVATION: u64 = 453;
    /// `fault_differential`: fault-plan drop/churn stream of the mixed-fault
    /// conservation runs.
    pub const FAULT_PLAN: u64 = 454;
    /// `parallel_determinism`: estimator fan-out byte-identity oracle
    /// (jobs 1 vs 2 vs 4).
    pub const PARALLEL_ESTIMATOR: u64 = 461;
    /// `parallel_determinism`: PERF report byte-identity oracle (volatile
    /// fields stripped, jobs 1 vs 4).
    pub const PARALLEL_PERF: u64 = 462;
    /// `parallel_determinism`: SIM_SCALE row byte-identity oracle
    /// (jobs 1 vs 4).
    pub const PARALLEL_SIM_SCALE: u64 = 463;
    /// `parallel_determinism`: fully deterministic bench table (E9) rendered
    /// at jobs 1 vs 4.
    pub const PARALLEL_TABLE: u64 = 464;
    /// `sharded_determinism`: scenario instantiation and clock seed of the
    /// shards-{1,2,4} bit-identity oracle (offset by the case index).
    pub const SHARDED_DETERMINISM: u64 = 471;
    /// `sharded_determinism`: uniform initial vectors of the oracle runs.
    pub const SHARDED_INITIAL: u64 = 472;
    /// `sharded_determinism`: fault-plan stream of the faulted oracle runs.
    pub const SHARDED_FAULT: u64 = 473;
    /// `adversary_differential`: clock seed of the no-op-adversary-plan
    /// bit-identity oracle (offset by the family index).
    pub const ADVERSARY_DIFFERENTIAL: u64 = 481;
    /// `adversary_differential`: scenario instantiation of the oracle
    /// families.
    pub const ADVERSARY_SCENARIO: u64 = 482;
    /// `adversary_differential`: adversary stream of the attacked runs.
    pub const ADVERSARY_PLAN: u64 = 483;
    /// `adversary_differential`: crash-fault stream of the mixed
    /// adversary + fault conservation run.
    pub const ADVERSARY_FAULT: u64 = 484;
    /// `adversary_differential`: clock seed of the vanilla-vs-robust
    /// aggregation comparison.
    pub const ADVERSARY_ROBUST: u64 = 485;
    /// `adversary_differential`: clock seed of the sharded bit-identity
    /// oracle (shards 1 vs 2 vs 4 under a mixed adversary plan).
    pub const ADVERSARY_SHARDED: u64 = 486;
    /// `run_store`: base seed of the journal/resume suite (fresh runs,
    /// crash recovery, full-replay byte identity).
    pub const RUN_STORE_SWEEP: u64 = 491;
    /// `run_store`: the deliberately different seed proving trial keys
    /// separate seeds (nothing replays across a seed change).
    pub const RUN_STORE_RESEED: u64 = 492;
    /// `memscale_differential`: scenario instantiation of the flat-vs-legacy
    /// bit-identity oracle families (offset by the family index).
    pub const MEMSCALE_SCENARIO: u64 = 501;
    /// `memscale_differential`: uniform initial vectors of the oracle runs.
    pub const MEMSCALE_INITIAL: u64 = 502;
    /// `memscale_differential`: clock seed of the bit-identity runs (offset
    /// by the family index).
    pub const MEMSCALE_CLOCK: u64 = 503;
    /// `memscale_differential`: fault-plan stream of the mixed
    /// fault + adversary bit-identity runs.
    pub const MEMSCALE_FAULT: u64 = 504;
    /// `memscale_differential`: adversary stream of the mixed runs.
    pub const MEMSCALE_ADVERSARY: u64 = 505;
    /// `f32_tier_oracle`: base seed of the f32-tier convergence and
    /// oracle-violation suite (offset by the family index).
    pub const F32_TIER: u64 = 506;

    /// Every pinned seed of the registry with its name — the collision
    /// check below asserts no two suites reuse a seed, so any new constant
    /// must be added here to be claimable.
    pub fn all() -> Vec<(&'static str, u64)> {
        vec![
            ("THEOREM1_VANILLA_SMALL", THEOREM1_VANILLA_SMALL),
            ("THEOREM1_VANILLA_LARGE", THEOREM1_VANILLA_LARGE),
            ("THEOREM1_WEIGHTED", THEOREM1_WEIGHTED),
            ("THEOREM1_RANDOM_NEIGHBOR", THEOREM1_RANDOM_NEIGHBOR),
            ("THEOREM1_NARROW_CUT", THEOREM1_NARROW_CUT),
            ("THEOREM1_WIDE_CUT", THEOREM1_WIDE_CUT),
            ("THEOREM2_VANILLA", THEOREM2_VANILLA),
            ("THEOREM2_ALGO_A", THEOREM2_ALGO_A),
            ("THEOREM2_GROWTH_VANILLA", THEOREM2_GROWTH_VANILLA),
            ("THEOREM2_GROWTH_ALGO_A", THEOREM2_GROWTH_ALGO_A),
            ("THEOREM2_SPEEDUP_SMALL", THEOREM2_SPEEDUP_SMALL),
            ("THEOREM2_SPEEDUP_LARGE", THEOREM2_SPEEDUP_LARGE),
            ("THEOREM2_SCALE", THEOREM2_SCALE),
            ("HARNESS_THEOREM1_FLOOR", HARNESS_THEOREM1_FLOOR),
            ("INVARIANTS_BASE", INVARIANTS_BASE),
            ("DIFFERENTIAL_ER", DIFFERENTIAL_ER),
            ("DIFFERENTIAL_REGULAR", DIFFERENTIAL_REGULAR),
            ("DIFFERENTIAL_BRIDGED", DIFFERENTIAL_BRIDGED),
            ("DIFFERENTIAL_SBM", DIFFERENTIAL_SBM),
            ("DIFFERENTIAL_GEOMETRIC", DIFFERENTIAL_GEOMETRIC),
            ("DIFFERENTIAL_PROBE", DIFFERENTIAL_PROBE),
            ("LANCZOS_DISCONNECTED", LANCZOS_DISCONNECTED),
            ("SCALE_DUMBBELL", SCALE_DUMBBELL),
            ("SCALE_SUITE", SCALE_SUITE),
            ("MOMENT_DIFFERENTIAL", MOMENT_DIFFERENTIAL),
            ("MOMENT_DRIFT", MOMENT_DRIFT),
            ("SIM_SCALE_DUMBBELL", SIM_SCALE_DUMBBELL),
            ("SIM_SCALE_SUITE", SIM_SCALE_SUITE),
            ("FAULT_DIFFERENTIAL", FAULT_DIFFERENTIAL),
            ("FAULT_SCENARIO", FAULT_SCENARIO),
            ("FAULT_CONSERVATION", FAULT_CONSERVATION),
            ("FAULT_PLAN", FAULT_PLAN),
            ("PARALLEL_ESTIMATOR", PARALLEL_ESTIMATOR),
            ("PARALLEL_PERF", PARALLEL_PERF),
            ("PARALLEL_SIM_SCALE", PARALLEL_SIM_SCALE),
            ("PARALLEL_TABLE", PARALLEL_TABLE),
            ("SHARDED_DETERMINISM", SHARDED_DETERMINISM),
            ("SHARDED_INITIAL", SHARDED_INITIAL),
            ("SHARDED_FAULT", SHARDED_FAULT),
            ("ADVERSARY_DIFFERENTIAL", ADVERSARY_DIFFERENTIAL),
            ("ADVERSARY_SCENARIO", ADVERSARY_SCENARIO),
            ("ADVERSARY_PLAN", ADVERSARY_PLAN),
            ("ADVERSARY_FAULT", ADVERSARY_FAULT),
            ("ADVERSARY_ROBUST", ADVERSARY_ROBUST),
            ("ADVERSARY_SHARDED", ADVERSARY_SHARDED),
            ("RUN_STORE_SWEEP", RUN_STORE_SWEEP),
            ("RUN_STORE_RESEED", RUN_STORE_RESEED),
            ("MEMSCALE_SCENARIO", MEMSCALE_SCENARIO),
            ("MEMSCALE_INITIAL", MEMSCALE_INITIAL),
            ("MEMSCALE_CLOCK", MEMSCALE_CLOCK),
            ("MEMSCALE_FAULT", MEMSCALE_FAULT),
            ("MEMSCALE_ADVERSARY", MEMSCALE_ADVERSARY),
            ("F32_TIER", F32_TIER),
        ]
    }
}

/// The paper's motivating dumbbell: two `K_half` blocks joined by one edge.
pub fn dumbbell_fixture(half: usize) -> (Graph, Partition) {
    dumbbell(half).expect("dumbbell sizes used in tests are valid")
}

/// Asymmetric barbell: `K_left` and `K_right` joined by one edge.
pub fn barbell_fixture(left: usize, right: usize) -> (Graph, Partition) {
    barbell(left, right).expect("barbell sizes used in tests are valid")
}

/// Two Erdős–Rényi clusters joined by `bridges` edges.
pub fn bridged_fixture(
    a: usize,
    b: usize,
    bridges: usize,
    p: f64,
    seed: u64,
) -> (Graph, Partition) {
    bridged_clusters(a, b, bridges, p, seed).expect("bridged-cluster parameters are valid")
}

/// The canonical estimator configuration of the shape suites: 4 independent
/// runs and a time horizon proportional to the Theorem 1 bound (plus `slack`
/// absolute time for small instances).  Stopping checks are O(1) against the
/// incremental moment tracker, so the Definition 1 settling time is located
/// at per-tick resolution — no check-interval workaround, no overshoot.
pub fn shape_estimator(partition: &Partition, seed: u64, slack: f64) -> AveragingTimeEstimator {
    AveragingTimeEstimator::new(
        EstimatorConfig::new(seed)
            .with_runs(4)
            .with_max_time(80.0 * theorem1_lower_bound(partition) + slack),
    )
}

/// Measures the Definition 1 averaging time of `factory`'s algorithm on
/// `(graph, partition)` under the canonical shape configuration, asserting
/// that every run actually settled below the confirmation level.
pub fn measure_averaging_time<H, F>(
    graph: &Graph,
    partition: &Partition,
    factory: F,
    seed: u64,
    slack: f64,
) -> f64
where
    H: EdgeTickHandler,
    F: Fn() -> H + Sync,
{
    let estimate = shape_estimator(partition, seed, slack)
        .estimate(graph, partition, factory)
        .expect("estimation succeeds");
    assert!(
        estimate.fully_confirmed(),
        "runs must converge below the confirmation level"
    );
    estimate.averaging_time
}

/// Factory for the paper's Algorithm A with the epoch constant the shape
/// suites standardize on.
pub fn algorithm_a_factory<'a>(
    graph: &'a Graph,
    partition: &'a Partition,
) -> impl Fn() -> SparseCutAlgorithm + 'a {
    move || {
        SparseCutAlgorithm::from_partition(
            graph,
            partition,
            SparseCutConfig::new().with_epoch_constant(2.0),
        )
        .expect("valid partition")
    }
}

#[cfg(test)]
mod seed_registry_tests {
    use super::seeds;

    /// No two suites may reuse a pinned seed: distinct seeds feed distinct
    /// ChaCha8 streams, so a collision would silently correlate two suites'
    /// randomness (and make one suite's re-pinning shift another's margins).
    #[test]
    fn seed_registry_has_no_collisions() {
        let all = seeds::all();
        for (i, (name_a, seed_a)) in all.iter().enumerate() {
            for (name_b, seed_b) in &all[i + 1..] {
                assert_ne!(
                    seed_a, seed_b,
                    "seed registry collision: {name_a} and {name_b} both pin {seed_a}"
                );
            }
        }
    }

    /// The registry list stays in sync with the constants: every entry's
    /// name matches its value's constant (spot-checked via count — adding a
    /// constant without registering it here is the failure mode).
    #[test]
    fn seed_registry_is_complete() {
        assert_eq!(seeds::all().len(), 53);
    }
}
