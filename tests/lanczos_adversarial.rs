//! Lanczos on adversarial spectra, seed-pinned via the `tests/common`
//! registry.
//!
//! Three spectra that break naive iterative eigensolvers:
//!
//! * **near-degenerate leading eigenvalues** — a clique-pair barbell has an
//!   exactly degenerate cluster of ~`2·(half − 1)` eigenvalues at the clique
//!   value immediately below the isolated `λ_max`, the classic regime where
//!   Lanczos without reorthogonalization fabricates ghost eigenvalues;
//! * **disconnected graphs** — a second zero eigenvalue survives the
//!   all-ones deflation, and the solver must report a Fiedler value of
//!   (numerically) zero rather than silently skipping it;
//! * **a single-edge graph** — after deflation the Krylov space is
//!   one-dimensional, exercising the happy-breakdown path on the smallest
//!   possible instance.

mod common;

use common::seeds;
use sparse_cut_gossip::graph::laplacian::{laplacian, laplacian_sparse};
use sparse_cut_gossip::graph::spectral;
use sparse_cut_gossip::linalg::SymmetricEigen;
use sparse_cut_gossip::prelude::*;

#[test]
fn near_degenerate_barbell_spectrum_matches_dense() {
    // K_16–K_16 with one bridge: λ_max ≈ 16 with an almost exactly
    // degenerate partner, and a tight cluster of 30 eigenvalues at ≈ 16.
    let (graph, partition) = barbell(16, 16).expect("valid barbell");
    assert_eq!(partition.cut_edge_count(), 1);
    let dense = SymmetricEigen::compute(&laplacian(&graph)).expect("dense reference");
    let lanczos = Lanczos::new()
        .with_deflation(Vector::ones(graph.node_count()))
        .run(&laplacian_sparse(&graph))
        .expect("lanczos on barbell");
    let scale = dense.largest().max(1.0);
    assert!(
        (lanczos.largest - dense.largest()).abs() <= 1e-7 * scale,
        "λ_max: lanczos {} vs jacobi {}",
        lanczos.largest,
        dense.largest()
    );
    assert!(
        (lanczos.smallest - dense.second_smallest().unwrap()).abs() <= 1e-7 * scale,
        "λ₂: lanczos {} vs jacobi {}",
        lanczos.smallest,
        dense.second_smallest().unwrap()
    );
    // The spectrum really is adversarial: right below the isolated λ_max
    // sits an (exactly) degenerate cluster of ~2·(half − 1) eigenvalues at
    // the clique value `half` — the regime where Lanczos without
    // reorthogonalization produces spurious ghost eigenvalues.
    let n = dense.eigenvalues().len();
    assert!((dense.eigenvalues()[n - 2] - 16.0).abs() < 1e-9);
    assert!((dense.eigenvalues()[n - 8] - 16.0).abs() < 1e-9);
    assert!(dense.largest() > 16.5);
}

#[test]
fn asymmetric_barbell_cluster_is_resolved_too() {
    let (graph, _) = barbell(12, 20).expect("valid barbell");
    let dense = SymmetricEigen::compute(&laplacian(&graph)).expect("dense reference");
    let lanczos = Lanczos::new()
        .with_deflation(Vector::ones(graph.node_count()))
        .run(&laplacian_sparse(&graph))
        .expect("lanczos on asymmetric barbell");
    let scale = dense.largest().max(1.0);
    assert!((lanczos.largest - dense.largest()).abs() <= 1e-7 * scale);
    assert!((lanczos.smallest - dense.second_smallest().unwrap()).abs() <= 1e-7 * scale);
}

#[test]
fn disconnected_graph_has_zero_fiedler_value() {
    // Two healthy ER clusters with no bridge between them: build the two
    // halves of a bridged-clusters instance without its bridges.
    let g1 = sparse_cut_gossip::graph::generators::erdos_renyi_connected(
        9,
        0.6,
        seeds::LANCZOS_DISCONNECTED,
        100,
    )
    .expect("connected cluster");
    let g2 = sparse_cut_gossip::graph::generators::erdos_renyi_connected(
        8,
        0.6,
        seeds::LANCZOS_DISCONNECTED.wrapping_add(1),
        100,
    )
    .expect("connected cluster");
    let n = g1.node_count() + g2.node_count();
    let mut builder = GraphBuilder::new(n);
    for e in g1.edges() {
        builder.add_edge(e.u().index(), e.v().index()).unwrap();
    }
    for e in g2.edges() {
        builder
            .add_edge(
                g1.node_count() + e.u().index(),
                g1.node_count() + e.v().index(),
            )
            .unwrap();
    }
    let graph = builder.build();
    assert!(!sparse_cut_gossip::graph::traversal::is_connected(&graph));

    // The deflated Lanczos run sees the surviving zero eigenvalue (the
    // component-indicator direction) as its smallest Ritz value.
    let lanczos = Lanczos::new()
        .with_deflation(Vector::ones(n))
        .run(&laplacian_sparse(&graph))
        .expect("lanczos on disconnected graph");
    assert!(
        lanczos.smallest.abs() < 1e-9,
        "disconnected graph must have Fiedler value ≈ 0, got {}",
        lanczos.smallest
    );
    // And the spectral profile rejects it exactly like the dense path.
    assert!(matches!(
        SpectralProfile::compute_sparse(&graph),
        Err(sparse_cut_gossip::graph::GraphError::Disconnected)
    ));
    assert!(matches!(
        SpectralProfile::compute_dense(&graph),
        Err(sparse_cut_gossip::graph::GraphError::Disconnected)
    ));
}

#[test]
fn single_edge_graph_happy_breakdown() {
    // K_2: Laplacian [[1, -1], [-1, 1]], spectrum {0, 2}.  After deflating
    // the ones vector the Krylov space is 1-D, so Lanczos must stop on the
    // breakdown path with the exact answer.
    let graph = Graph::from_edges(2, &[(0, 1)]).expect("single edge");
    let lanczos = Lanczos::new()
        .with_deflation(Vector::ones(2))
        .run(&laplacian_sparse(&graph))
        .expect("lanczos on K2");
    assert!((lanczos.smallest - 2.0).abs() < 1e-12);
    assert!((lanczos.largest - 2.0).abs() < 1e-12);
    assert_eq!(lanczos.iterations, 1);
    assert!(lanczos.exhausted);

    let profile = SpectralProfile::compute_sparse(&graph).expect("profile of K2");
    assert!((profile.algebraic_connectivity - 2.0).abs() < 1e-12);
    assert!((profile.laplacian_lambda_max - 2.0).abs() < 1e-12);
    // Byte-identical quantities with the dense path on this exact instance.
    let dense = SpectralProfile::compute_dense(&graph).expect("dense profile of K2");
    assert!((dense.algebraic_connectivity - profile.algebraic_connectivity).abs() < 1e-12);
}

#[test]
fn sparse_fiedler_helpers_expose_adversarial_values() {
    // The spectral helpers built on the Lanczos path agree with the dense
    // helpers on the (deterministic) barbell family.
    let (graph, _) = barbell(10, 10).expect("valid barbell");
    let dense_value = {
        let eig = SymmetricEigen::compute(&laplacian(&graph)).unwrap();
        eig.second_smallest().unwrap()
    };
    let helper_value = spectral::fiedler_value(&graph).unwrap();
    assert!((helper_value - dense_value).abs() < 1e-9);
    let vector = spectral::fiedler_vector(&graph).unwrap();
    // On a balanced barbell the Fiedler vector separates the blocks.
    assert!(vector[0] * vector[19] < 0.0);
}
