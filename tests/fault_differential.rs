//! The fault-path differential oracle.
//!
//! The fault-injection layer threads through the engine's hot path, so its
//! zero-cost contract is pinned the same way the incremental-moment and
//! sparse/dense paths are (`tests/moment_differential.rs`,
//! `tests/sparse_dense_differential.rs`): a run configured with the no-op
//! [`FaultPlan::none`] must be **byte-identical** — stop tick, stop time,
//! stop reason, moment refresh count, and bitwise final state — to a run
//! with no plan at all, on every scale generator family, under both clock
//! models, at pinned seeds.
//!
//! On top of the identity oracle, deterministic mixed-fault runs assert the
//! conservation contract: suppressed contacts skip the pairwise update
//! atomically, so total mass is conserved exactly and the class-C variance
//! stays monotonically non-increasing no matter what the schedule does.

mod common;

use common::seeds;
use sparse_cut_gossip::prelude::*;

/// Small instances of every scale generator family (mirrors the
/// moment-differential oracle): chordal ring, expander dumbbell, expander
/// barbell, ring of cliques.
fn oracle_families() -> Vec<(&'static str, Scenario)> {
    vec![
        ("chordal-ring", Scenario::ChordalRing { n: 128 }),
        ("expander-dumbbell", Scenario::ExpanderDumbbell { half: 64 }),
        (
            "expander-barbell",
            Scenario::ExpanderBarbell {
                left: 43,
                right: 85,
            },
        ),
        (
            "ring-of-cliques",
            Scenario::RingOfCliques {
                cliques: 8,
                clique_size: 16,
            },
        ),
    ]
}

/// Runs vanilla gossip on `scenario` from the adversarial initial condition
/// with the given (optional) fault plan and returns the outcome.
fn run_with_plan(
    scenario: &Scenario,
    sim_seed: u64,
    clock_model: ClockModel,
    plan: Option<FaultPlan>,
) -> SimulationOutcome {
    let instance = scenario
        .instantiate(seeds::FAULT_SCENARIO)
        .expect("valid scenario");
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
    let mut config = SimulationConfig::new(sim_seed)
        .with_clock_model(clock_model)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(20_000_000))
        // A short refresh period so the refresh-count component of the
        // identity oracle is exercised even by the fastest family (the
        // chordal ring stops after a few hundred ticks).
        .with_moment_refresh_every_ticks(128);
    config.fault_plan = plan;
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("valid simulation");
    simulator.run().expect("run completes")
}

#[test]
fn noop_fault_plan_is_bit_identical_to_the_fault_free_engine_on_every_family() {
    for (index, (name, scenario)) in oracle_families().into_iter().enumerate() {
        for clock_model in [ClockModel::GlobalUniform, ClockModel::PerEdgeQueue] {
            let sim_seed = seeds::FAULT_DIFFERENTIAL + index as u64;
            let baseline = run_with_plan(&scenario, sim_seed, clock_model, None);
            let noop = run_with_plan(&scenario, sim_seed, clock_model, Some(FaultPlan::none()));

            assert!(baseline.converged(), "{name}/{clock_model:?}: baseline");
            assert_eq!(
                baseline.total_ticks, noop.total_ticks,
                "{name}/{clock_model:?}: stop ticks diverged"
            );
            assert_eq!(
                baseline.elapsed_time.to_bits(),
                noop.elapsed_time.to_bits(),
                "{name}/{clock_model:?}: stop times diverged"
            );
            assert_eq!(
                baseline.stop_reason, noop.stop_reason,
                "{name}/{clock_model:?}: stop reasons diverged"
            );
            assert_eq!(
                baseline.moment_refreshes, noop.moment_refreshes,
                "{name}/{clock_model:?}: moment refresh counts diverged"
            );
            assert!(
                baseline.moment_refreshes >= 2,
                "{name}/{clock_model:?}: refresh schedule not exercised"
            );
            // Bitwise, not approximate: the no-op plan must not perturb a
            // single float operation.
            for (node, (a, b)) in baseline
                .final_values
                .as_slice()
                .iter()
                .zip(noop.final_values.as_slice())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}/{clock_model:?}: node {node} diverged ({a} vs {b})"
                );
            }
            // The injector ran (classifying every tick) yet suppressed
            // nothing and drew nothing.
            assert_eq!(noop.fault_stats.total_suppressed(), 0, "{name}");
            assert_eq!(noop.fault_stats.delivered, noop.total_ticks, "{name}");
            assert_eq!(baseline.fault_stats, FaultStats::default(), "{name}");
        }
    }
}

#[test]
fn mixed_fault_schedules_conserve_mass_and_never_raise_variance() {
    // A deterministic plan mixing all three fault kinds on every family:
    // 10% message loss, the first cut edge down for an early window, and
    // two nodes paused across overlapping windows starting at tick 0 (the
    // fastest family, the chordal ring, stops after a few hundred ticks, so
    // later windows would never engage there).
    for (index, (name, scenario)) in oracle_families().into_iter().enumerate() {
        let instance = scenario
            .instantiate(seeds::FAULT_SCENARIO)
            .expect("valid scenario");
        let cut_edge = instance.partition.cut_edges()[0];
        let plan = FaultPlan::new(seeds::FAULT_PLAN + index as u64)
            .with_drop_probability(0.1)
            .with_edge_outage(cut_edge, 0, 2_000)
            .with_node_pause(NodeId(0), 0, 1_000)
            .with_node_pause(NodeId(instance.graph.node_count() - 1), 100, 1_500);
        let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
        let initial_mean = initial.mean();
        let initial_variance = initial.variance();
        let config = SimulationConfig::new(seeds::FAULT_CONSERVATION + index as u64)
            .with_clock_model(ClockModel::GlobalUniform)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(20_000_000))
            .with_trace(TraceConfig::every_ticks(64))
            .with_fault_plan(plan);
        let mut simulator =
            AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
                .expect("valid simulation");
        let outcome = simulator.run().expect("run completes");

        assert!(outcome.converged(), "{name}: did not converge under faults");
        assert!(
            outcome.fault_stats.dropped > 0
                && outcome.fault_stats.edge_down_skips + outcome.fault_stats.node_pause_skips > 0,
            "{name}: the mixed plan never engaged ({:?})",
            outcome.fault_stats
        );
        // Conservation oracle: atomically skipped contacts cannot leak or
        // duplicate mass.
        assert!(
            (outcome.final_values.mean() - initial_mean).abs() < 1e-9,
            "{name}: mean drifted"
        );
        // Class-C monotonicity along the sampled trace.
        let trace = outcome.trace.as_ref().expect("trace requested");
        let mut last = initial_variance + 1e-12;
        for point in trace.points() {
            assert!(
                point.variance <= last + 1e-9,
                "{name}: variance rose from {last} to {} at t = {}",
                point.variance,
                point.time
            );
            last = point.variance;
        }
        // Every tick was classified exactly once.
        assert_eq!(
            outcome.fault_stats.total_contacts(),
            outcome.total_ticks,
            "{name}"
        );
    }
}

#[test]
fn killing_the_scheduled_outages_matches_the_plans_dynamic_view() {
    // The worst-surviving-subgraph probe consumes exactly what the plan
    // reports: killing `edges_ever_down` and the edges of
    // `nodes_ever_paused` on a DynamicGraphView reproduces the intended
    // degraded topology.  On the expander dumbbell, taking the single
    // bridge down must split the live view into two components whose worst
    // λ₂ is the (much larger) within-block connectivity.
    let scenario = Scenario::ExpanderDumbbell { half: 64 };
    let instance = scenario
        .instantiate(seeds::FAULT_SCENARIO)
        .expect("valid scenario");
    let bridge = instance.partition.cut_edges()[0];
    let plan = FaultPlan::new(1).with_edge_outage(bridge, 0, 100);
    let mut view = DynamicGraphView::new(&instance.graph);
    let intact = view
        .worst_surviving_connectivity()
        .expect("probe computes")
        .expect("live edges exist");
    for edge in plan.edges_ever_down() {
        view.kill_edge(edge).expect("edge in range");
    }
    assert!(!view.is_live_connected());
    assert_eq!(view.live_components().len(), 2);
    let degraded = view
        .worst_surviving_connectivity()
        .expect("probe computes")
        .expect("live edges exist");
    assert!(
        degraded > intact,
        "each block alone mixes faster than the bridged whole \
         (block λ₂ = {degraded}, whole λ₂ = {intact})"
    );
}
