//! The dense-vs-sparse differential test oracle.
//!
//! The dense `Matrix`/Jacobi tier is the trusted reference: it is simple,
//! full-spectrum, and validated against closed forms.  The sparse
//! `CsrMatrix`/Lanczos tier is the scaling path.  This suite pins the two
//! against each other on **every generator family** of the workspace, at
//! pinned seeds from the registry in `tests/common`:
//!
//! * every matrix builder (adjacency, Laplacian, normalized Laplacian,
//!   expected gossip matrix) agrees elementwise within `1e-12` after
//!   densification;
//! * CSR `matvec`/`quadratic_form`/`frobenius_norm` agree with the dense
//!   kernels on seeded probe vectors;
//! * `SpectralProfile::compute_sparse` agrees with
//!   `SpectralProfile::compute_dense` (λ₂, λ_max, gap, `T_van` estimate)
//!   within solver tolerance;
//! * the size dispatch in `SpectralProfile::compute` is **byte-identical**
//!   to the dense path below the threshold, so dispatch can never perturb
//!   the small-graph results the rest of the test harness pins.
//!
//! Any sparse/dense drift introduced by a future PR fails this suite.

mod common;

use common::seeds;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use sparse_cut_gossip::graph::generators;
use sparse_cut_gossip::graph::laplacian::{
    adjacency_matrix, adjacency_matrix_sparse, expected_gossip_matrix,
    expected_gossip_matrix_sparse, laplacian, laplacian_sparse, normalized_laplacian,
    normalized_laplacian_sparse,
};
use sparse_cut_gossip::prelude::*;

/// Elementwise agreement tolerance after densification.
const MATRIX_TOL: f64 = 1e-12;

/// Eigenvalue agreement tolerance, relative to the spectral scale.  Small
/// instances exhaust the Krylov space, so the sparse values are exact up to
/// round-off; the margin absorbs accumulated floating-point noise only.
const EIGEN_TOL: f64 = 1e-7;

/// Every generator family of the workspace, instantiated small enough for
/// the dense reference path, at pinned seeds.  The bool records whether the
/// instance is guaranteed connected (spectral profiles need that).
fn families() -> Vec<(String, Graph, bool)> {
    let mut out: Vec<(String, Graph, bool)> = Vec::new();
    let mut push = |name: &str, graph: Graph, connected: bool| {
        out.push((name.to_string(), graph, connected));
    };
    // Deterministic families.
    push("complete-10", generators::complete(10).unwrap(), true);
    push("path-12", generators::path(12).unwrap(), true);
    push("cycle-12", generators::cycle(12).unwrap(), true);
    push("star-9", generators::star(9).unwrap(), true);
    push("grid2d-4x5", generators::grid2d(4, 5).unwrap(), true);
    push("torus2d-4x4", generators::torus2d(4, 4).unwrap(), true);
    push("hypercube-4", generators::hypercube(4).unwrap(), true);
    push(
        "complete-bipartite-4-7",
        generators::complete_bipartite(4, 7).unwrap(),
        true,
    );
    // Random families.
    push(
        "erdos-renyi-18",
        generators::erdos_renyi_connected(18, 0.3, seeds::DIFFERENTIAL_ER, 100).unwrap(),
        true,
    );
    push(
        "random-regular-16-4",
        generators::random_regular(16, 4, seeds::DIFFERENTIAL_REGULAR).unwrap(),
        true,
    );
    push(
        "random-geometric-20",
        generators::random_geometric(20, 0.35, seeds::DIFFERENTIAL_GEOMETRIC)
            .unwrap()
            .0,
        false,
    );
    // Sparse-cut families (graph part of the (graph, partition) pairs).
    push("dumbbell-8", generators::dumbbell(8).unwrap().0, true);
    push("barbell-5-9", generators::barbell(5, 9).unwrap().0, true);
    push(
        "bridged-8-10",
        generators::bridged_clusters(8, 10, 3, 0.5, seeds::DIFFERENTIAL_BRIDGED)
            .unwrap()
            .0,
        true,
    );
    push(
        "sbm-8-10",
        generators::two_block_sbm(8, 10, 0.7, 0.1, seeds::DIFFERENTIAL_SBM)
            .unwrap()
            .0,
        true,
    );
    push(
        "grid-corridor-3x4",
        generators::grid_corridor(3, 4, 2).unwrap().0,
        true,
    );
    // Scaling-tier families, at differential-suite size.
    push(
        "chordal-ring-24",
        generators::chordal_ring(24).unwrap(),
        true,
    );
    push(
        "expander-dumbbell-16",
        generators::expander_dumbbell(16).unwrap().0,
        true,
    );
    push(
        "expander-barbell-10-14",
        generators::expander_barbell(10, 14).unwrap().0,
        true,
    );
    push(
        "ring-of-cliques-6x5",
        generators::ring_of_cliques(6, 5).unwrap().0,
        true,
    );
    out
}

fn assert_dense_sparse_equal(name: &str, kind: &str, dense: &Matrix, sparse: &CsrMatrix) {
    assert_eq!(dense.rows(), sparse.rows(), "{name}/{kind}: row mismatch");
    assert_eq!(dense.cols(), sparse.cols(), "{name}/{kind}: col mismatch");
    let densified = sparse.to_dense();
    for i in 0..dense.rows() {
        for j in 0..dense.cols() {
            let d = dense.get(i, j);
            let s = densified.get(i, j);
            assert!(
                (d - s).abs() <= MATRIX_TOL,
                "{name}/{kind}[{i},{j}]: dense {d} vs sparse {s}"
            );
        }
    }
}

fn probe_vector(len: usize, stream: u64) -> Vector {
    let mut rng = ChaCha8Rng::seed_from_u64(seeds::DIFFERENTIAL_PROBE.wrapping_add(stream));
    (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

#[test]
fn matrix_builders_agree_elementwise_on_every_family() {
    for (name, graph, _) in families() {
        assert_dense_sparse_equal(
            &name,
            "adjacency",
            &adjacency_matrix(&graph),
            &adjacency_matrix_sparse(&graph),
        );
        assert_dense_sparse_equal(
            &name,
            "laplacian",
            &laplacian(&graph),
            &laplacian_sparse(&graph),
        );
        assert_dense_sparse_equal(
            &name,
            "normalized-laplacian",
            &normalized_laplacian(&graph),
            &normalized_laplacian_sparse(&graph),
        );
        if graph.edge_count() > 0 {
            assert_dense_sparse_equal(
                &name,
                "gossip-matrix",
                &expected_gossip_matrix(&graph).unwrap(),
                &expected_gossip_matrix_sparse(&graph).unwrap(),
            );
        }
    }
}

#[test]
fn csr_kernels_agree_with_dense_on_every_family() {
    for (index, (name, graph, _)) in families().into_iter().enumerate() {
        let dense = laplacian(&graph);
        let sparse = laplacian_sparse(&graph);
        let x = probe_vector(graph.node_count(), index as u64);
        let yd = dense.matvec(&x).unwrap();
        let ys = sparse.matvec(&x).unwrap();
        assert!(
            yd.distance(&ys).unwrap() <= MATRIX_TOL * (1.0 + yd.norm()),
            "{name}: matvec drift"
        );
        let qd = dense.quadratic_form(&x).unwrap();
        let qs = sparse.quadratic_form(&x).unwrap();
        assert!(
            (qd - qs).abs() <= MATRIX_TOL * (1.0 + qd.abs()),
            "{name}: quadratic form drift ({qd} vs {qs})"
        );
        assert!(
            (dense.frobenius_norm() - sparse.frobenius_norm()).abs()
                <= MATRIX_TOL * (1.0 + dense.frobenius_norm()),
            "{name}: frobenius drift"
        );
        assert_eq!(
            dense.is_symmetric(1e-12),
            sparse.is_symmetric(1e-12),
            "{name}: symmetry check drift"
        );
    }
}

#[test]
fn spectral_profiles_agree_within_solver_tolerance() {
    for (name, graph, connected) in families() {
        if !connected || graph.node_count() < 2 || graph.edge_count() == 0 {
            continue;
        }
        let dense = SpectralProfile::compute_dense(&graph).unwrap();
        let sparse = SpectralProfile::compute_sparse(&graph).unwrap();
        let scale = dense.laplacian_lambda_max.max(1.0);
        assert!(
            (dense.algebraic_connectivity - sparse.algebraic_connectivity).abs()
                <= EIGEN_TOL * scale,
            "{name}: λ₂ {0} vs {1}",
            dense.algebraic_connectivity,
            sparse.algebraic_connectivity
        );
        assert!(
            (dense.laplacian_lambda_max - sparse.laplacian_lambda_max).abs() <= EIGEN_TOL * scale,
            "{name}: λ_max {0} vs {1}",
            dense.laplacian_lambda_max,
            sparse.laplacian_lambda_max
        );
        assert!(
            (dense.gossip_spectral_gap - sparse.gossip_spectral_gap).abs() <= EIGEN_TOL,
            "{name}: gap drift"
        );
        let tv_d = dense.vanilla_averaging_time_estimate();
        let tv_s = sparse.vanilla_averaging_time_estimate();
        assert!(
            (tv_d - tv_s).abs() <= 1e-5 * tv_d.abs().max(1.0),
            "{name}: T_van {tv_d} vs {tv_s}"
        );
        assert_eq!(dense.edge_count, sparse.edge_count, "{name}");
        assert_eq!(dense.node_count, sparse.node_count, "{name}");
    }
}

#[test]
fn dispatch_below_threshold_is_byte_identical_to_dense() {
    for (name, graph, connected) in families() {
        if !connected || graph.node_count() < 2 || graph.edge_count() == 0 {
            continue;
        }
        assert!(
            graph.node_count() <= SPARSE_DISPATCH_THRESHOLD,
            "{name}: differential families must sit below the dispatch threshold"
        );
        let dispatched = SpectralProfile::compute(&graph).unwrap();
        let dense = SpectralProfile::compute_dense(&graph).unwrap();
        // Where both paths run the same tier, results are *byte*-identical:
        // dispatch must never perturb small-graph numbers.
        assert_eq!(
            dispatched.algebraic_connectivity.to_bits(),
            dense.algebraic_connectivity.to_bits(),
            "{name}: dispatched λ₂ differs from dense"
        );
        assert_eq!(
            dispatched.laplacian_lambda_max.to_bits(),
            dense.laplacian_lambda_max.to_bits(),
            "{name}"
        );
        assert_eq!(
            dispatched.vanilla_averaging_time_estimate().to_bits(),
            dense.vanilla_averaging_time_estimate().to_bits(),
            "{name}: dispatched T_van differs from dense"
        );
        assert_eq!(dispatched, dense, "{name}: profile structs differ");
    }
}

#[test]
fn fiedler_values_and_vectors_agree_across_tiers() {
    for (name, graph, connected) in families() {
        if !connected || graph.node_count() < 2 || graph.edge_count() == 0 {
            continue;
        }
        let lap_dense = laplacian(&graph);
        let dense_eig = sparse_cut_gossip::linalg::SymmetricEigen::compute(&lap_dense).unwrap();
        let lambda2 = dense_eig.second_smallest().unwrap();
        let lap_sparse = laplacian_sparse(&graph);
        let lanczos = Lanczos::new()
            .with_deflation(Vector::ones(graph.node_count()))
            .run(&lap_sparse)
            .unwrap();
        let scale = dense_eig.largest().max(1.0);
        assert!(
            (lanczos.smallest - lambda2).abs() <= EIGEN_TOL * scale,
            "{name}: Lanczos Fiedler value {0} vs Jacobi {lambda2}",
            lanczos.smallest
        );
        // The Ritz vector is a genuine eigenvector: check the residual
        // directly (eigenvector comparison is ambiguous under degeneracy).
        let residual = lap_sparse
            .matvec(&lanczos.smallest_vector)
            .unwrap()
            .distance(&lanczos.smallest_vector.scaled(lanczos.smallest))
            .unwrap();
        assert!(
            residual <= 1e-5 * scale,
            "{name}: Fiedler residual {residual}"
        );
    }
}

#[test]
fn above_threshold_chain_spectra_match_closed_forms() {
    // Regression guard: path/cycle graphs have the hardest spectra for
    // Lanczos (eigenvalue spacing ~1/n², needing Θ(n) Krylov steps), and
    // they dispatch to the sparse path above the threshold.  The analytic
    // spectrum replaces the (here infeasible) dense reference:
    // path λ₂ = 2(1 − cos(π/n)), cycle λ₂ = 2(1 − cos(2π/n)).
    let n = 600;
    let path = generators::path(n).unwrap();
    assert!(path.node_count() > SPARSE_DISPATCH_THRESHOLD);
    let profile = SpectralProfile::compute(&path).expect("sparse path profile");
    let expected = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
    assert!(
        (profile.algebraic_connectivity - expected).abs() <= 1e-9,
        "path-{n}: λ₂ {} vs closed form {expected}",
        profile.algebraic_connectivity
    );
    assert!((profile.laplacian_lambda_max - 4.0).abs() < 1e-4);

    let m = 800;
    let cycle = generators::cycle(m).unwrap();
    let profile = SpectralProfile::compute(&cycle).expect("sparse cycle profile");
    let expected = 2.0 * (1.0 - (2.0 * std::f64::consts::PI / m as f64).cos());
    assert!(
        (profile.algebraic_connectivity - expected).abs() <= 1e-9,
        "cycle-{m}: λ₂ {} vs closed form {expected}",
        profile.algebraic_connectivity
    );
}

#[test]
fn iterative_convergence_regime_matches_closed_form() {
    // Exercise Lanczos' stabilization-based stopping regime (convergence
    // well before Krylov exhaustion) and pin the result against an analytic
    // spectrum.  This is the regime the sparse tier runs in at scale, which
    // the small exhaustion-regime families above cannot exercise.  A 2-D
    // grid is the right instrument: its spectrum is the closed-form sum of
    // two path spectra and its gaps are wide enough to converge in ≪ n
    // steps (a 1-D chain, by contrast, always exhausts before stabilizing).
    let (rows, cols) = (30usize, 40usize);
    let grid = generators::grid2d(rows, cols).unwrap();
    let n = grid.node_count();
    let lap = laplacian_sparse(&grid);
    let eig = Lanczos::new()
        .with_deflation(Vector::ones(n))
        .run(&lap)
        .expect("Lanczos converges on the grid");
    assert!(
        eig.iterations < n - 1,
        "test must exercise the non-exhaustion regime (ran {} steps)",
        eig.iterations
    );
    assert!(!eig.exhausted);
    // grid2d eigenvalues are λ_i(path rows) + λ_j(path cols).
    let path_ev =
        |k: usize, m: usize| 2.0 * (1.0 - (std::f64::consts::PI * k as f64 / m as f64).cos());
    let lambda2 = path_ev(1, cols.max(rows));
    let lambda_max = path_ev(rows - 1, rows) + path_ev(cols - 1, cols);
    assert!(
        (eig.smallest - lambda2).abs() <= 1e-7 * lambda_max,
        "iterative λ₂ {} vs closed form {lambda2}",
        eig.smallest
    );
    assert!(
        (eig.largest - lambda_max).abs() <= 1e-7 * lambda_max,
        "iterative λ_max {} vs closed form {lambda_max}",
        eig.largest
    );
}

#[test]
fn gossip_matrix_spectrum_consistency_across_tiers() {
    // λ₂(W̄) = 1 − λ₂(L)/(2|E|): the sparse path must reproduce the dense
    // expected-gossip spectrum through the Laplacian relation.
    for (name, graph, connected) in families() {
        if !connected || graph.node_count() < 2 || graph.edge_count() == 0 {
            continue;
        }
        let w_dense = expected_gossip_matrix(&graph).unwrap();
        let eig = sparse_cut_gossip::linalg::SymmetricEigen::compute(&w_dense).unwrap();
        let n = eig.eigenvalues().len();
        let second_largest_w = eig.eigenvalues()[n - 2];
        let sparse = SpectralProfile::compute_sparse(&graph).unwrap();
        assert!(
            ((1.0 - sparse.gossip_spectral_gap) - second_largest_w).abs() <= EIGEN_TOL,
            "{name}: 1 − gap {0} vs λ₂(W̄) {second_largest_w}",
            1.0 - sparse.gossip_spectral_gap
        );
    }
}
