//! Run-store journal and resume oracles.
//!
//! The run store (`gossip-store`) promises that an interrupted sweep can be
//! resumed: every committed trial replays bit-identically from its journal,
//! only the missing trials are recomputed, and a crash that damages the
//! final journal line is detected, dropped, and recovered from.  This suite
//! pins those promises on the real SIM_SCALE tier machinery
//! (`runner::run_sim_scale` through a `StoreSink`), not on store unit
//! fixtures — the same path the `experiments` binary's `--store-dir
//! --resume` flags exercise and the CI interrupt-and-resume gate drives
//! end to end.
//!
//! Seeds 491–492 (see `tests/common`).

mod common;

use common::seeds;
use gossip_bench::runner::{self, HarnessConfig, SimScaleReport};
use gossip_store::{RunStore, StoreSink};
use std::path::{Path, PathBuf};

fn temp_store(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("gossip-run-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn config(seed: u64) -> HarnessConfig {
    HarnessConfig {
        seed,
        // jobs = 1 keeps journal line order equal to trial order, so the
        // crash-simulation below knows exactly which trials survive.
        jobs: Some(1),
        ..HarnessConfig::quick()
    }
}

/// Runs the SIM_SCALE tier through a store sink rooted at `dir`, returning
/// the report and the per-tier (replayed, computed) counts.
fn run_sim_scale_with_store(dir: &Path, seed: u64, resume: bool) -> (SimScaleReport, usize, usize) {
    let sink = StoreSink::new(RunStore::open(dir, resume).expect("store opens"));
    let (report, _table) = runner::run_sim_scale(&config(seed), &sink).expect("tier runs");
    let stats = sink.stats();
    let tier = stats.get("SIM_SCALE").copied().unwrap_or_default();
    (report, tier.replayed, tier.computed)
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join("sim_scale.jsonl")
}

fn journal_lines(dir: &Path) -> Vec<String> {
    std::fs::read_to_string(journal_path(dir))
        .expect("journal exists")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Strips the wall-clock lines — the same field set the CI gate filters
/// with `grep -vE` — so interrupted-then-resumed reports (whose recomputed
/// trials re-time themselves) diff clean against uninterrupted ones.
fn strip_wall_clock(json: &str) -> String {
    json.lines()
        .filter(|line| {
            !["\"wall_ms\":", "\"ticks_per_sec\":"]
                .iter()
                .any(|needle| line.trim_start().starts_with(needle))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn pretty(report: &SimScaleReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

#[test]
fn fresh_run_journals_every_trial_and_full_resume_replays_byte_identically() {
    let dir = temp_store("full-replay");
    let (reference, replayed, computed) =
        run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, false);
    assert_eq!(replayed, 0, "a fresh store has nothing to replay");
    assert_eq!(computed, reference.rows.len());
    assert_eq!(
        journal_lines(&dir).len(),
        reference.rows.len(),
        "one journal line per committed trial"
    );

    // Resume over a complete journal: every trial replays, nothing is
    // recomputed, and the report — wall-clock fields included, since they
    // replay as committed — is byte-identical.
    let (resumed, replayed, computed) =
        run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, true);
    assert_eq!(replayed, reference.rows.len());
    assert_eq!(computed, 0);
    assert_eq!(pretty(&resumed), pretty(&reference));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_tail_is_dropped_and_resume_recomputes_only_the_missing_trials() {
    let dir = temp_store("crash-resume");
    let (reference, _, _) = run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, false);
    let total = reference.rows.len();
    assert!(total >= 3, "the suite needs at least 3 trials to interrupt");

    // Simulate a crash mid-append: keep the first two committed records
    // plus an unterminated fragment of the third.
    let lines = journal_lines(&dir);
    let mut damaged = format!("{}\n{}\n", lines[0], lines[1]);
    damaged.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(journal_path(&dir), &damaged).unwrap();

    // The resume load must notice the tail, drop it, and report it.
    let store = RunStore::open(&dir, true).expect("damaged tail still opens");
    assert!(
        store
            .notes()
            .iter()
            .any(|n| n.contains("dropped crash tail")),
        "load notes must surface the dropped tail, got {:?}",
        store.notes()
    );
    assert_eq!(store.committed_count("SIM_SCALE"), 2);
    drop(store);

    // Resuming the sweep replays the two surviving trials and recomputes
    // exactly the rest; the journal is whole again afterwards.
    let (resumed, replayed, computed) =
        run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, true);
    assert_eq!(replayed, 2);
    assert_eq!(computed, total - 2);
    assert_eq!(journal_lines(&dir).len(), total);

    // Replayed rows are bit-identical to the original run (wall clock and
    // all); recomputed rows agree on everything but their fresh timings.
    let reference_json = pretty(&reference);
    let resumed_json = pretty(&resumed);
    assert_eq!(
        strip_wall_clock(&resumed_json),
        strip_wall_clock(&reference_json)
    );
    for (a, b) in reference.rows.iter().zip(resumed.rows.iter()).take(2) {
        assert_eq!(a.stop_time.to_bits(), b.stop_time.to_bits(), "{}", a.family);
        assert_eq!(a.wall_ms.to_bits(), b.wall_ms.to_bits(), "{}", a.family);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_before_the_final_record_fails_the_resume_load() {
    let dir = temp_store("hard-corrupt");
    let (reference, _, _) = run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, false);
    assert!(reference.rows.len() >= 2);

    // Damage an *interior* record: that cannot be crash truncation, so the
    // load must refuse rather than silently recompute around it.
    let mut lines = journal_lines(&dir);
    lines[0] = lines[0]
        .replace("\"experiment\"", "\"experimen")
        .replace("\"fingerprint\"", "\"fingerprint");
    let mut damaged = lines.join("\n");
    damaged.push('\n');
    std::fs::write(journal_path(&dir), &damaged).unwrap();
    assert!(
        RunStore::open(&dir, true).is_err(),
        "interior corruption must be a hard load error"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_different_seed_replays_nothing() {
    let dir = temp_store("reseed");
    let (reference, _, _) = run_sim_scale_with_store(&dir, seeds::RUN_STORE_SWEEP, false);

    // Same store, different base seed: every trial key changes, so the
    // resume computes the full sweep from scratch.
    let (reseeded, replayed, computed) =
        run_sim_scale_with_store(&dir, seeds::RUN_STORE_RESEED, true);
    assert_eq!(replayed, 0, "a seed change must invalidate every trial key");
    assert_eq!(computed, reseeded.rows.len());
    assert_eq!(reseeded.rows.len(), reference.rows.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
