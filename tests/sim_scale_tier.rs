//! The simulation scaling-tier acceptance tests.
//!
//! The headline guarantee of this tier: an asynchronous run on a
//! multi-thousand-node bounded-degree graph reaches the Definition 1 stop
//! with **per-tick** checking — `check_every_ticks = 1`, no check-interval
//! workaround — and the only O(n) variance passes on the hot path are the
//! scheduled exact moment refreshes (plus the one-off passes at
//! construction and in `finish`).  The full 50k grid is exercised by
//! `experiments --only SIM_SCALE` (see `BENCH_sim_scale.json`); this suite
//! pins a debug-friendly mid-size instance of the same machinery.

mod common;

use common::seeds;
use sparse_cut_gossip::prelude::*;
use sparse_cut_gossip::workloads::scenarios::sim_scale_suite;

#[test]
fn expander_dumbbell_relaxes_with_per_tick_checking_and_scheduled_refreshes_only() {
    let scenario = Scenario::ExpanderDumbbell { half: 2_500 };
    let instance = scenario
        .instantiate(seeds::SIM_SCALE_DUMBBELL)
        .expect("valid scenario");
    assert_eq!(instance.graph.node_count(), 5_000);
    instance.validate_notation1().expect("notation 1 holds");

    let initial = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
        .generate(
            instance.graph.node_count(),
            Some(&instance.partition),
            seeds::SIM_SCALE_DUMBBELL,
        )
        .expect("valid initial condition");
    let refresh = 2_048u64;
    let config = SimulationConfig::new(seeds::SIM_SCALE_DUMBBELL)
        .with_clock_model(ClockModel::GlobalUniform)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(50_000_000))
        .with_moment_refresh_every_ticks(refresh);
    // Per-tick checking is the default; pin it explicitly so a future
    // regression that reintroduces a check interval fails here.
    assert_eq!(config.check_every_ticks, 1);
    assert_eq!(config.variance_mode, VarianceMode::Incremental);

    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("valid simulation");
    let outcome = simulator.run().expect("run completes");

    assert!(outcome.converged(), "Definition 1 stop not reached");
    assert!(outcome.variance_ratio() < 0.14);
    // With per-tick checks a run stops at the exact crossing tick — never on
    // a coarser grid (the old |E|/10 workaround made stop ticks multiples of
    // the interval on long runs).
    assert!(outcome.total_ticks > 0);
    // The only O(n) variance work on the hot path was the deterministic
    // refresh schedule: one exact pass per full window, nothing else (the
    // values stay finite throughout, so no salvage refresh can occur).
    assert_eq!(outcome.moment_refreshes, outcome.total_ticks / refresh);
    // The run is long enough for the schedule to have fired repeatedly.
    assert!(
        outcome.moment_refreshes >= 3,
        "run unexpectedly short: {} ticks",
        outcome.total_ticks
    );
    // And the incremental moments the stopping decision was based on agree
    // with an exact recompute of the final state.
    assert!((outcome.final_values.incremental_variance() - outcome.final_variance).abs() < 1e-9);
}

#[test]
fn quick_sim_scale_suite_converges_at_one_thousand_nodes() {
    for scenario in sim_scale_suite(1_000) {
        let instance = scenario
            .instantiate(seeds::SIM_SCALE_SUITE)
            .expect("valid scenario");
        instance.validate_notation1().expect("notation 1 holds");
        let initial = match scenario {
            Scenario::ChordalRing { .. } => {
                AveragingTimeEstimator::adversarial_initial(&instance.partition)
            }
            _ => InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
                .generate(
                    instance.graph.node_count(),
                    Some(&instance.partition),
                    seeds::SIM_SCALE_SUITE,
                )
                .expect("valid initial condition"),
        };
        let config = SimulationConfig::new(seeds::SIM_SCALE_SUITE)
            .with_clock_model(ClockModel::GlobalUniform)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(20_000_000));
        let mut simulator =
            AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
                .expect("valid simulation");
        let outcome = simulator.run().expect("run completes");
        assert!(
            outcome.converged(),
            "{} did not reach the Definition 1 stop",
            instance.name
        );
        assert!(
            outcome.variance_ratio() < 0.14,
            "{}: ratio {}",
            instance.name,
            outcome.variance_ratio()
        );
    }
}
