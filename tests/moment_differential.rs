//! The incremental-vs-full differential oracle for Definition 1 stopping.
//!
//! The simulation engine's hot path evaluates the stopping rule against the
//! O(1) incremental moment tracker ([`VarianceMode::Incremental`]); the
//! legacy O(n)-per-check recompute survives as
//! [`VarianceMode::ExactEveryCheck`] precisely so the two can be pinned
//! against each other.  The oracle policy mirrors the sparse/dense one
//! (`tests/sparse_dense_differential.rs`): the fast path is never trusted on
//! its own.
//!
//! Pinned-seed long runs on every scale generator family assert that
//!
//! * incremental and full-recompute stopping fire at the **identical tick**
//!   (and hence at the identical simulated time, with identical final
//!   states — the event stream is a pure function of the seed);
//! * the trackers agree within `1e-9` of the exact full pass after the
//!   scheduled periodic refreshes;
//! * a driven long random update sequence (no engine involved) keeps the
//!   running moments within `1e-9` of a from-scratch recompute.

mod common;

use common::seeds;
use sparse_cut_gossip::prelude::*;

/// Runs vanilla gossip on `scenario` from the adversarial initial condition
/// under the given variance mode and returns the outcome.
fn run_mode(
    scenario: &Scenario,
    instance_seed: u64,
    sim_seed: u64,
    mode: VarianceMode,
) -> SimulationOutcome {
    let instance = scenario.instantiate(instance_seed).expect("valid scenario");
    let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
    let config = SimulationConfig::new(sim_seed)
        .with_clock_model(ClockModel::GlobalUniform)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(20_000_000))
        .with_variance_mode(mode)
        // A short refresh period so every family exercises many scheduled
        // exact recomputes during its run (the fastest family, the chordal
        // ring, stops after ~2k ticks).
        .with_moment_refresh_every_ticks(512);
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("valid simulation");
    simulator.run().expect("run completes")
}

/// Small instances of every scale generator family: large enough that the
/// runs take 10⁵–10⁶ ticks (dozens of refresh windows), small enough that
/// the O(n)-per-check reference mode stays affordable in a debug test run.
fn oracle_families() -> Vec<(&'static str, Scenario)> {
    vec![
        ("chordal-ring", Scenario::ChordalRing { n: 400 }),
        (
            "expander-dumbbell",
            Scenario::ExpanderDumbbell { half: 150 },
        ),
        (
            "expander-barbell",
            Scenario::ExpanderBarbell {
                left: 100,
                right: 200,
            },
        ),
        (
            "ring-of-cliques",
            Scenario::RingOfCliques {
                cliques: 24,
                clique_size: 10,
            },
        ),
    ]
}

#[test]
fn incremental_and_full_stopping_fire_at_the_same_tick_on_every_family() {
    for (index, (name, scenario)) in oracle_families().into_iter().enumerate() {
        let instance_seed = seeds::MOMENT_DIFFERENTIAL + index as u64;
        let sim_seed = seeds::MOMENT_DIFFERENTIAL + 100 + index as u64;
        let incremental = run_mode(
            &scenario,
            instance_seed,
            sim_seed,
            VarianceMode::Incremental,
        );
        let exact = run_mode(
            &scenario,
            instance_seed,
            sim_seed,
            VarianceMode::ExactEveryCheck,
        );

        assert!(incremental.converged(), "{name}: incremental did not stop");
        assert!(exact.converged(), "{name}: exact did not stop");
        assert_eq!(
            incremental.total_ticks, exact.total_ticks,
            "{name}: stop ticks diverged"
        );
        assert_eq!(
            incremental.elapsed_time, exact.elapsed_time,
            "{name}: stop times diverged"
        );
        assert_eq!(
            incremental.final_values, exact.final_values,
            "{name}: final states diverged"
        );
        // The runs were long enough to exercise the refresh schedule, and
        // the reference mode never refreshed.
        assert!(
            incremental.moment_refreshes >= 2,
            "{name}: refresh schedule not exercised ({} ticks)",
            incremental.total_ticks
        );
        assert_eq!(exact.moment_refreshes, 0, "{name}");
    }
}

#[test]
fn trackers_agree_with_full_recompute_after_periodic_refresh() {
    for (index, (name, scenario)) in oracle_families().into_iter().enumerate() {
        let instance_seed = seeds::MOMENT_DIFFERENTIAL + index as u64;
        let sim_seed = seeds::MOMENT_DIFFERENTIAL + 200 + index as u64;
        let outcome = run_mode(
            &scenario,
            instance_seed,
            sim_seed,
            VarianceMode::Incremental,
        );
        // At the stop the state is at most one refresh window past the last
        // exact recompute; the accumulated drift must sit inside the oracle
        // margin.
        let values = &outcome.final_values;
        assert!(
            (values.incremental_variance() - values.variance()).abs() < 1e-9,
            "{name}: variance drifted {} vs {}",
            values.incremental_variance(),
            values.variance()
        );
        assert!(
            (values.incremental_mean() - values.mean()).abs() < 1e-9,
            "{name}: mean drifted"
        );
    }
}

#[test]
fn driven_long_run_keeps_moments_within_oracle_margin() {
    // One million O(1) updates on a 500-node state, no engine involved: a
    // pinned pseudo-random mix of the three pairwise update kinds, with the
    // engine's default refresh cadence applied by hand.
    let n = 500usize;
    let mut state = {
        let xs: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { -1.0 }).collect();
        NodeValues::from_values(xs).expect("finite")
    };
    // splitmix64 over the pinned seed drives index/kind selection.
    let mut z = seeds::MOMENT_DRIFT;
    let mut next = || {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    };
    let total = 1_000_000u64;
    for step in 1..=total {
        let r = next();
        let u = (r as usize) % n;
        let mut v = ((r >> 20) as usize) % n;
        if v == u {
            v = (v + 1) % n;
        }
        let (u, v) = (NodeId(u), NodeId(v));
        match (r >> 40) % 3 {
            0 => state.average_pair(u, v),
            1 => state.convex_pair_update(u, v, 0.25 + ((r >> 50) % 100) as f64 / 200.0),
            _ => state.transfer_pair_update(u, v, 0.75),
        }
        if step % DEFAULT_MOMENT_REFRESH_TICKS == 0 {
            // Immediately before the scheduled refresh the drift must
            // already be inside the margin — the refresh is a bound, not a
            // rescue.
            assert!(
                (state.incremental_variance() - state.variance()).abs() < 1e-9,
                "drift exceeded margin at step {step}"
            );
            state.refresh_moments();
        }
    }
    assert!((state.incremental_variance() - state.variance()).abs() < 1e-9);
    assert!((state.incremental_mean() - state.mean()).abs() < 1e-9);
    assert_eq!(
        state.moments().refreshes(),
        total / DEFAULT_MOMENT_REFRESH_TICKS
    );
}
