//! Integration test for the shape of Theorem 1: on the dumbbell graph every
//! convex (class `C`) algorithm's measured averaging time scales with the
//! `min(n₁,n₂)/|E₁₂|` lower bound, and in particular grows roughly linearly
//! with `n`.
//!
//! # Seed policy
//!
//! Every estimator run is pinned to a seed from `common::seeds`
//! (THEOREM1_*).  The whole stack is deterministic per seed (see
//! `vendor/README.md`), so the margins below — 0.3× against the bound,
//! ≥2× growth under 4× size, ≥1.5× narrow-vs-wide cut — were validated
//! against the pinned sample paths and hold identically on every rerun.

mod common;

use common::{bridged_fixture, dumbbell_fixture, measure_averaging_time, seeds};
use sparse_cut_gossip::prelude::*;

fn measure<H, F>(half: usize, factory: F, seed: u64) -> (f64, f64)
where
    H: EdgeTickHandler,
    F: Fn() -> H + Sync,
{
    let (graph, partition) = dumbbell_fixture(half);
    let time = measure_averaging_time(&graph, &partition, factory, seed, 200.0);
    (time, theorem1_lower_bound(&partition))
}

#[test]
fn vanilla_gossip_is_lower_bounded_and_grows_with_n() {
    let (t_small, bound_small) = measure(8, VanillaGossip::new, seeds::THEOREM1_VANILLA_SMALL);
    let (t_large, bound_large) = measure(32, VanillaGossip::new, seeds::THEOREM1_VANILLA_LARGE);
    // The measured time respects (a constant times) the Theorem 1 bound.
    assert!(
        t_small > 0.3 * bound_small,
        "T_av {t_small} too small against bound {bound_small}"
    );
    assert!(
        t_large > 0.3 * bound_large,
        "T_av {t_large} too small against bound {bound_large}"
    );
    // Quadrupling n roughly quadruples the averaging time (allow a wide
    // stochastic margin: at least 2x growth).
    assert!(
        t_large > 2.0 * t_small,
        "expected roughly linear growth, got {t_small} -> {t_large}"
    );
}

#[test]
fn other_convex_members_are_also_cut_limited() {
    let (weighted, bound) = measure(
        16,
        || WeightedConvexGossip::new(0.7).unwrap(),
        seeds::THEOREM1_WEIGHTED,
    );
    assert!(
        weighted > 0.3 * bound,
        "weighted convex gossip {weighted} beat the bound {bound}"
    );
    let (random_neighbor, bound) = measure(
        16,
        || RandomNeighborGossip::new(77),
        seeds::THEOREM1_RANDOM_NEIGHBOR,
    );
    assert!(
        random_neighbor > 0.3 * bound,
        "random-neighbour gossip {random_neighbor} beat the bound {bound}"
    );
}

#[test]
fn lower_bound_weakens_as_the_cut_widens() {
    // With more bridge edges the Theorem 1 bound shrinks and vanilla gossip
    // indeed gets faster.
    let time_with_bridges = |bridges: usize, seed: u64| {
        let (graph, partition) = bridged_fixture(12, 12, bridges, 0.6, 3);
        let estimator = AveragingTimeEstimator::new(
            EstimatorConfig::new(seed)
                .with_runs(4)
                .with_max_time(5_000.0),
        );
        estimator
            .estimate(&graph, &partition, VanillaGossip::new)
            .expect("estimation succeeds")
            .averaging_time
    };
    let narrow = time_with_bridges(1, seeds::THEOREM1_NARROW_CUT);
    let wide = time_with_bridges(8, seeds::THEOREM1_WIDE_CUT);
    assert!(
        narrow > 1.5 * wide,
        "a single-bridge cut ({narrow}) should be much slower than an 8-bridge cut ({wide})"
    );
}
