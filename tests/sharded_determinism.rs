//! Sharded-engine bit-identity oracles.
//!
//! The sharded engine (`SimulationConfig::shards`) promises that the shard
//! count only changes which worker applies an event lane — never the event
//! schedule, the merge order, or a single bit of the result.  This suite
//! pins that promise at shards 1 vs 2 vs 4 on every scale family, under
//! both clock samplers, fault-free and under a mixed fault plan: the stop
//! tick, the stop time, the final state vector, the fault counters, and the
//! moment-refresh count must agree bit for bit.
//!
//! Seeds 471–473 (see `tests/common`).

mod common;

use common::seeds;
use sparse_cut_gossip::prelude::*;

/// Runs one sharded simulation and returns everything the oracle compares.
fn run_case(
    scenario: &Scenario,
    case: u64,
    clock: ClockModel,
    fault: Option<FaultPlan>,
    shards: usize,
) -> (SimulationOutcome, Vec<u64>) {
    let instance = scenario
        .instantiate(seeds::SHARDED_DETERMINISM + case)
        .expect("scenario instantiates");
    let initial = match scenario {
        Scenario::ChordalRing { .. } => InitialCondition::AdversarialCut
            .generate(
                instance.graph.node_count(),
                Some(&instance.partition),
                seeds::SHARDED_INITIAL + case,
            )
            .expect("initial generates"),
        _ => InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
            .generate(
                instance.graph.node_count(),
                Some(&instance.partition),
                seeds::SHARDED_INITIAL + case,
            )
            .expect("initial generates"),
    };
    let mut config = SimulationConfig::new(seeds::SHARDED_DETERMINISM + case)
        .with_clock_model(clock)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(50_000_000))
        .with_shards(shards);
    if let Some(plan) = fault {
        config = config.with_fault_plan(plan);
    }
    let mut simulator = AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), config)
        .expect("simulator builds");
    let outcome = simulator.run().expect("run succeeds");
    let bits = outcome
        .final_values
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (outcome, bits)
}

/// Asserts that shards 1, 2 and 4 agree on every deterministic field.
fn assert_shard_invariant(scenario: &Scenario, case: u64, clock: ClockModel, faulted: bool) {
    let plan = |seed_offset: u64| {
        faulted.then(|| {
            FaultPlan::new(seeds::SHARDED_FAULT + case + seed_offset)
                .with_drop_probability(0.2)
                .with_edge_outage(EdgeId(0), 100, 5_000)
                .with_node_pause(NodeId(1), 200, 3_000)
        })
    };
    let label = format!("{scenario:?} under {clock:?} (faulted: {faulted})");
    let (one, one_bits) = run_case(scenario, case, clock, plan(0), 1);
    assert!(
        one.total_ticks > 0,
        "{label}: the oracle run must process events"
    );
    for shards in [2usize, 4] {
        let (many, many_bits) = run_case(scenario, case, clock, plan(0), shards);
        assert_eq!(
            one.total_ticks, many.total_ticks,
            "{label}: stop tick diverged at {shards} shards"
        );
        assert_eq!(
            one.elapsed_time.to_bits(),
            many.elapsed_time.to_bits(),
            "{label}: stop time diverged at {shards} shards"
        );
        assert_eq!(
            one.stop_reason, many.stop_reason,
            "{label}: stop reason diverged at {shards} shards"
        );
        assert_eq!(
            one.moment_refreshes, many.moment_refreshes,
            "{label}: refresh count diverged at {shards} shards"
        );
        assert_eq!(
            one.fault_stats, many.fault_stats,
            "{label}: fault counters diverged at {shards} shards"
        );
        assert_eq!(
            one_bits, many_bits,
            "{label}: final state diverged at {shards} shards"
        );
    }
}

#[test]
fn all_families_are_bit_identical_across_shard_counts_per_edge_queue() {
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(128)
        .iter()
        .enumerate()
    {
        assert_shard_invariant(scenario, index as u64, ClockModel::PerEdgeQueue, false);
    }
}

#[test]
fn all_families_are_bit_identical_across_shard_counts_global_uniform() {
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(128)
        .iter()
        .enumerate()
    {
        assert_shard_invariant(scenario, index as u64, ClockModel::GlobalUniform, false);
    }
}

#[test]
fn faulted_families_are_bit_identical_across_shard_counts() {
    // The fault stream is classified serially in tick order regardless of
    // the shard count, so churn and loss must not break the invariant —
    // and the counters prove the faults actually engaged.
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(128)
        .iter()
        .enumerate()
    {
        for clock in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            assert_shard_invariant(scenario, 100 + index as u64, clock, true);
        }
    }
}

#[test]
fn faulted_oracle_runs_actually_suppress_contacts() {
    let suite = gossip_workloads::scenarios::sim_scale_suite(128);
    let plan = FaultPlan::new(seeds::SHARDED_FAULT)
        .with_drop_probability(0.2)
        .with_edge_outage(EdgeId(0), 100, 5_000)
        .with_node_pause(NodeId(1), 200, 3_000);
    let (outcome, _) = run_case(&suite[1], 100 + 1, ClockModel::GlobalUniform, Some(plan), 4);
    assert!(
        outcome.fault_stats.total_suppressed() > 0,
        "the faulted oracle must exercise the fault path"
    );
}
