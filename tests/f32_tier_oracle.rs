//! f32 value-tier acceptance and oracle suite.
//!
//! The f32 tier (`gossip_sim::flat::run_f32`) stores the state in single
//! precision and checks every run against an *a-priori* error bound (see
//! the `gossip_sim::flat` module docs for the derivation): the mean may
//! drift by at most `safety · ε₃₂ · M · (T/n + 1)` and the tracked final
//! variance must agree with an exact recompute to within the oracle's
//! margin.  This suite pins three claims at the workspace level:
//!
//! 1. the tier *converges* on every scale family, under both clock
//!    samplers, within the default oracle's bounds;
//! 2. a violated oracle is an `Err` (`SimError::PrecisionOracle`), not a
//!    silently wrong row;
//! 3. such an `Err` never reaches a run-store journal — the bench trial
//!    layer only commits rows whose oracles passed.
//!
//! Seed 506 (see `tests/common`).

mod common;

use common::seeds;
use gossip_bench::runner::HarnessConfig;
use gossip_bench::trial::{engine_fingerprint, run_trials};
use gossip_store::{trial_key, RunStore, StoreSink};
use sparse_cut_gossip::prelude::*;
use sparse_cut_gossip::sim::SimError;

/// The vanilla pairwise kernel the tier is benchmarked with.
fn kernel() -> gossip_sim::handler::PairwiseKernel {
    VanillaGossip::new()
        .pairwise_kernel()
        .expect("vanilla gossip exposes its pairwise kernel")
}

/// Builds one family instance and its uniform initial vector.
fn family_case(scenario: &Scenario, case: u64) -> (Graph, NodeValues) {
    let instance = scenario
        .instantiate(seeds::F32_TIER + case)
        .expect("scenario instantiates");
    let initial = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
        .generate(
            instance.graph.node_count(),
            Some(&instance.partition),
            seeds::F32_TIER + 10 + case,
        )
        .expect("initial generates");
    (instance.graph, initial)
}

fn sim_config(case: u64, clock: ClockModel) -> SimulationConfig {
    SimulationConfig::new(seeds::F32_TIER + 20 + case)
        .with_clock_model(clock)
        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(50_000_000))
}

#[test]
fn f32_tier_converges_within_its_oracle_on_every_family() {
    for (index, scenario) in gossip_workloads::scenarios::sim_scale_suite(256)
        .iter()
        .enumerate()
    {
        for clock in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            let case = index as u64;
            let (graph, initial) = family_case(scenario, case);
            let outcome = run_f32(
                &graph,
                &initial,
                kernel(),
                &sim_config(case, clock),
                &F32Oracle::default(),
            )
            .expect("the f32 tier passes its default oracle");
            let label = format!("{scenario:?} under {clock:?}");
            assert!(outcome.converged(), "{label}: did not converge");
            assert!(
                outcome.mean_drift <= outcome.mean_drift_bound,
                "{label}: drift {} exceeds its bound {}",
                outcome.mean_drift,
                outcome.mean_drift_bound
            );
            assert!(
                outcome.variance_error <= outcome.variance_error_bound,
                "{label}: variance error {} exceeds its bound {}",
                outcome.variance_error,
                outcome.variance_error_bound
            );
            assert!(outcome.final_values.iter().all(|v| v.is_finite()));
            assert!(outcome.total_ticks > 0);
        }
    }
}

#[test]
fn f32_oracle_violation_is_a_precision_error() {
    // A zero-safety oracle bounds the drift by zero; the uniform initial
    // vector is (almost surely) not exactly f32-representable, so rounding
    // moves the mean on the very first averaging contact and the run must
    // be rejected — as `PrecisionOracle`, not any other error.
    let suite = gossip_workloads::scenarios::sim_scale_suite(256);
    let (graph, initial) = family_case(&suite[0], 0);
    let oracle = F32Oracle {
        mean_drift_safety: 0.0,
        ..F32Oracle::default()
    };
    let result = run_f32(
        &graph,
        &initial,
        kernel(),
        &sim_config(0, ClockModel::GlobalUniform),
        &oracle,
    );
    match result {
        Err(SimError::PrecisionOracle { reason }) => {
            assert!(
                reason.contains("drift"),
                "the violation must name the violated bound, got: {reason}"
            );
        }
        other => panic!("expected a PrecisionOracle error, got {other:?}"),
    }
}

#[test]
fn f32_oracle_violations_never_reach_the_journal() {
    // Drive the real bench trial layer: two f32 trials against a journaled
    // run store, the second under the impossible zero-safety oracle.  The
    // sweep fails as a whole, and the violating trial's key must be absent
    // from the journal — `run_trials` only commits rows whose compute
    // closure returned `Ok`, i.e. whose oracles passed.
    let mut dir = std::env::temp_dir();
    dir.push(format!("gossip-f32-oracle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut config = HarnessConfig::quick();
    config.seed = seeds::F32_TIER;
    config.jobs = Some(1);
    let suite = gossip_workloads::scenarios::sim_scale_suite(256);
    let fingerprints = vec!["f32(ok)".to_string(), "f32(violating)".to_string()];

    let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
    let result = run_trials(
        &config,
        &Executor::new(1),
        &sink,
        "F32_ORACLE_PROBE",
        &fingerprints,
        |index| -> Result<Vec<String>, Box<dyn std::error::Error + Send + Sync>> {
            let (graph, initial) = family_case(&suite[index], index as u64);
            let oracle = if index == 1 {
                F32Oracle {
                    mean_drift_safety: 0.0,
                    ..F32Oracle::default()
                }
            } else {
                F32Oracle::default()
            };
            let outcome = run_f32(
                &graph,
                &initial,
                kernel(),
                &sim_config(index as u64, ClockModel::GlobalUniform),
                &oracle,
            )?;
            Ok(vec![format!("ticks={}", outcome.total_ticks)])
        },
    );
    assert!(result.is_err(), "the violating trial must fail the sweep");

    let store = sink.into_store();
    let engine = engine_fingerprint(&config);
    let bad_key = trial_key("F32_ORACLE_PROBE", "f32(violating)", config.seed, &engine);
    assert!(
        store.replay(bad_key).is_none(),
        "a violated oracle must never commit to the journal"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
