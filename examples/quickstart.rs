//! Quickstart: build the paper's dumbbell graph, run vanilla gossip and the
//! non-convex Algorithm A from the adversarial initial condition, and compare
//! their averaging times against the theoretical bounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparse_cut_gossip::prelude::*;

fn run_once<H: EdgeTickHandler>(
    graph: &Graph,
    initial: NodeValues,
    handler: H,
    seed: u64,
) -> Result<SimulationOutcome, Box<dyn std::error::Error>> {
    let config = SimulationConfig::new(seed)
        .with_stopping_rule(StoppingRule::definition1().or_max_time(50_000.0));
    let mut simulator = AsyncSimulator::new(graph, initial, handler, config)?;
    Ok(simulator.run()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two cliques K_32 joined by a single bridge edge: the canonical
    // sparse-cut instance from the paper's introduction.
    let (graph, partition) = dumbbell(32)?;
    println!(
        "dumbbell: n = {}, |E| = {}, cut edges = {}",
        graph.node_count(),
        graph.edge_count(),
        partition.cut_edge_count()
    );

    let bounds = BoundsSummary::compute(&graph, &partition, 4.0)?;
    println!(
        "Theorem 1 (convex lower bound)   : {:>8.2}",
        bounds.convex_lower_bound
    );
    println!(
        "Theorem 2 (Algorithm A epoch)    : {:>8.2}",
        bounds.theorem2_upper_bound
    );

    // The adversarial initial condition from Section 2: +1 on V1, −1 on V2.
    let initial = AveragingTimeEstimator::adversarial_initial(&partition);

    let vanilla = run_once(&graph, initial.clone(), VanillaGossip::new(), 1)?;
    println!(
        "vanilla gossip      : T = {:>8.2}  (ticks = {}, var ratio = {:.2e})",
        vanilla.elapsed_time,
        vanilla.total_ticks,
        vanilla.variance_ratio()
    );

    let algorithm =
        SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())?;
    println!(
        "Algorithm A         : designated edge {}, epoch = {} ticks, gamma = {}",
        algorithm.designated_edge(),
        algorithm.epoch_ticks(),
        algorithm.gamma()
    );
    let algo = run_once(&graph, initial, algorithm, 1)?;
    println!(
        "Algorithm A         : T = {:>8.2}  (ticks = {}, var ratio = {:.2e})",
        algo.elapsed_time,
        algo.total_ticks,
        algo.variance_ratio()
    );

    println!(
        "speed-up of Algorithm A over vanilla gossip: {:.1}x",
        vanilla.elapsed_time / algo.elapsed_time.max(1e-9)
    );
    Ok(())
}
