//! A domain-flavoured scenario: two rooms full of densely meshed temperature
//! sensors, connected only through a single doorway radio link, must agree on
//! the building-wide average temperature.
//!
//! Each room's mesh is internally well connected (every sensor hears most of
//! its roommates), but the rooms disagree systematically (one is warmer), so
//! the disagreement is aligned with the sparse cut: exactly the regime where
//! the paper shows convex gossip stalls and the non-convex Algorithm A helps.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use sparse_cut_gossip::prelude::*;

fn room_temperatures(partition: &Partition, warm: f64, cool: f64, wiggle: f64) -> NodeValues {
    let mut values = vec![0.0; partition.node_count()];
    for (i, &node) in partition.block_one().iter().enumerate() {
        values[node.index()] = warm + wiggle * ((i % 5) as f64 - 2.0) / 10.0;
    }
    for (i, &node) in partition.block_two().iter().enumerate() {
        values[node.index()] = cool + wiggle * ((i % 7) as f64 - 3.0) / 10.0;
    }
    NodeValues::from_values(values).expect("finite temperatures")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two rooms of 60 sensors each, densely meshed inside (each pair of
    // roommates is linked with probability 0.8), joined by one doorway link.
    let scenario = Scenario::BridgedClusters {
        n1: 60,
        n2: 60,
        bridges: 1,
        p: 0.8,
    };
    let instance = scenario.instantiate(2024)?;
    let graph = &instance.graph;
    let partition = &instance.partition;
    println!(
        "sensor field: {} ({} sensors, {} links, doorway width {})",
        instance.name,
        graph.node_count(),
        graph.edge_count(),
        partition.cut_edge_count()
    );

    let initial = room_temperatures(partition, 24.0, 18.0, 1.0);
    let true_average = initial.mean();
    println!("true average temperature: {true_average:.3} °C");
    println!(
        "Theorem 1: any convex protocol needs ≳ {:.0} time units here",
        theorem1_lower_bound(partition)
    );
    println!();
    println!("| protocol | time to Definition-1 accuracy | max sensor error (°C) |");
    println!("| --- | --- | --- |");

    let mut vanilla_time = None;
    let mut algorithm_a_time = None;
    for (name, handler) in [
        (
            "vanilla gossip",
            Box::new(VanillaGossip::new()) as Box<dyn EdgeTickHandler>,
        ),
        (
            "momentum gossip (0.7)",
            Box::new(TwoTimeScaleGossip::for_graph(graph, 0.7)?),
        ),
        (
            "Algorithm A",
            Box::new(SparseCutAlgorithm::from_partition(
                graph,
                partition,
                SparseCutConfig::new().with_epoch_constant(2.0),
            )?),
        ),
    ] {
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(100_000.0));
        let mut simulator = AsyncSimulator::new(graph, initial.clone(), handler, config)?;
        let outcome = simulator.run()?;
        let max_error = outcome
            .final_values
            .as_slice()
            .iter()
            .fold(0.0_f64, |acc, &x| acc.max((x - true_average).abs()));
        println!(
            "| {} | {:.1} | {:.3} |",
            name, outcome.elapsed_time, max_error
        );
        match name {
            "vanilla gossip" => vanilla_time = Some(outcome.elapsed_time),
            "Algorithm A" => algorithm_a_time = Some(outcome.elapsed_time),
            _ => {}
        }
    }

    println!();
    if let (Some(vanilla), Some(algorithm_a)) = (vanilla_time, algorithm_a_time) {
        println!(
            "Algorithm A crosses the doorway with one large non-convex transfer per epoch: \
             it reaches Definition-1 accuracy {:.1}x faster than vanilla gossip on this \
             instance (and the gap widens as the rooms grow).",
            vanilla / algorithm_a.max(1e-9)
        );
    }
    Ok(())
}
