//! The headline experiment of the paper, as a runnable example: sweep the
//! dumbbell size and show that convex gossip slows down linearly in `n` while
//! the non-convex Algorithm A stays polylogarithmic, so the speed-up grows
//! with `n`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dumbbell_speedup
//! ```

use sparse_cut_gossip::analysis::regression;
use sparse_cut_gossip::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| n | Thm1 bound | vanilla T_av | Algorithm A T_av | speed-up |");
    println!("| --- | --- | --- | --- | --- |");

    let mut sizes = Vec::new();
    let mut vanilla_times = Vec::new();
    let mut algo_times = Vec::new();

    for half in [8usize, 16, 32, 64] {
        let (graph, partition) = dumbbell(half)?;
        let estimator = AveragingTimeEstimator::new(
            EstimatorConfig::new(7)
                .with_runs(5)
                .with_max_time(60.0 * theorem1_lower_bound(&partition) + 500.0),
        );
        let vanilla = estimator.estimate(&graph, &partition, VanillaGossip::new)?;
        let algo = estimator.estimate(&graph, &partition, || {
            SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())
                .expect("valid partition")
        })?;

        let n = graph.node_count();
        println!(
            "| {} | {:.1} | {:.2} | {:.2} | {:.2}x |",
            n,
            theorem1_lower_bound(&partition),
            vanilla.averaging_time,
            algo.averaging_time,
            vanilla.averaging_time / algo.averaging_time.max(1e-9)
        );

        sizes.push(n as f64);
        vanilla_times.push(vanilla.averaging_time.max(1e-9));
        algo_times.push(algo.averaging_time.max(1e-9));
    }

    let vanilla_fit = regression::log_log_fit(&sizes, &vanilla_times)?;
    let algo_fit = regression::log_log_fit(&sizes, &algo_times)?;
    println!();
    println!(
        "empirical scaling exponents (log-log slope): vanilla ≈ n^{:.2}, Algorithm A ≈ n^{:.2}",
        vanilla_fit.slope, algo_fit.slope
    );
    println!(
        "the paper predicts ≈ n^1 for every convex algorithm (Theorem 1) and a \
         polylogarithmic (slope ≈ 0) growth for Algorithm A (Theorem 2)."
    );
    Ok(())
}
