//! A walk through the *proof* of Theorem 1 on a live simulation: with the
//! adversarial initial condition, the block-one mean `y(t)` can only change
//! when a cut edge ticks, each such tick moves it by at most `2/n₁`, and the
//! number of cut ticks by time `t` is Poisson with mean `t·|E₁₂|` — so any
//! convex algorithm needs `Ω(n₁/|E₁₂|)` time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example convex_lower_bound
//! ```

use sparse_cut_gossip::analysis::concentration;
use sparse_cut_gossip::prelude::*;

struct DriftWatcher {
    inner: VanillaGossip,
    partition: Partition,
    cut_ticks: u64,
    max_step: f64,
}

impl EdgeTickHandler for DriftWatcher {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let crosses = self.partition.is_cut_edge(&ctx.edge);
        let before = values.block_mean(
            &self.partition,
            sparse_cut_gossip::graph::partition::Block::One,
        );
        self.inner.on_edge_tick(values, ctx);
        if crosses {
            let after = values.block_mean(
                &self.partition,
                sparse_cut_gossip::graph::partition::Block::One,
            );
            self.cut_ticks += 1;
            self.max_step = self.max_step.max((after - before).abs());
        }
    }

    fn name(&self) -> &str {
        "drift-watcher"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph, partition) = dumbbell(64)?;
    let n1 = partition.smaller_block_size() as f64;
    let horizon = 30.0;

    let initial = AveragingTimeEstimator::adversarial_initial(&partition);
    let watcher = DriftWatcher {
        inner: VanillaGossip::new(),
        partition: partition.clone(),
        cut_ticks: 0,
        max_step: 0.0,
    };
    let config = SimulationConfig::new(3).with_stopping_rule(StoppingRule::max_time(horizon));
    let mut simulator = AsyncSimulator::new(&graph, initial, watcher, config)?;
    let outcome = simulator.run()?;
    let watcher = simulator.handler();

    println!(
        "dumbbell n = {}, n1 = {}, |E12| = 1",
        graph.node_count(),
        n1
    );
    println!("simulated horizon: t = {horizon}");
    println!();
    println!(
        "cut-edge ticks observed      : {} (Poisson mean t·|E12| = {:.0})",
        watcher.cut_ticks, horizon
    );
    println!(
        "largest per-tick |Δy|        : {:.5}   (Section 2 bound 2/n1 = {:.5})",
        watcher.max_step,
        2.0 / n1
    );
    let y = outcome
        .final_values
        .block_mean(&partition, sparse_cut_gossip::graph::partition::Block::One);
    println!(
        "block-one mean y(t) at horizon: {y:.4}   (started at 1.0; needs ~n1/2 = {:.0} cut \
         ticks to decay)",
        n1 / 2.0
    );
    println!(
        "variance ratio at horizon     : {:.3}   (Definition 1 threshold is 1/e² ≈ {:.3})",
        outcome.variance_ratio(),
        (-2.0f64).exp()
    );
    println!();
    let needed_ticks = (1.0 - (-1.0f64).exp()) * n1 / 4.0;
    let early = (needed_ticks / 2.0).max(1.0);
    println!(
        "the proof needs ≥ (1−1/e)·n1/4 ≈ {needed_ticks:.0} cut ticks before the variance can \
         drop below 1/e²; the probability of seeing that many by t = {early:.0} is at most \
         {:.2e} (Poisson Chernoff bound), so T_av = Ω(n1/|E12|) = Ω({:.0}).",
        concentration::poisson_upper_tail(early, needed_ticks)?,
        n1
    );
    println!(
        "Hence vanilla gossip (and every convex algorithm) is still far from averaged at \
         t = {horizon}, exactly as Theorem 1 predicts."
    );
    Ok(())
}
