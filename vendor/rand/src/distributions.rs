//! Distribution types (`rand::distributions` subset).

use crate::{RngCore, StandardSample};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: `[0, 1)` for floats, uniform for integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: StandardSample> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::standard_sample(rng)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: crate::SampleUniform + Copy> Uniform<T> {
    /// Creates the distribution; `lo < hi` must hold.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }
}

impl<T: crate::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.lo, self.hi)
    }
}
