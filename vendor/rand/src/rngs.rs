//! Small built-in generators (`rand::rngs` subset).

use crate::{RngCore, SeedableRng};

/// A tiny, fast, non-cryptographic generator (xoshiro256**), useful for
/// tests and property-test harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn small_rng_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let mut c = SmallRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn small_rng_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
