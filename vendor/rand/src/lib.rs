//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment with no access to crates.io, so
//! the subset of the `rand 0.8` API the workspace actually uses is
//! implemented here: [`RngCore`], [`SeedableRng`] (including the splitmix64
//! `seed_from_u64` expansion), the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`, `fill`), and [`SliceRandom`] (`shuffle`,
//! `choose`).  Streams are deterministic functions of the seed, which is all
//! the simulator requires; they are **not** bit-compatible with upstream
//! `rand`, so seeds recorded here differ from seeds recorded against the
//! real crate.
//!
//! If the build environment ever gains registry access, delete `vendor/` and
//! point the workspace manifests at crates.io versions; no call site needs
//! to change.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use seq::SliceRandom;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with splitmix64 (the same expansion
    /// `rand_core` uses) and constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from their "standard" distribution
/// (`[0, 1)` for floats, all values for integers, fair coin for `bool`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64, u128 => next_u64,
    i128 => next_u64);

/// Types with a uniform sampler over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply range reduction (Lemire); bias is < 2^-64.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        let u = f32::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}
impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::standard_sample(self) < p
    }

    /// Fills a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The distribution machinery (only what the workspace touches).
pub mod distribution {
    pub use crate::distributions::*;
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, StandardSample};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 step so the bits look uniform enough for tests.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(0u64..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
