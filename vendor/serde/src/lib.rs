//! Offline stand-in for `serde`.
//!
//! Provides the [`Serialize`]/[`Deserialize`] trait names (so the seed
//! code's `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without registry access)
//! plus a minimal JSON-oriented data model: [`Serialize`] renders straight
//! into a [`json::Value`].  Impls are provided for the std types the
//! workspace serializes; derived impls are a no-op (see the vendored
//! `serde_derive`), and the one type that is actually written to disk
//! implements the trait by hand.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! The minimal JSON document model the vendored `serde_json` renders.

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any finite number (non-finite floats render as `null`).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }
}

/// Types that can be rendered to JSON.
///
/// This is the vendored stand-in for `serde::Serialize`.  The derive macro
/// is a no-op, so only types with hand-written impls (plus the std impls
/// below) satisfy this bound — which is exactly the set of types the
/// workspace passes to `serde_json`.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> json::Value;
}

/// Marker for deserializable types; the vendored stand-in for
/// `serde::Deserialize`.  No deserializer exists in this workspace, so the
/// trait is empty.
pub trait Deserialize<'de>: Sized {}

use json::Value;

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
