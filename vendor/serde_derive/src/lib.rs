//! Offline stand-in for `serde_derive`.
//!
//! The real derive macros generate `Serialize`/`Deserialize` impls; this
//! stub accepts the same `#[derive(Serialize, Deserialize)]` syntax and
//! emits **nothing**, so annotated types compile but do not implement the
//! traits.  The one type this workspace actually serializes
//! (`gossip_bench::Table`) carries a hand-written impl instead.  Swap this
//! crate for the real one when registry access exists; call sites are
//! unchanged.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted, generates no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted, generates no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
