//! Offline stand-in for `serde_json`: renders the vendored `serde` data
//! model to JSON text and parses JSON text back into it.  Only the entry
//! points this workspace calls are provided (`to_string`,
//! `to_string_pretty`, `from_str`).

#![forbid(unsafe_code)]

use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// Serialization or parse error.  Serialization through the vendored data
/// model is infallible, so at runtime only [`from_str`] produces this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // Like serde_json with default settings: non-finite -> null.
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// Accepts exactly the grammar [`to_string`] emits (objects, arrays,
/// strings with the standard escapes including `\uXXXX` and surrogate
/// pairs, finite numbers, booleans, `null`) plus insignificant whitespace.
/// Numbers are parsed as `f64` with Rust's correctly-rounded parser, so a
/// finite `f64` rendered by [`to_string`] parses back **bit-identically**
/// (Rust's `{}` formatting is shortest-round-trip) — the property the
/// run-store journal relies on to replay trial rows byte-for-byte.
///
/// # Errors
///
/// Returns a parse error naming the byte offset for malformed input or
/// trailing non-whitespace.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::parse(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::parse(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::parse(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::parse(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(format!("invalid number at byte {start}")))?;
        let number: f64 = text
            .parse()
            .map_err(|_| Error::parse(format!("invalid number '{text}' at byte {start}")))?;
        if !number.is_finite() {
            return Err(Error::parse(format!(
                "non-finite number '{text}' at byte {start}"
            )));
        }
        Ok(Value::Number(number))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: must be followed by \uXXXX
                                // low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::parse("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::parse("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::parse("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error::parse("invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the digits; undo the
                            // shared increment below.
                            self.pos -= 1;
                        }
                        _ => {
                            return Err(Error::parse(format!(
                                "invalid escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy the raw bytes of the char).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| Error::parse("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json::Value;

    #[test]
    fn renders_nested_structures() {
        let value = Value::Object(vec![
            ("title".to_string(), Value::String("E1".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
        ]);
        let mut compact = String::new();
        render(&value, &mut compact, None, 0);
        assert_eq!(compact, r#"{"title":"E1","rows":[1,2.5]}"#);
        let pretty = to_string_pretty(&vec!["a".to_string()]).unwrap();
        assert_eq!(pretty, "[\n  \"a\"\n]");
    }

    #[test]
    fn escapes_control_characters() {
        let rendered = to_string(&"line\n\"quote\"\\\u{1}".to_string()).unwrap();
        assert_eq!(rendered, "\"line\\n\\\"quote\\\"\\\\\\u0001\"");
    }

    #[test]
    fn parses_what_it_renders() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("tricky \"x\"\n\t".to_string()),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "numbers".to_string(),
                Value::Array(vec![
                    Value::Number(0.0),
                    Value::Number(-2.5),
                    Value::Number(1e300),
                    Value::Number(std::f64::consts::PI),
                    Value::Number(1e20),
                ]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
            ("inner".to_string(), Value::Object(vec![])),
        ]);
        for render in [
            to_string(&DirectValue(&value)),
            to_string_pretty(&DirectValue(&value)),
        ] {
            let text = render.unwrap();
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed, value);
        }
    }

    /// Pass-through wrapper so tests can serialize a raw `Value`.
    struct DirectValue<'a>(&'a Value);
    impl Serialize for DirectValue<'_> {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    // A literal with more digits than f64 resolves is the point here: the
    // rounded value it denotes must still round-trip exactly.
    #[allow(clippy::excessive_precision)]
    fn finite_floats_round_trip_bit_exactly() {
        for x in [
            0.1352832,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            5.0e-324,
            123456789.123456789,
            2.0f64.powi(60),
        ] {
            let mut text = String::new();
            render(&Value::Number(x), &mut text, None, 0);
            let parsed = match from_str(&text).unwrap() {
                Value::Number(y) => y,
                other => panic!("expected number, got {other:?}"),
            };
            // -0.0 deliberately renders as "0" (integer form), so compare
            // through a second render instead of raw bits for that case:
            // what matters downstream is render-stability, and for every
            // non-integer value the round trip is exactly bitwise.
            let mut re_rendered = String::new();
            render(&Value::Number(parsed), &mut re_rendered, None, 0);
            assert_eq!(re_rendered, text, "render(parse({text})) drifted");
            if x.fract() != 0.0 {
                assert_eq!(parsed.to_bits(), x.to_bits(), "bits drifted for {x}");
            }
        }
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::String("Aé😀".to_string())
        );
        assert_eq!(
            from_str("\"caf\u{e9} 😀\"").unwrap(),
            Value::String("café 😀".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.5stuff",
            "[1] trailing",
            "\"\\ud800\"",
            "nullx",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
