//! Offline stand-in for `serde_json`: renders the vendored `serde` data
//! model to JSON text.  Only the entry points this workspace calls are
//! provided (`to_string`, `to_string_pretty`).

#![forbid(unsafe_code)]

use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// Serialization error.  The vendored data model is infallible, so this is
/// never produced at runtime; it exists so call sites written against the
/// real `serde_json` API compile unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // Like serde_json with default settings: non-finite -> null.
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json::Value;

    #[test]
    fn renders_nested_structures() {
        let value = Value::Object(vec![
            ("title".to_string(), Value::String("E1".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
        ]);
        let mut compact = String::new();
        render(&value, &mut compact, None, 0);
        assert_eq!(compact, r#"{"title":"E1","rows":[1,2.5]}"#);
        let pretty = to_string_pretty(&vec!["a".to_string()]).unwrap();
        assert_eq!(pretty, "[\n  \"a\"\n]");
    }

    #[test]
    fn escapes_control_characters() {
        let rendered = to_string(&"line\n\"quote\"\\\u{1}".to_string()).unwrap();
        assert_eq!(rendered, "\"line\\n\\\"quote\\\"\\\\\\u0001\"");
    }
}
