//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the ChaCha stream cipher as a counter-mode random number
//! generator, exposing [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`]
//! with the `rand` [`RngCore`]/[`SeedableRng`] traits from the sibling
//! vendored `rand` crate.  The keystream is the genuine ChaCha keystream for
//! a zero nonce, so streams are deterministic, seed-sensitive, and of high
//! statistical quality; they are not guaranteed word-for-word identical to
//! upstream `rand_chacha` (which interleaves blocks differently), which is
//! fine because nothing in this workspace pins exact draw values — only
//! determinism per seed.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 output words from key, counter and round count.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// The absolute position in the keystream, measured in 32-bit
            /// words consumed since seeding (upstream-compatible shape).
            pub fn get_word_pos(&self) -> u128 {
                // `counter` has already been advanced past the block held in
                // `buffer`, so the block currently being consumed is
                // `counter - 1`; `index` words of it are gone.
                (self.counter.wrapping_sub(1) as u128) * 16 + self.index as u128
            }

            /// Repositions the generator to an absolute keystream word
            /// position, as previously observed via [`Self::get_word_pos`].
            /// The subsequent output is bit-identical to a generator that
            /// reached the same position by drawing.
            pub fn set_word_pos(&mut self, pos: u128) {
                self.counter = (pos / 16) as u64;
                self.refill();
                self.index = (pos % 16) as usize;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                };
                rng.refill();
                rng
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast simulation-grade generator.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the full cipher).
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_keystream_matches_rfc8439_vector() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 000000090000004a00000000.  Our nonce is fixed at zero, so instead
        // check the zero-key zero-nonce vector from the original ChaCha
        // specification test suite (first block, counter 0):
        let block = chacha_block(&[0u32; 8], 0, 20);
        let mut bytes = Vec::new();
        for w in block {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected_prefix = [
            0x76u8, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28,
        ];
        assert_eq!(&bytes[..16], &expected_prefix);
    }

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn word_pos_round_trip_restores_the_stream() {
        // Check both mid-block and block-boundary positions.
        for draws in [0usize, 1, 15, 16, 17, 37, 64] {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..draws {
                rng.next_u32();
            }
            let pos = rng.get_word_pos();
            assert_eq!(pos, draws as u128);
            let expected: Vec<u32> = (0..100).map(|_| rng.next_u32()).collect();
            let mut restored = ChaCha8Rng::seed_from_u64(42);
            restored.set_word_pos(pos);
            assert_eq!(restored.get_word_pos(), pos);
            let actual: Vec<u32> = (0..100).map(|_| restored.next_u32()).collect();
            assert_eq!(actual, expected, "restore at word position {pos}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        let xs: Vec<u32> = (0..100).map(|_| rng.next_u32()).collect();
        let ys: Vec<u32> = (0..100).map(|_| fork.next_u32()).collect();
        assert_eq!(xs, ys);
    }
}
