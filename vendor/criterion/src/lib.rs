//! Offline stand-in for `criterion`.
//!
//! Exposes the API subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`, the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`] —
//! backed by a simple wall-clock timer instead of criterion's statistical
//! machinery.  Each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints the per-iteration median, so `cargo bench`
//! produces usable (if unsophisticated) numbers offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dumbbell", 64)` → `dumbbell/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_up_iters += 1;
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Choose an iteration count per sample so that all samples fit the
        // measurement budget.
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            routine,
        );
        let _ = &self.criterion;
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finishes the group (a no-op in this stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        run_one(
            &format!("{id}"),
            self.default_sample_size,
            Duration::from_millis(300),
            Duration::from_secs(1),
            routine,
        );
        self
    }
}

fn run_one<R: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut routine: R,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    routine(&mut bencher);
    match bencher.median() {
        Some(median) => println!("bench {name:<60} median {median:>12.2?}"),
        None => println!("bench {name:<60} (no samples — b.iter never called)"),
    }
}

/// Groups benchmark functions under one entry point, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test_group");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dumbbell", 64).to_string(), "dumbbell/64");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
