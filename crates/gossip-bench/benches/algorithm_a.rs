//! Criterion bench for experiment E2: wall-clock cost of running the paper's
//! non-convex Algorithm A to the Definition 1 threshold on dumbbell graphs,
//! including the spectral set-up (`T_van` estimation) and the simulation
//! itself as separate benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_bench::runner::adversarial_initial;
use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
use gossip_graph::generators::dumbbell;
use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
use gossip_sim::stopping::StoppingRule;
use std::time::Duration;

fn bench_algorithm_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_algorithm_a_dumbbell");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &half in &[8usize, 16, 32, 64] {
        let (graph, partition) = dumbbell(half).expect("valid dumbbell");
        let initial = adversarial_initial(&partition);

        group.bench_with_input(BenchmarkId::new("construct", 2 * half), &half, |b, _| {
            b.iter(|| {
                SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())
                    .expect("valid partition")
            })
        });

        group.bench_with_input(BenchmarkId::new("run", 2 * half), &half, |b, _| {
            b.iter(|| {
                let algorithm = SparseCutAlgorithm::from_partition(
                    &graph,
                    &partition,
                    SparseCutConfig::default(),
                )
                .expect("valid partition");
                let config = SimulationConfig::new(11)
                    .with_stopping_rule(StoppingRule::definition1().or_max_time(50_000.0));
                let mut sim = AsyncSimulator::new(&graph, initial.clone(), algorithm, config)
                    .expect("valid simulation");
                sim.run().expect("run succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_a);
criterion_main!(benches);
