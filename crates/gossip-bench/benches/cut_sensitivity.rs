//! Criterion bench for experiment E6: cost of converging vanilla gossip and
//! Algorithm A as the number of bridge edges between two ER clusters varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_bench::runner::adversarial_initial;
use gossip_core::convex::VanillaGossip;
use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
use gossip_graph::generators::bridged_clusters;
use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
use gossip_sim::stopping::StoppingRule;
use std::time::Duration;

fn bench_cut_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_cut_width");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &bridges in &[1usize, 4, 16] {
        let (graph, partition) =
            bridged_clusters(16, 16, bridges, 0.5, 42).expect("valid clusters");
        let initial = adversarial_initial(&partition);
        group.bench_with_input(BenchmarkId::new("vanilla", bridges), &bridges, |b, _| {
            b.iter(|| {
                let config = SimulationConfig::new(5)
                    .with_stopping_rule(StoppingRule::definition1().or_max_time(20_000.0));
                let mut sim =
                    AsyncSimulator::new(&graph, initial.clone(), VanillaGossip::new(), config)
                        .expect("valid simulation");
                sim.run().expect("run succeeds")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("algorithm_a", bridges),
            &bridges,
            |b, _| {
                b.iter(|| {
                    let algorithm = SparseCutAlgorithm::from_partition(
                        &graph,
                        &partition,
                        SparseCutConfig::default(),
                    )
                    .expect("valid partition");
                    let config = SimulationConfig::new(5)
                        .with_stopping_rule(StoppingRule::definition1().or_max_time(20_000.0));
                    let mut sim = AsyncSimulator::new(&graph, initial.clone(), algorithm, config)
                        .expect("valid simulation");
                    sim.run().expect("run succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cut_sensitivity);
criterion_main!(benches);
