//! Criterion bench for experiment E7: cost of running the related-work
//! baselines (synchronous first/second-order diffusion, asynchronous momentum
//! gossip) to the Definition 1 threshold on the dumbbell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_bench::runner::adversarial_initial;
use gossip_core::diffusion::{FirstOrderDiffusion, SecondOrderDiffusion};
use gossip_core::two_time_scale::TwoTimeScaleGossip;
use gossip_graph::generators::dumbbell;
use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
use gossip_sim::stopping::StoppingRule;
use gossip_sim::sync::{SyncConfig, SyncSimulator};
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_baselines_dumbbell");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &half in &[8usize, 16] {
        let (graph, partition) = dumbbell(half).expect("valid dumbbell");
        let initial = adversarial_initial(&partition);

        group.bench_with_input(
            BenchmarkId::new("first_order_diffusion", 2 * half),
            &half,
            |b, _| {
                b.iter(|| {
                    let config = SyncConfig::new()
                        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000));
                    let mut sim = SyncSimulator::new(
                        &graph,
                        initial.clone(),
                        FirstOrderDiffusion::new(),
                        config,
                    )
                    .expect("valid simulation");
                    sim.run().expect("run succeeds")
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("second_order_diffusion", 2 * half),
            &half,
            |b, _| {
                b.iter(|| {
                    let config = SyncConfig::new()
                        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000));
                    let mut sim = SyncSimulator::new(
                        &graph,
                        initial.clone(),
                        SecondOrderDiffusion::new(1.8).expect("valid beta"),
                        config,
                    )
                    .expect("valid simulation");
                    sim.run().expect("run succeeds")
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("momentum_gossip", 2 * half),
            &half,
            |b, _| {
                b.iter(|| {
                    let config = SimulationConfig::new(3)
                        .with_stopping_rule(StoppingRule::definition1().or_max_time(50_000.0));
                    let mut sim = AsyncSimulator::new(
                        &graph,
                        initial.clone(),
                        TwoTimeScaleGossip::for_graph(&graph, 0.7).expect("valid momentum"),
                        config,
                    )
                    .expect("valid simulation");
                    sim.run().expect("run succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
