//! Criterion bench for the substrate layers: graph generation, spectral
//! quantities, the Poisson clock samplers, and the per-tick update cost of
//! the main algorithms.  These are the micro-benchmarks that explain where
//! the experiment harness spends its time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_core::bounds;
use gossip_core::convex::VanillaGossip;
use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
use gossip_graph::generators::{dumbbell, erdos_renyi};
use gossip_graph::spectral::SpectralProfile;
use gossip_sim::clock::{EdgeClockQueue, GlobalTickProcess, TickProcess};
use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
use std::time::Duration;

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_graph_generation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &half in &[32usize, 64] {
        group.bench_with_input(BenchmarkId::new("dumbbell", 2 * half), &half, |b, &half| {
            b.iter(|| dumbbell(half).expect("valid dumbbell"))
        });
    }
    group.bench_function("erdos_renyi_128_p0.1", |b| {
        b.iter(|| erdos_renyi(128, 0.1, 7).expect("valid parameters"))
    });
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_spectral");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 32, 64] {
        let graph = erdos_renyi(n, 0.4, 3).expect("valid parameters");
        group.bench_with_input(BenchmarkId::new("spectral_profile", n), &n, |b, _| {
            b.iter(|| SpectralProfile::compute(&graph).expect("connected sample"))
        });
    }
    let (graph, partition) = dumbbell(32).expect("valid dumbbell");
    group.bench_function("bounds_summary_dumbbell_64", |b| {
        b.iter(|| bounds::BoundsSummary::compute(&graph, &partition, 4.0).expect("valid"))
    });
    group.finish();
}

fn bench_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_clocks");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let graph = erdos_renyi(64, 0.3, 9).expect("valid parameters");
    group.bench_function("edge_clock_queue_10k_ticks", |b| {
        b.iter(|| {
            let mut clock = EdgeClockQueue::new(&graph, 1).expect("edges exist");
            let mut last = 0.0;
            for _ in 0..10_000 {
                last = clock.next_tick().time;
            }
            last
        })
    });
    group.bench_function("global_process_10k_ticks", |b| {
        b.iter(|| {
            let mut clock = GlobalTickProcess::new(&graph, 1).expect("edges exist");
            let mut last = 0.0;
            for _ in 0..10_000 {
                last = clock.next_tick().time;
            }
            last
        })
    });
    group.finish();
}

fn bench_per_tick_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_per_tick_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, partition) = dumbbell(32).expect("valid dumbbell");
    let initial =
        gossip_core::averaging_time::AveragingTimeEstimator::adversarial_initial(&partition);
    let edge_id = gossip_graph::EdgeId(0);
    let ctx = EdgeTickContext {
        graph: &graph,
        edge: graph.edge(edge_id).expect("edge exists"),
        edge_id,
        time: 1.0,
        edge_tick_count: 1,
        global_tick_count: 1,
    };

    group.bench_function("vanilla_tick", |b| {
        let mut values = initial.clone();
        let mut algorithm = VanillaGossip::new();
        b.iter(|| algorithm.on_edge_tick(&mut values, &ctx))
    });
    group.bench_function("algorithm_a_tick", |b| {
        let mut values = initial.clone();
        let mut algorithm =
            SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())
                .expect("valid partition");
        b.iter(|| algorithm.on_edge_tick(&mut values, &ctx))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_generation,
    bench_spectral,
    bench_clocks,
    bench_per_tick_updates
);
criterion_main!(benches);
