//! Experiment runners E1–E10 plus the Scale, SimScale, Robustness, Perf and
//! Adversary tiers.
//!
//! Every function is deterministic given the [`HarnessConfig`] (all
//! randomness is seeded), returns structured data plus a rendered
//! [`Table`], and is sized so that the full harness finishes in minutes on a
//! laptop in `--release`.
//!
//! Scenario rows are independent seeded computations, so every tier fans
//! them out over a [`gossip_exec::Executor`] ([`HarnessConfig::jobs`] wide,
//! default `GOSSIP_JOBS` / available parallelism) with **ordered
//! collection**: rows land in their input positions, so every table and
//! JSON report is byte-identical to the serial order at any job count (only
//! wall-clock columns, where present, vary).  `--jobs 1` reproduces the
//! historical serial execution exactly.

use crate::probes::{CutTickProbe, EpochProbe};
use crate::table::Table;
use crate::trial::{engine_fingerprint, run_trials, TrialRow};
use gossip_analysis::dominance::DominanceReport;
use gossip_analysis::random_walk::simple_walk_tail_frequency;
use gossip_analysis::{concentration, regression, robust};
use gossip_core::averaging_time::{AveragingTimeEstimate, AveragingTimeEstimator, EstimatorConfig};
use gossip_core::bounds;
use gossip_core::convex::{RandomNeighborGossip, VanillaGossip, WeightedConvexGossip};
use gossip_core::diffusion::{FirstOrderDiffusion, SecondOrderDiffusion};
use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig, TransferCoefficient};
use gossip_core::two_time_scale::TwoTimeScaleGossip;
use gossip_exec::Executor;
use gossip_graph::{Graph, NodeId, Partition};
use gossip_sim::checkpoint::EngineCheckpoint;
use gossip_sim::engine::{AsyncSimulator, ClockModel, SimulationConfig, SimulationOutcome};
use gossip_sim::handler::EdgeTickHandler;
use gossip_sim::stopping::{StoppingRule, DEFINITION1_THRESHOLD};
use gossip_sim::sync::{RoundHandler, SyncConfig, SyncSimulator};
use gossip_sim::values::NodeValues;
use gossip_sim::SimError;
use gossip_store::{trial_key, CheckpointRecord, TrialSink, ValueExt};
use gossip_workloads::scenarios::robustness_suite;
use gossip_workloads::sweep;
use gossip_workloads::{ExperimentId, InitialCondition, Scenario};
use serde::json::Value;
use serde::{Deserialize, Serialize};

/// Convenience error type of the harness (it aggregates errors from every
/// workspace crate, so a boxed error keeps the signatures readable).
pub type BenchError = Box<dyn std::error::Error + Send + Sync>;

/// Result alias for harness functions.
pub type BenchResult<T> = Result<T, BenchError>;

/// Global configuration of the harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// Quick mode: fewer runs and smaller maximum sizes (used by tests and
    /// CI); full mode matches the numbers recorded in `EXPERIMENTS.md`.
    pub quick: bool,
    /// Base seed; every experiment derives its own sub-seeds from it.
    pub seed: u64,
    /// Worker threads the tiers fan their scenario rows out over.  `None`
    /// resolves `GOSSIP_JOBS`, then the available parallelism; `Some(1)`
    /// forces the serial path.  Every setting produces byte-identical tables
    /// and reports (wall-clock columns aside) — rows are collected in input
    /// order.
    pub jobs: Option<usize>,
    /// Intra-run sharding threaded into every simulation the tiers build
    /// (see `SimulationConfig::shards`).  `None` (the default) keeps the
    /// legacy per-tick loop and the historical byte-stable outputs;
    /// `Some(k)` switches every kernel-capable simulation to the sharded
    /// engine, whose deterministic outputs are bit-identical across every
    /// shard count — CI diffs `--shards 1` against `--shards 4`.
    pub shards: Option<usize>,
    /// Mid-run checkpoint cadence in ticks, threaded into the tiers whose
    /// long relaxations support checkpoint capture (currently MEM_SCALE's
    /// flat runs).  `0` (the default) disables capture; with a store-backed
    /// sink, captured checkpoints are committed to the tier's
    /// `.ckpt.jsonl` log and a resumed run restores from the newest one.
    pub checkpoint_every_ticks: u64,
    /// Per-trial wall-clock budget threaded into every simulation config
    /// the tiers build.  A trial whose engine run exceeds it is *censored*:
    /// journaled with an explicit `deadline_censored` reason and skipped,
    /// never hanging or failing the sweep.  `None` (the default) means no
    /// deadline.
    pub trial_deadline: Option<std::time::Duration>,
    /// How many times a *panicking* trial is deterministically retried
    /// (fresh scratch, same derived seed) before its panic is surfaced as
    /// an error.  Retries are journaled on the recovered row as
    /// `supervision_retries`.
    pub trial_retries: u32,
}

impl HarnessConfig {
    /// Quick configuration (small sweeps, few runs).
    pub fn quick() -> Self {
        HarnessConfig {
            quick: true,
            seed: 0xC0FFEE,
            jobs: None,
            shards: None,
            checkpoint_every_ticks: 0,
            trial_deadline: None,
            trial_retries: 1,
        }
    }

    /// Full configuration (the numbers recorded in `EXPERIMENTS.md`).
    pub fn full() -> Self {
        HarnessConfig {
            quick: false,
            seed: 0xC0FFEE,
            jobs: None,
            shards: None,
            checkpoint_every_ticks: 0,
            trial_deadline: None,
            trial_retries: 1,
        }
    }

    fn runs(&self) -> usize {
        if self.quick {
            3
        } else {
            7
        }
    }

    fn max_dumbbell_n(&self) -> usize {
        if self.quick {
            64
        } else {
            256
        }
    }

    /// The row-level executor of this harness run.
    fn executor(&self) -> Executor {
        Executor::with_override(self.jobs)
    }

    /// Applies the harness-wide shard setting and the per-trial wall-clock
    /// deadline to a simulation config.  The deadline is what makes a
    /// wedged run surface as `SimError::DeadlineExceeded`, which the trial
    /// supervision in [`run_trials`] turns into a journaled
    /// `deadline_censored` record instead of a hung sweep.
    fn sharded(&self, sim_config: SimulationConfig) -> SimulationConfig {
        let sim_config = match self.trial_deadline {
            Some(deadline) => sim_config.with_wall_clock_deadline(deadline),
            None => sim_config,
        };
        match self.shards {
            Some(shards) => sim_config.with_shards(shards),
            None => sim_config,
        }
    }

    fn estimator(&self, seed_offset: u64, max_time: f64) -> AveragingTimeEstimator {
        // Stopping checks are O(1) against the incremental moment tracker,
        // so the estimator keeps its default per-tick resolution
        // (`check_every_ticks = 1`): measured averaging times no longer
        // overshoot by up to an |E|/10 check interval.
        //
        // Estimators built here run inside a tier's row-level fan-out, so
        // their own run fan-out is pinned to one job: the rows already
        // saturate the pool, and a nested pool per row would oversubscribe
        // the machine without changing any output (the PERF tier, which
        // times estimator-level parallelism deliberately, builds its own
        // estimators).
        AveragingTimeEstimator::new(
            EstimatorConfig::new(self.seed.wrapping_add(seed_offset))
                .with_runs(self.runs())
                .with_max_time(max_time)
                .with_jobs(Some(1))
                .with_shards(self.shards),
        )
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self::quick()
    }
}

fn fmt(v: f64) -> String {
    Table::fmt_f64(v)
}

// ---------------------------------------------------------------------------
// E1–E3: the dumbbell sweep.
// ---------------------------------------------------------------------------

/// One row of the dumbbell sweep (experiments E1–E3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DumbbellSweepRow {
    /// Total number of nodes.
    pub n: usize,
    /// Theorem 1 quantity `min(n1,n2)/|E12|`.
    pub lower_bound: f64,
    /// Theorem 2 quantity `C·ln n·(T_van(G1)+T_van(G2))` with the default C.
    pub upper_bound: f64,
    /// Measured averaging time of vanilla gossip.
    pub vanilla: f64,
    /// Measured averaging time of weighted convex gossip (α = 0.7).
    pub weighted: f64,
    /// Measured averaging time of random-neighbour gossip.
    pub random_neighbor: f64,
    /// Measured averaging time of Algorithm A.
    pub algorithm_a: f64,
}

/// The dumbbell sweep: measured averaging times of the class-`C` algorithms
/// and Algorithm A for doubling sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DumbbellSweep {
    /// One row per graph size.
    pub rows: Vec<DumbbellSweepRow>,
}

impl TrialRow for DumbbellSweepRow {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::Number(self.n as f64)),
            ("lower_bound".to_string(), Value::Number(self.lower_bound)),
            ("upper_bound".to_string(), Value::Number(self.upper_bound)),
            ("vanilla".to_string(), Value::Number(self.vanilla)),
            ("weighted".to_string(), Value::Number(self.weighted)),
            (
                "random_neighbor".to_string(),
                Value::Number(self.random_neighbor),
            ),
            ("algorithm_a".to_string(), Value::Number(self.algorithm_a)),
        ])
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(DumbbellSweepRow {
            n: value.field_usize("n")?,
            lower_bound: value.field_f64("lower_bound")?,
            upper_bound: value.field_f64("upper_bound")?,
            vanilla: value.field_f64("vanilla")?,
            weighted: value.field_f64("weighted")?,
            random_neighbor: value.field_f64("random_neighbor")?,
            algorithm_a: value.field_f64("algorithm_a")?,
        })
    }
}

/// Runs the dumbbell sweep shared by experiments E1, E2 and E3 (journaled
/// under the single `DUMBBELL` token, since the three tables render the
/// same trials).
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_dumbbell_sweep(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<DumbbellSweep> {
    let sizes = sweep::dumbbell_size_sweep(16, config.max_dumbbell_n());
    let fingerprints: Vec<String> = sizes.values.iter().map(Scenario::fingerprint).collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "DUMBBELL",
        &fingerprints,
        |index| -> BenchResult<DumbbellSweepRow> {
            let scenario = &sizes.values[index];
            let instance = scenario.instantiate(config.seed)?;
            let graph = &instance.graph;
            let partition = &instance.partition;
            let summary = bounds::BoundsSummary::compute(graph, partition, 4.0)?;
            // Convex algorithms need Θ(n1) time; give them ample head-room.
            let max_time = 60.0 * summary.convex_lower_bound + 500.0;
            let estimator = config.estimator(index as u64 * 101, max_time);

            let vanilla = estimator.estimate(graph, partition, VanillaGossip::new)?;
            let weighted = estimator.estimate(graph, partition, || {
                WeightedConvexGossip::new(0.7).expect("valid alpha")
            })?;
            let random_neighbor = {
                let seed = config.seed.wrapping_add(7 + index as u64);
                estimator.estimate(graph, partition, || RandomNeighborGossip::new(seed))?
            };
            let algorithm_a = estimator.estimate(graph, partition, || {
                SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                    .expect("valid partition")
            })?;

            Ok(DumbbellSweepRow {
                n: graph.node_count(),
                lower_bound: summary.convex_lower_bound,
                upper_bound: summary.theorem2_upper_bound,
                vanilla: vanilla.averaging_time,
                weighted: weighted.averaging_time,
                random_neighbor: random_neighbor.averaging_time,
                algorithm_a: algorithm_a.averaging_time,
            })
        },
    )?;
    Ok(DumbbellSweep { rows })
}

/// Table E1: convex averaging times versus the Theorem 1 lower bound.
pub fn table_e1(sweep: &DumbbellSweep) -> Table {
    let descriptor = ExperimentId::E1.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "n",
            "Thm1 bound n1/|E12|",
            "vanilla T_av",
            "weighted(0.7) T_av",
            "random-neighbor T_av",
            "vanilla / bound",
        ],
    );
    for row in &sweep.rows {
        table.push_row(vec![
            row.n.to_string(),
            fmt(row.lower_bound),
            fmt(row.vanilla),
            fmt(row.weighted),
            fmt(row.random_neighbor),
            fmt(row.vanilla / row.lower_bound),
        ]);
    }
    table
}

/// Table E2: Algorithm A's averaging time versus the Theorem 2 quantity.
pub fn table_e2(sweep: &DumbbellSweep) -> Table {
    let descriptor = ExperimentId::E2.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "n",
            "Thm2 C·ln n·(Tvan1+Tvan2)",
            "Algorithm A T_av",
            "A / Thm2",
        ],
    );
    for row in &sweep.rows {
        table.push_row(vec![
            row.n.to_string(),
            fmt(row.upper_bound),
            fmt(row.algorithm_a),
            fmt(row.algorithm_a / row.upper_bound),
        ]);
    }
    table
}

/// Table E3: the separation (speed-up) and the fitted scaling exponents.
pub fn table_e3(sweep: &DumbbellSweep) -> Table {
    let descriptor = ExperimentId::E3.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &["n", "vanilla T_av", "Algorithm A T_av", "speed-up"],
    );
    for row in &sweep.rows {
        table.push_row(vec![
            row.n.to_string(),
            fmt(row.vanilla),
            fmt(row.algorithm_a),
            fmt(row.vanilla / row.algorithm_a),
        ]);
    }
    // Append the fitted exponents as a trailing summary row.
    let ns: Vec<f64> = sweep.rows.iter().map(|r| r.n as f64).collect();
    let vanilla: Vec<f64> = sweep.rows.iter().map(|r| r.vanilla.max(1e-9)).collect();
    let algo: Vec<f64> = sweep.rows.iter().map(|r| r.algorithm_a.max(1e-9)).collect();
    if let (Ok(fit_v), Ok(fit_a)) = (
        regression::log_log_fit(&ns, &vanilla),
        regression::log_log_fit(&ns, &algo),
    ) {
        table.push_row(vec![
            "log-log slope".to_string(),
            fmt(fit_v.slope),
            fmt(fit_a.slope),
            fmt(fit_v.slope - fit_a.slope),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E4: Section 2 proof mechanics.
// ---------------------------------------------------------------------------

/// Result of experiment E4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E4Result {
    /// Number of nodes of the instance.
    pub n: usize,
    /// The Section 2 per-tick bound `2/n1`.
    pub per_tick_bound: f64,
    /// Largest observed per-cut-tick movement of `y(t)`.
    pub max_observed_delta: f64,
    /// Number of cut-edge ticks observed by the horizon.
    pub observed_cut_ticks: usize,
    /// Expected number of cut-edge ticks (`horizon · |E12|`).
    pub expected_cut_ticks: f64,
    /// Simulated horizon.
    pub horizon: f64,
    /// Final `var X` and the Section 2 lower bound `n1·y²/n` at the horizon.
    pub final_variance: f64,
    /// The `n1·y²/n` lower bound at the horizon.
    pub variance_lower_bound: f64,
}

impl TrialRow for E4Result {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::Number(self.n as f64)),
            (
                "per_tick_bound".to_string(),
                Value::Number(self.per_tick_bound),
            ),
            (
                "max_observed_delta".to_string(),
                Value::Number(self.max_observed_delta),
            ),
            (
                "observed_cut_ticks".to_string(),
                Value::Number(self.observed_cut_ticks as f64),
            ),
            (
                "expected_cut_ticks".to_string(),
                Value::Number(self.expected_cut_ticks),
            ),
            ("horizon".to_string(), Value::Number(self.horizon)),
            (
                "final_variance".to_string(),
                Value::Number(self.final_variance),
            ),
            (
                "variance_lower_bound".to_string(),
                Value::Number(self.variance_lower_bound),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(E4Result {
            n: value.field_usize("n")?,
            per_tick_bound: value.field_f64("per_tick_bound")?,
            max_observed_delta: value.field_f64("max_observed_delta")?,
            observed_cut_ticks: value.field_usize("observed_cut_ticks")?,
            expected_cut_ticks: value.field_f64("expected_cut_ticks")?,
            horizon: value.field_f64("horizon")?,
            final_variance: value.field_f64("final_variance")?,
            variance_lower_bound: value.field_f64("variance_lower_bound")?,
        })
    }
}

/// Runs experiment E4 and renders its table.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e4(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<(E4Result, Table)> {
    let half = if config.quick { 32 } else { 64 };
    let horizon = if config.quick { 20.0 } else { 40.0 };
    let fingerprints = vec![format!("dumbbell(half={half})+horizon={horizon}")];
    let mut rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E4",
        &fingerprints,
        |_| -> BenchResult<E4Result> {
            let (graph, partition) = gossip_graph::generators::dumbbell(half)?;
            let n1 = partition.smaller_block_size() as f64;
            let initial = AveragingTimeEstimator::adversarial_initial(&partition);
            let probe = CutTickProbe::new(VanillaGossip::new(), partition.clone());
            let sim_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(4))
                    .with_stopping_rule(StoppingRule::max_time(horizon)),
            );
            let mut simulator = AsyncSimulator::new(&graph, initial, probe, sim_config)?;
            let outcome = simulator.run()?;
            let probe = simulator.handler();

            let y = outcome
                .final_values
                .block_mean(&partition, gossip_graph::partition::Block::One);
            Ok(E4Result {
                n: graph.node_count(),
                per_tick_bound: 2.0 / n1,
                max_observed_delta: probe.max_delta(),
                observed_cut_ticks: probe.cut_tick_count(),
                expected_cut_ticks: horizon * partition.cut_edge_count() as f64,
                horizon,
                final_variance: outcome.final_variance,
                variance_lower_bound: n1 * y * y / graph.node_count() as f64,
            })
        },
    )?;
    let result = rows.pop().expect("E4 runs exactly one trial");

    let descriptor = ExperimentId::E4.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &["quantity", "bound / expectation", "observed"],
    );
    table.push_row(vec![
        "per-cut-tick |Δy|".to_string(),
        fmt(result.per_tick_bound),
        fmt(result.max_observed_delta),
    ]);
    table.push_row(vec![
        format!("cut ticks by t = {horizon}"),
        fmt(result.expected_cut_ticks),
        result.observed_cut_ticks.to_string(),
    ]);
    table.push_row(vec![
        "var X(t) ≥ n1·y(t)²/n".to_string(),
        fmt(result.variance_lower_bound),
        fmt(result.final_variance),
    ]);
    Ok((result, table))
}

// ---------------------------------------------------------------------------
// E5: Section 3 proof mechanics.
// ---------------------------------------------------------------------------

/// One row of experiment E5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E5Row {
    /// Number of nodes.
    pub n: usize,
    /// Number of epochs (transfers) observed.
    pub epochs: usize,
    /// Fraction of epochs achieving the `≤ −(3/2)·log n` contraction.
    pub contraction_fraction: f64,
    /// Fraction of epochs exceeding the `+log n` ceiling.
    pub ceiling_violation_fraction: f64,
    /// Whether the observed log-variance path is dominated pointwise by the
    /// coupled lazy walk.
    pub dominated: bool,
    /// Final observed `log var` drop.
    pub final_observed_drop: f64,
    /// Final value of the coupled dominating walk.
    pub final_dominating: f64,
}

impl TrialRow for E5Row {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::Number(self.n as f64)),
            ("epochs".to_string(), Value::Number(self.epochs as f64)),
            (
                "contraction_fraction".to_string(),
                Value::Number(self.contraction_fraction),
            ),
            (
                "ceiling_violation_fraction".to_string(),
                Value::Number(self.ceiling_violation_fraction),
            ),
            ("dominated".to_string(), Value::Bool(self.dominated)),
            (
                "final_observed_drop".to_string(),
                Value::Number(self.final_observed_drop),
            ),
            (
                "final_dominating".to_string(),
                Value::Number(self.final_dominating),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(E5Row {
            n: value.field_usize("n")?,
            epochs: value.field_usize("epochs")?,
            contraction_fraction: value.field_f64("contraction_fraction")?,
            ceiling_violation_fraction: value.field_f64("ceiling_violation_fraction")?,
            dominated: value.field_bool("dominated")?,
            final_observed_drop: value.field_f64("final_observed_drop")?,
            final_dominating: value.field_f64("final_dominating")?,
        })
    }
}

/// Runs experiment E5 and renders its table.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e5(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<(Vec<E5Row>, Table)> {
    let halves: Vec<usize> = if config.quick {
        vec![16, 32]
    } else {
        vec![16, 32, 64]
    };
    let fingerprints: Vec<String> = halves
        .iter()
        .map(|half| format!("dumbbell(half={half})"))
        .collect();
    let maybe_rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E5",
        &fingerprints,
        |index| -> BenchResult<Option<E5Row>> {
            let half = halves[index];
            let (graph, partition) = gossip_graph::generators::dumbbell(half)?;
            // Start from a within-block-noisy vector so that several epochs are
            // needed (the clean adversarial vector converges after one transfer).
            let initial = gossip_workloads::InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
                .generate(graph.node_count(), Some(&partition), config.seed ^ 0x55)?;
            let algorithm = SparseCutAlgorithm::from_partition(
                &graph,
                &partition,
                SparseCutConfig::new().with_epoch_constant(2.0),
            )?;
            let designated = algorithm.designated_edge();
            let epoch_ticks = algorithm.epoch_ticks();
            // Renormalize at every epoch boundary so that an arbitrary number of
            // per-epoch contraction factors can be observed without the variance
            // hitting the floating-point floor; stop after a fixed horizon of
            // epochs rather than on convergence.
            let target_epochs: f64 = if config.quick { 12.0 } else { 25.0 };
            let probe = EpochProbe::new(algorithm, designated, epoch_ticks).with_renormalization();
            let sim_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(50 + index as u64))
                    .with_stopping_rule(StoppingRule::max_time(
                        (target_epochs + 2.0) * epoch_ticks as f64,
                    )),
            );
            let mut simulator = AsyncSimulator::new(&graph, initial, probe, sim_config)?;
            let _ = simulator.run()?;
            let probe = simulator.handler();
            let increments = probe.log_variance_increments();
            if increments.is_empty() {
                return Ok(None);
            }
            let report = DominanceReport::from_increments(&increments, graph.node_count())?;
            Ok(Some(E5Row {
                n: graph.node_count(),
                epochs: report.epochs,
                contraction_fraction: report.contraction_fraction,
                ceiling_violation_fraction: report.ceiling_violation_fraction,
                dominated: report.dominated_pointwise,
                final_observed_drop: report.final_observed,
                final_dominating: report.final_dominating,
            }))
        },
    )?;
    let rows: Vec<E5Row> = maybe_rows.into_iter().flatten().collect();

    let descriptor = ExperimentId::E5.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "n",
            "epochs",
            "contraction fraction (≥ 1/2 expected)",
            "ceiling violations",
            "dominated by W~",
            "final log-var drop",
            "final W~",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.n.to_string(),
            row.epochs.to_string(),
            fmt(row.contraction_fraction),
            fmt(row.ceiling_violation_fraction),
            row.dominated.to_string(),
            fmt(row.final_observed_drop),
            fmt(row.final_dominating),
        ]);
    }
    Ok((rows, table))
}

// ---------------------------------------------------------------------------
// E6: sensitivity to |E12| and C.
// ---------------------------------------------------------------------------

/// Runs experiment E6 (cut-width and epoch-constant sensitivity) and renders
/// its two tables.  Both sweeps journal under the `E6` token; the cut rows
/// carry a `+part=cut` fingerprint suffix and the epoch-constant rows a
/// `+C=<c>` suffix, so the two groups never collide.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e6(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<(Table, Table)> {
    let descriptor = ExperimentId::E6.descriptor();
    // Part 1: cut width.
    let cluster = if config.quick { 16 } else { 24 };
    let cut_sweep = sweep::cut_width_sweep(cluster, 0.5, if config.quick { 4 } else { 16 });
    let mut cut_table = Table::new(
        format!("{}: {} — cut width", descriptor.id, descriptor.title),
        &["|E12|", "Thm1 bound", "vanilla T_av", "Algorithm A T_av"],
    );
    let cut_fingerprints: Vec<String> = cut_sweep
        .values
        .iter()
        .map(|scenario| format!("{}+part=cut", scenario.fingerprint()))
        .collect();
    let cut_rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E6",
        &cut_fingerprints,
        |index| -> BenchResult<Vec<String>> {
            let scenario = &cut_sweep.values[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(600 + index as u64))?;
            let graph = &instance.graph;
            let partition = &instance.partition;
            let lower = bounds::theorem1_lower_bound(partition);
            let max_time = 60.0 * lower + 300.0;
            let estimator = config.estimator(700 + index as u64, max_time);
            let vanilla = estimator.estimate(graph, partition, VanillaGossip::new)?;
            let algo = estimator.estimate(graph, partition, || {
                SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                    .expect("valid partition")
            })?;
            Ok(vec![
                partition.cut_edge_count().to_string(),
                fmt(lower),
                fmt(vanilla.averaging_time),
                fmt(algo.averaging_time),
            ])
        },
    )?;
    for row in cut_rows {
        cut_table.push_row(row);
    }

    // Part 2: the epoch constant C.
    let half = if config.quick { 16 } else { 32 };
    let (graph, partition) = gossip_graph::generators::dumbbell(half)?;
    let constants = sweep::epoch_constant_sweep(&[]);
    let mut c_table = Table::new(
        format!("{}: {} — epoch constant C", descriptor.id, descriptor.title),
        &["C", "epoch ticks", "Algorithm A T_av"],
    );
    let c_fingerprints: Vec<String> = constants
        .values
        .iter()
        .map(|c| format!("dumbbell(half={half})+C={c}"))
        .collect();
    let c_rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E6",
        &c_fingerprints,
        |index| -> BenchResult<Vec<String>> {
            let c = constants.values[index];
            let estimator = config.estimator(800 + index as u64, 4000.0);
            let algo_config = SparseCutConfig::new().with_epoch_constant(c);
            let probe_algo =
                SparseCutAlgorithm::from_partition(&graph, &partition, algo_config.clone())?;
            let estimate = estimator.estimate(&graph, &partition, || {
                SparseCutAlgorithm::from_partition(&graph, &partition, algo_config.clone())
                    .expect("valid partition")
            })?;
            Ok(vec![
                fmt(c),
                probe_algo.epoch_ticks().to_string(),
                fmt(estimate.averaging_time),
            ])
        },
    )?;
    for row in c_rows {
        c_table.push_row(row);
    }
    Ok((cut_table, c_table))
}

// ---------------------------------------------------------------------------
// E7: related-work baselines.
// ---------------------------------------------------------------------------

fn sync_settling_time<H: RoundHandler>(
    graph: &Graph,
    initial: NodeValues,
    handler: H,
) -> BenchResult<f64> {
    let config =
        SyncConfig::new().with_stopping_rule(StoppingRule::definition1().or_max_ticks(5_000_000));
    let mut simulator = SyncSimulator::new(graph, initial, handler, config)?;
    let outcome = simulator.run()?;
    Ok(outcome.equivalent_time)
}

/// Runs experiment E7 (baselines on the dumbbell) and renders its table.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e7(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<Table> {
    let descriptor = ExperimentId::E7.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "n",
            "1st-order diffusion",
            "2nd-order diffusion",
            "momentum gossip",
            "Algorithm A",
        ],
    );
    let sizes: Vec<usize> = if config.quick {
        vec![16, 32, 64]
    } else {
        vec![16, 32, 64, 128]
    };
    let fingerprints: Vec<String> = sizes
        .iter()
        .map(|n| format!("dumbbell(half={})", n / 2))
        .collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E7",
        &fingerprints,
        |index| -> BenchResult<Vec<String>> {
            let n = sizes[index];
            let (graph, partition) = gossip_graph::generators::dumbbell(n / 2)?;
            let initial = AveragingTimeEstimator::adversarial_initial(&partition);

            let fos = sync_settling_time(&graph, initial.clone(), FirstOrderDiffusion::new())?;
            let sos = sync_settling_time(&graph, initial.clone(), SecondOrderDiffusion::new(1.8)?)?;

            let lower = bounds::theorem1_lower_bound(&partition);
            let estimator = config.estimator(900 + index as u64, 80.0 * lower + 400.0);
            let momentum = estimator.estimate(&graph, &partition, || {
                TwoTimeScaleGossip::for_graph(&graph, 0.7).expect("valid momentum")
            })?;
            let algo = estimator.estimate(&graph, &partition, || {
                SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())
                    .expect("valid partition")
            })?;

            Ok(vec![
                n.to_string(),
                fmt(fos),
                fmt(sos),
                fmt(momentum.averaging_time),
                fmt(algo.averaging_time),
            ])
        },
    )?;
    for row in rows {
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// E8: robustness suite.
// ---------------------------------------------------------------------------

/// Runs experiment E8 (robustness beyond the dumbbell) and renders its table.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e8(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<Table> {
    let descriptor = ExperimentId::E8.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "scenario",
            "n",
            "|E12|",
            "Thm1 bound",
            "vanilla T_av",
            "Algorithm A T_av",
            "speed-up",
        ],
    );
    let total = if config.quick { 32 } else { 96 };
    let suite = robustness_suite(total);
    let fingerprints: Vec<String> = suite.iter().map(Scenario::fingerprint).collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E8",
        &fingerprints,
        |index| -> BenchResult<Vec<String>> {
            let scenario = &suite[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(100 + index as u64))?;
            instance.validate_notation1()?;
            let graph = &instance.graph;
            let partition = &instance.partition;
            let lower = bounds::theorem1_lower_bound(partition);
            let estimator = config.estimator(1000 + index as u64, 80.0 * lower + 400.0);
            let vanilla = estimator.estimate(graph, partition, VanillaGossip::new)?;
            let algo = estimator.estimate(graph, partition, || {
                SparseCutAlgorithm::from_partition(graph, partition, SparseCutConfig::default())
                    .expect("valid partition")
            })?;
            Ok(vec![
                instance.name.clone(),
                graph.node_count().to_string(),
                partition.cut_edge_count().to_string(),
                fmt(lower),
                fmt(vanilla.averaging_time),
                fmt(algo.averaging_time),
                fmt(vanilla.averaging_time / algo.averaging_time.max(1e-9)),
            ])
        },
    )?;
    for row in rows {
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// E9: Theorem 3 tails.
// ---------------------------------------------------------------------------

/// Runs experiment E9 (random-walk tail bound) and renders its table.
///
/// # Errors
///
/// Propagates analysis and journal errors.
pub fn run_e9(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<Table> {
    let descriptor = ExperimentId::E9.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &["s", "empirical P[S_k ≥ s√k]", "Theorem 3 bound e^{−s²/2}"],
    );
    let k = 64;
    let trials = if config.quick { 4_000 } else { 20_000 };
    let thresholds = [0.5, 1.0, 1.5, 2.0, 2.5];
    let fingerprints: Vec<String> = thresholds
        .iter()
        .map(|s| format!("walk(k={k},s={s},trials={trials})"))
        .collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E9",
        &fingerprints,
        |index| -> BenchResult<Vec<String>> {
            let s = thresholds[index];
            let empirical = simple_walk_tail_frequency(k, s, trials, config.seed.wrapping_add(9));
            let bound = concentration::simple_walk_tail_bound(k, s)?;
            Ok(vec![fmt(s), fmt(empirical), fmt(bound)])
        },
    )?;
    for row in rows {
        table.push_row(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// E10: transfer-coefficient ablation.
// ---------------------------------------------------------------------------

/// One row of the transfer-coefficient ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E10Row {
    /// Human-readable name of the coefficient choice.
    pub coefficient: String,
    /// Resolved numeric value of γ.
    pub gamma: f64,
    /// Measured averaging time (censored at the cap when not converged).
    pub averaging_time: f64,
    /// Number of runs that failed to reach the confirmation level.
    pub censored_runs: usize,
}

impl TrialRow for E10Row {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "coefficient".to_string(),
                Value::String(self.coefficient.clone()),
            ),
            ("gamma".to_string(), Value::Number(self.gamma)),
            (
                "averaging_time".to_string(),
                Value::Number(self.averaging_time),
            ),
            (
                "censored_runs".to_string(),
                Value::Number(self.censored_runs as f64),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(E10Row {
            coefficient: value.field_str("coefficient")?.to_string(),
            gamma: value.field_f64("gamma")?,
            averaging_time: value.field_f64("averaging_time")?,
            censored_runs: value.field_usize("censored_runs")?,
        })
    }
}

/// Runs experiment E10 (transfer-coefficient ablation) and renders its table.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_e10(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<(Vec<E10Row>, Table)> {
    let half = if config.quick { 16 } else { 32 };
    let (graph, partition) = gossip_graph::generators::dumbbell(half)?;
    let n1 = partition.smaller_block_size();
    let n2 = partition.larger_block_size();
    let max_time = 40.0 * bounds::theorem1_lower_bound(&partition) + 200.0;
    let estimator = config.estimator(1100, max_time);

    let choices: Vec<(String, TransferCoefficient)> = vec![
        (
            "exact balance n1·n2/n".to_string(),
            TransferCoefficient::ExactBalance,
        ),
        (
            "paper literal n1".to_string(),
            TransferCoefficient::PaperLiteral,
        ),
        (
            "convex 1.0 (swap)".to_string(),
            TransferCoefficient::Custom(1.0),
        ),
        (
            "convex 0.5 (average)".to_string(),
            TransferCoefficient::Custom(0.5),
        ),
    ];
    let fingerprints: Vec<String> = choices
        .iter()
        .map(|(_, coefficient)| format!("dumbbell(half={half})+coeff={coefficient:?}"))
        .collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "E10",
        &fingerprints,
        |index| -> BenchResult<E10Row> {
            let (name, coefficient) = &choices[index];
            let coefficient = *coefficient;
            let estimate: AveragingTimeEstimate = estimator.estimate(&graph, &partition, || {
                SparseCutAlgorithm::from_partition(
                    &graph,
                    &partition,
                    SparseCutConfig::new().with_transfer_coefficient(coefficient),
                )
                .expect("valid partition")
            })?;
            Ok(E10Row {
                coefficient: name.clone(),
                gamma: coefficient.resolve(n1, n2),
                averaging_time: estimate.averaging_time,
                censored_runs: estimate.censored_runs,
            })
        },
    )?;

    let descriptor = ExperimentId::E10.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "transfer coefficient",
            "γ",
            "T_av (capped)",
            "censored runs",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.coefficient.clone(),
            fmt(row.gamma),
            fmt(row.averaging_time),
            row.censored_runs.to_string(),
        ]);
    }
    Ok((rows, table))
}

// ---------------------------------------------------------------------------
// Scale: the sparse spectral pipeline at large n.
// ---------------------------------------------------------------------------

/// One row of the scaling-tier experiment: the sparse-path spectral profile
/// of a bounded-degree sparse-cut family, with wall-clock build/solve times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges (the sparse path is O(|E|) per matvec).
    pub edges: usize,
    /// Cut width `|E12|` of the canonical partition.
    pub cut_edges: usize,
    /// Fiedler value `λ₂` of the Laplacian.
    pub algebraic_connectivity: f64,
    /// Largest Laplacian eigenvalue.
    pub laplacian_lambda_max: f64,
    /// Spectral gap of the expected gossip matrix `W̄`.
    pub gossip_spectral_gap: f64,
    /// Spectral `T_van` estimate in absolute time.
    pub t_van_estimate: f64,
    /// Wall-clock milliseconds to build the graph.  Rows fan out over the
    /// harness executor, so at `jobs > 1` this includes contention from
    /// sibling rows; for timings comparable across machines run with
    /// `--jobs 1`, or use the PERF tier, whose throughput rows are always
    /// timed serially.
    pub build_ms: f64,
    /// Wall-clock milliseconds for the sparse spectral profile
    /// (contention-dependent at `jobs > 1`, like [`Self::build_ms`]).
    pub spectral_ms: f64,
}

/// The scaling-tier report serialized to `BENCH_scale.json`: the perf
/// trajectory's seed artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed (scenario instantiation only — the spectral pipeline
    /// itself is deterministic).
    pub seed: u64,
    /// The dense/sparse dispatch threshold in effect.
    pub sparse_dispatch_threshold: usize,
    /// Largest dense matrix dimension allocated while the experiment ran —
    /// must stay below the threshold, proving the large-n path is sparse.
    pub largest_dense_dimension: usize,
    /// One row per (size, family) pair.
    pub rows: Vec<ScaleRow>,
}

// The vendored serde derive is a no-op (see vendor/README.md), so the types
// written to BENCH_scale.json carry hand-written impls like `Table` does.
impl serde::Serialize for ScaleRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("cut_edges".to_string(), self.cut_edges.to_json_value()),
            (
                "algebraic_connectivity".to_string(),
                self.algebraic_connectivity.to_json_value(),
            ),
            (
                "laplacian_lambda_max".to_string(),
                self.laplacian_lambda_max.to_json_value(),
            ),
            (
                "gossip_spectral_gap".to_string(),
                self.gossip_spectral_gap.to_json_value(),
            ),
            (
                "t_van_estimate".to_string(),
                self.t_van_estimate.to_json_value(),
            ),
            ("build_ms".to_string(), self.build_ms.to_json_value()),
            ("spectral_ms".to_string(), self.spectral_ms.to_json_value()),
        ])
    }
}

impl TrialRow for ScaleRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(ScaleRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            cut_edges: value.field_usize("cut_edges")?,
            algebraic_connectivity: value.field_f64("algebraic_connectivity")?,
            laplacian_lambda_max: value.field_f64("laplacian_lambda_max")?,
            gossip_spectral_gap: value.field_f64("gossip_spectral_gap")?,
            t_van_estimate: value.field_f64("t_van_estimate")?,
            build_ms: value.field_f64("build_ms")?,
            spectral_ms: value.field_f64("spectral_ms")?,
        })
    }
}

impl serde::Serialize for ScaleReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            (
                "sparse_dispatch_threshold".to_string(),
                self.sparse_dispatch_threshold.to_json_value(),
            ),
            (
                "largest_dense_dimension".to_string(),
                self.largest_dense_dimension.to_json_value(),
            ),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

/// Runs the scaling-tier experiment: for every size in the scale grid and
/// every bounded-degree family, pushes a `SpectralProfile` + `T_van`
/// estimate through the sparse CSR/Lanczos path and records timings.
///
/// On a resumed run, `largest_dense_dimension` only reflects the trials
/// computed *this* process: fully replayed rows allocate nothing, so the
/// tracker legitimately reads 0 — the sparse-path claim was already proven
/// when the rows were first committed.
///
/// # Errors
///
/// Propagates graph-construction, eigensolver and journal errors.
pub fn run_scale(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(ScaleReport, Table)> {
    gossip_linalg::matrix::reset_largest_dense_dimension();
    let sweep = sweep::scale_sweep(config.quick);
    let fingerprints: Vec<String> = sweep.values.iter().map(Scenario::fingerprint).collect();
    // The dense-dimension tracker is a process-global atomic (fetch_max), so
    // concurrent rows feed it exactly like serial rows do.
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "SCALE",
        &fingerprints,
        |index| -> BenchResult<ScaleRow> {
            let scenario = &sweep.values[index];
            let build_start = std::time::Instant::now();
            let instance = scenario.instantiate(config.seed.wrapping_add(1200 + index as u64))?;
            let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
            let spectral_start = std::time::Instant::now();
            let profile = gossip_graph::spectral::SpectralProfile::compute(&instance.graph)?;
            let t_van = profile.vanilla_averaging_time_estimate();
            let spectral_ms = spectral_start.elapsed().as_secs_f64() * 1e3;
            Ok(ScaleRow {
                family: instance.name.clone(),
                n: instance.graph.node_count(),
                edges: instance.graph.edge_count(),
                cut_edges: instance.partition.cut_edge_count(),
                algebraic_connectivity: profile.algebraic_connectivity,
                laplacian_lambda_max: profile.laplacian_lambda_max,
                gossip_spectral_gap: profile.gossip_spectral_gap,
                t_van_estimate: t_van,
                build_ms,
                spectral_ms,
            })
        },
    )?;
    let report = ScaleReport {
        quick: config.quick,
        seed: config.seed,
        sparse_dispatch_threshold: gossip_graph::spectral::SPARSE_DISPATCH_THRESHOLD,
        largest_dense_dimension: gossip_linalg::matrix::largest_dense_dimension(),
        rows,
    };

    let descriptor = ExperimentId::Scale.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "family",
            "n",
            "|E|",
            "|E12|",
            "λ₂",
            "λ_max",
            "gossip gap",
            "T_van est",
            "build ms",
            "spectral ms",
        ],
    );
    for row in &report.rows {
        table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.cut_edges.to_string(),
            fmt(row.algebraic_connectivity),
            fmt(row.laplacian_lambda_max),
            fmt(row.gossip_spectral_gap),
            fmt(row.t_van_estimate),
            fmt(row.build_ms),
            fmt(row.spectral_ms),
        ]);
    }
    Ok((report, table))
}

// ---------------------------------------------------------------------------
// SimScale: the asynchronous simulation at large n.
// ---------------------------------------------------------------------------

/// One row of the simulation scaling-tier experiment: a complete
/// asynchronous run to the Definition 1 stop with per-tick O(1) checking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScaleRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Which initial condition was used (`arc-adversarial` or `uniform`).
    pub initial: String,
    /// Edge ticks processed until the run stopped.
    pub ticks: u64,
    /// Simulated time at which the run stopped.
    pub stop_time: f64,
    /// Why the run stopped (expected: `Converged`).
    pub stop_reason: String,
    /// Final normalized variance `var X(T)/var X(0)` (exact recompute).
    pub variance_ratio: f64,
    /// Scheduled exact moment refreshes performed during the run — the only
    /// O(n) variance passes on the hot path.
    pub moment_refreshes: u64,
    /// Wall-clock milliseconds for the run.  Rows fan out over the harness
    /// executor, so at `jobs > 1` this includes contention from sibling
    /// rows; for clean throughput numbers run with `--jobs 1`, or use the
    /// PERF tier, whose throughput rows are always timed serially.
    pub wall_ms: f64,
    /// Event throughput (ticks per wall-clock second; contention-dependent
    /// at `jobs > 1`, like [`Self::wall_ms`]).
    pub ticks_per_sec: f64,
}

/// The simulation scaling-tier report serialized to `BENCH_sim_scale.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScaleReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed.
    pub seed: u64,
    /// Exact-refresh period of the incremental moments, in ticks.
    pub moment_refresh_every_ticks: u64,
    /// One row per (size, family) pair.
    pub rows: Vec<SimScaleRow>,
}

// Hand-written serde impls: the vendored derive is a no-op (vendor/README.md).
impl serde::Serialize for SimScaleRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("initial".to_string(), self.initial.to_json_value()),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_time".to_string(), self.stop_time.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            (
                "moment_refreshes".to_string(),
                self.moment_refreshes.to_json_value(),
            ),
            ("wall_ms".to_string(), self.wall_ms.to_json_value()),
            (
                "ticks_per_sec".to_string(),
                self.ticks_per_sec.to_json_value(),
            ),
        ])
    }
}

impl TrialRow for SimScaleRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(SimScaleRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            initial: value.field_str("initial")?.to_string(),
            ticks: value.field_u64("ticks")?,
            stop_time: value.field_f64("stop_time")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            moment_refreshes: value.field_u64("moment_refreshes")?,
            wall_ms: value.field_f64("wall_ms")?,
            ticks_per_sec: value.field_f64("ticks_per_sec")?,
        })
    }
}

impl serde::Serialize for SimScaleReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            (
                "moment_refresh_every_ticks".to_string(),
                self.moment_refresh_every_ticks.to_json_value(),
            ),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

/// Runs one sim-scale row per scenario — an asynchronous vanilla run to the
/// Definition 1 stop with per-tick O(1) checking, timed — fanning the rows
/// out over the harness executor with ordered collection.
///
/// This is the row machinery of [`run_sim_scale`], exposed separately so the
/// parallel-determinism suite can drive the real code path on a small
/// scenario list.  All deterministic fields (everything except `wall_ms` and
/// `ticks_per_sec`) are byte-identical at any job count.  Replayed rows
/// return their wall-clock fields *as committed* — the timing of the run
/// that originally paid for the trial.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn sim_scale_rows(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
    scenarios: &[Scenario],
) -> BenchResult<Vec<SimScaleRow>> {
    let fingerprints: Vec<String> = scenarios.iter().map(Scenario::fingerprint).collect();
    run_trials(
        config,
        &config.executor(),
        sink,
        "SIM_SCALE",
        &fingerprints,
        |index| -> BenchResult<SimScaleRow> {
            let scenario = &scenarios[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(1300 + index as u64))?;
            let graph = &instance.graph;
            let n = graph.node_count();
            let (initial, initial_label) = match scenario {
                Scenario::ChordalRing { .. } => (
                    AveragingTimeEstimator::adversarial_initial(&instance.partition),
                    "arc-adversarial",
                ),
                _ => (
                    InitialCondition::Uniform { lo: -1.0, hi: 1.0 }.generate(
                        n,
                        Some(&instance.partition),
                        config.seed.wrapping_add(1400 + index as u64),
                    )?,
                    "uniform",
                ),
            };
            let sim_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(1500 + index as u64))
                    // The global sampler draws ticks in O(1); the per-edge
                    // queue's heap would add an O(log |E|) factor per event.
                    .with_clock_model(ClockModel::GlobalUniform)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000_000))
                    .with_max_events(4_000_000_000),
            );
            let start = std::time::Instant::now();
            let mut simulator =
                AsyncSimulator::new(graph, initial, VanillaGossip::new(), sim_config)?;
            let outcome = simulator.run()?;
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            Ok(SimScaleRow {
                family: instance.name.clone(),
                n,
                edges: graph.edge_count(),
                initial: initial_label.to_string(),
                ticks: outcome.total_ticks,
                stop_time: outcome.elapsed_time,
                stop_reason: format!("{:?}", outcome.stop_reason),
                variance_ratio: outcome.variance_ratio(),
                moment_refreshes: outcome.moment_refreshes,
                wall_ms,
                ticks_per_sec: outcome.total_ticks as f64 / (wall_ms / 1e3).max(1e-9),
            })
        },
    )
}

/// Runs the simulation scaling-tier experiment: for every size in the scale
/// grid and every family of `sim_scale_suite`, one asynchronous vanilla run
/// to the Definition 1 stop with per-tick O(1) incremental checking, timed.
///
/// The chordal ring (no sparse cut) starts from the arc-adversarial vector,
/// so the run measures a genuine worst-case relaxation; the sparse-cut
/// families start from a uniform vector (their cut-aligned worst case needs
/// Ω(n₁/|E₁₂|) time by Theorem 1 — the very bound the small-n tiers
/// measure — which would be wall-clock prohibitive at 50k nodes).
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors.
pub fn run_sim_scale(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(SimScaleReport, Table)> {
    let sweep = sweep::sim_scale_sweep(config.quick);
    let refresh = gossip_sim::engine::DEFAULT_MOMENT_REFRESH_TICKS;
    let rows = sim_scale_rows(config, sink, &sweep.values)?;
    let report = SimScaleReport {
        quick: config.quick,
        seed: config.seed,
        moment_refresh_every_ticks: refresh,
        rows,
    };

    let descriptor = ExperimentId::SimScale.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "family",
            "n",
            "|E|",
            "initial",
            "ticks",
            "T_stop",
            "var ratio",
            "refreshes",
            "wall ms",
            "ticks/s",
        ],
    );
    for row in &report.rows {
        table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.initial.clone(),
            row.ticks.to_string(),
            fmt(row.stop_time),
            fmt(row.variance_ratio),
            row.moment_refreshes.to_string(),
            fmt(row.wall_ms),
            fmt(row.ticks_per_sec),
        ]);
    }
    Ok((report, table))
}

// ---------------------------------------------------------------------------
// MemScale: the flat SoA engine up to 10^6 nodes.
// ---------------------------------------------------------------------------

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when unreadable.
///
/// `VmHWM` is the kernel's high-water mark for the whole process and only
/// ever grows, so a row's reading includes every earlier allocation in the
/// same process — it is an honest *upper* bound on the row's footprint, and
/// like wall-clock it is a volatile field: the CI determinism gate strips
/// it before diffing reports.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// One row of the memory-scaling tier: a flat-SoA asynchronous run to the
/// Definition 1 stop, its in-row legacy byte-identity oracle (at sizes where
/// the double run is affordable), and an f32-tier run under its error-bound
/// oracle.  Rows only reach the journal after every oracle passed — an
/// identity mismatch or a precision violation is an `Err`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemScaleRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Which initial condition was used (always `uniform` in this tier).
    pub initial: String,
    /// Edge ticks processed until the flat-SoA run stopped.
    pub ticks: u64,
    /// Simulated time at which the run stopped.
    pub stop_time: f64,
    /// Why the run stopped (expected: `Converged`).
    pub stop_reason: String,
    /// Final normalized variance `var X(T)/var X(0)` (exact recompute).
    pub variance_ratio: f64,
    /// Scheduled exact moment refreshes performed during the run.
    pub moment_refreshes: u64,
    /// `true` when the in-row legacy-layout byte-identity oracle ran (sizes
    /// ≤ 50k); a journaled row with `true` here *passed* it — a mismatch
    /// never commits.
    pub legacy_checked: bool,
    /// Ticks of the f32-tier run (same clock seed; the tick stream never
    /// reads the values, but the stop tick may differ — the f32 variance
    /// crosses the threshold on its own schedule).
    pub f32_ticks: u64,
    /// Final normalized variance of the f32 run (exact recompute).
    pub f32_variance_ratio: f64,
    /// Measured f32 mean drift `|mean(final) − mean(initial)|`.
    pub f32_mean_drift: f64,
    /// The a-priori bound the drift was held to.
    pub f32_mean_drift_bound: f64,
    /// Measured f32 tracked-vs-exact final-variance error.
    pub f32_variance_error: f64,
    /// The bound the variance error was held to.
    pub f32_variance_error_bound: f64,
    /// Wall-clock milliseconds of the flat-SoA run (volatile; see
    /// [`SimScaleRow::wall_ms`] for the contention caveat).
    pub wall_ms: f64,
    /// Event throughput of the flat-SoA run (volatile).
    pub ticks_per_sec: f64,
    /// Process peak RSS in bytes after the row's runs ([`peak_rss_bytes`]).
    /// `None` — journaled and reported as `null` — when the probe is
    /// unavailable (off Linux, or `/proc/self/status` unreadable); an absent
    /// reading is not an error and not a `0`-byte footprint.  Volatile and
    /// monotone across rows in the same process.
    pub peak_rss_bytes: Option<u64>,
}

/// The memory-scaling report serialized to `BENCH_mem_scale.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemScaleReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed.
    pub seed: u64,
    /// Exact-refresh period of the incremental moments, in ticks.
    pub moment_refresh_every_ticks: u64,
    /// One row per (size, family) pair.
    pub rows: Vec<MemScaleRow>,
}

// Hand-written serde impls: the vendored derive is a no-op (vendor/README.md).
impl serde::Serialize for MemScaleRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("initial".to_string(), self.initial.to_json_value()),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_time".to_string(), self.stop_time.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            (
                "moment_refreshes".to_string(),
                self.moment_refreshes.to_json_value(),
            ),
            (
                "legacy_checked".to_string(),
                self.legacy_checked.to_json_value(),
            ),
            ("f32_ticks".to_string(), self.f32_ticks.to_json_value()),
            (
                "f32_variance_ratio".to_string(),
                self.f32_variance_ratio.to_json_value(),
            ),
            (
                "f32_mean_drift".to_string(),
                self.f32_mean_drift.to_json_value(),
            ),
            (
                "f32_mean_drift_bound".to_string(),
                self.f32_mean_drift_bound.to_json_value(),
            ),
            (
                "f32_variance_error".to_string(),
                self.f32_variance_error.to_json_value(),
            ),
            (
                "f32_variance_error_bound".to_string(),
                self.f32_variance_error_bound.to_json_value(),
            ),
            ("wall_ms".to_string(), self.wall_ms.to_json_value()),
            (
                "ticks_per_sec".to_string(),
                self.ticks_per_sec.to_json_value(),
            ),
            (
                "peak_rss_bytes".to_string(),
                self.peak_rss_bytes.to_json_value(),
            ),
        ])
    }
}

impl TrialRow for MemScaleRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(MemScaleRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            initial: value.field_str("initial")?.to_string(),
            ticks: value.field_u64("ticks")?,
            stop_time: value.field_f64("stop_time")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            moment_refreshes: value.field_u64("moment_refreshes")?,
            legacy_checked: value.field_bool("legacy_checked")?,
            f32_ticks: value.field_u64("f32_ticks")?,
            f32_variance_ratio: value.field_f64("f32_variance_ratio")?,
            f32_mean_drift: value.field_f64("f32_mean_drift")?,
            f32_mean_drift_bound: value.field_f64("f32_mean_drift_bound")?,
            f32_variance_error: value.field_f64("f32_variance_error")?,
            f32_variance_error_bound: value.field_f64("f32_variance_error_bound")?,
            wall_ms: value.field_f64("wall_ms")?,
            ticks_per_sec: value.field_f64("ticks_per_sec")?,
            peak_rss_bytes: match value.get("peak_rss_bytes")? {
                Value::Null => None,
                _ => Some(value.field_u64("peak_rss_bytes")?),
            },
        })
    }
}

impl serde::Serialize for MemScaleReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            (
                "moment_refresh_every_ticks".to_string(),
                self.moment_refresh_every_ticks.to_json_value(),
            ),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

/// Largest size at which a mem-scale row doubles up with a legacy-layout run
/// for the in-row byte-identity oracle; above this the second O(ticks) run
/// would dominate the tier's wall-clock, and the identity is already pinned
/// at this size on every family.
pub const MEM_SCALE_IDENTITY_MAX_N: usize = 50_000;

/// Runs one mem-scale row per scenario: a timed flat-SoA vanilla run to the
/// Definition 1 stop, the legacy byte-identity oracle at sizes ≤
/// [`MEM_SCALE_IDENTITY_MAX_N`], and an f32-tier run under
/// [`gossip_sim::flat::F32Oracle`].  Row machinery of [`run_mem_scale`],
/// exposed for the differential suites.
///
/// Unlike the other simulation tiers this one ignores `--shards`: the tier
/// measures the *serial* flat loop (sharding would bypass the layout under
/// test), so its engine fingerprint and journaled rows are shard-invariant
/// by construction.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors; a legacy
/// byte-identity mismatch or an f32 oracle violation is an `Err`, so such a
/// row never reaches the journal.
pub fn mem_scale_rows(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
    scenarios: &[Scenario],
) -> BenchResult<Vec<MemScaleRow>> {
    let fingerprints: Vec<String> = scenarios.iter().map(Scenario::fingerprint).collect();
    run_trials(
        config,
        &config.executor(),
        sink,
        "MEM_SCALE",
        &fingerprints,
        |index| -> BenchResult<MemScaleRow> {
            let scenario = &scenarios[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(3000 + index as u64))?;
            let graph = &instance.graph;
            let n = graph.node_count();
            let initial = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }.generate(
                n,
                Some(&instance.partition),
                config.seed.wrapping_add(3100 + index as u64),
            )?;
            let mut sim_config =
                SimulationConfig::new(config.seed.wrapping_add(3200 + index as u64))
                    .with_clock_model(ClockModel::GlobalUniform)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000_000))
                    .with_max_events(4_000_000_000);
            // This tier bypasses `sharded()` (it measures the serial flat
            // loop), so the trial deadline is threaded in here directly.
            if let Some(deadline) = config.trial_deadline {
                sim_config = sim_config.with_wall_clock_deadline(deadline);
            }

            let flat_config = sim_config
                .clone()
                .with_flat_layout()
                .with_checkpoint_every_ticks(config.checkpoint_every_ticks);

            let start = std::time::Instant::now();
            let flat = if config.checkpoint_every_ticks > 0 {
                // Mid-run checkpointing: resume the timed flat run from the
                // newest committed checkpoint (if any), and commit each new
                // checkpoint through the sink as the run progresses.  The
                // engine guarantees restored and checkpointing runs are
                // bit-identical to an uninterrupted one, so the legacy
                // byte-identity oracle below is unaffected.
                let key = trial_key(
                    "MEM_SCALE",
                    &scenario.fingerprint(),
                    config.seed,
                    &engine_fingerprint(config),
                );
                let mut flat_sim = match sink.latest_checkpoint("MEM_SCALE", key) {
                    Some((tick, blob)) => {
                        let checkpoint = EngineCheckpoint::from_value(&blob)?;
                        eprintln!(
                            "run store[MEM_SCALE]: restoring {} from checkpoint at tick {tick}",
                            scenario.fingerprint()
                        );
                        AsyncSimulator::restore(
                            graph,
                            VanillaGossip::new(),
                            flat_config,
                            &checkpoint,
                        )?
                    }
                    None => AsyncSimulator::new(
                        graph,
                        initial.clone(),
                        VanillaGossip::new(),
                        flat_config,
                    )?,
                };
                // The engine's sink signature speaks `SimError`; carry any
                // store failure across it in a slot and rethrow it as-is.
                let mut store_failure = None;
                let outcome = flat_sim.run_with_checkpoints(&mut |checkpoint| {
                    let record = CheckpointRecord {
                        key,
                        experiment: "MEM_SCALE".to_string(),
                        tick: checkpoint.tick(),
                        blob: checkpoint.to_value(),
                    };
                    sink.commit_checkpoint(record).map_err(|error| {
                        let reason = format!("checkpoint commit failed: {error}");
                        store_failure = Some(error);
                        SimError::InvalidConfig { reason }
                    })
                });
                match (outcome, store_failure) {
                    (Ok(outcome), _) => outcome,
                    (Err(_), Some(store_error)) => return Err(store_error.into()),
                    (Err(sim_error), None) => return Err(sim_error.into()),
                }
            } else {
                let mut flat_sim =
                    AsyncSimulator::new(graph, initial.clone(), VanillaGossip::new(), flat_config)?;
                flat_sim.run()?
            };
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;

            let legacy_checked = n <= MEM_SCALE_IDENTITY_MAX_N;
            if legacy_checked {
                let mut legacy_sim = AsyncSimulator::new(
                    graph,
                    initial.clone(),
                    VanillaGossip::new(),
                    sim_config.clone(),
                )?;
                let legacy = legacy_sim.run()?;
                let identical = legacy.total_ticks == flat.total_ticks
                    && legacy.elapsed_time.to_bits() == flat.elapsed_time.to_bits()
                    && legacy.stop_reason == flat.stop_reason
                    && legacy.moment_refreshes == flat.moment_refreshes
                    && legacy.final_variance.to_bits() == flat.final_variance.to_bits()
                    && legacy
                        .final_values
                        .as_slice()
                        .iter()
                        .zip(flat.final_values.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if !identical {
                    return Err(format!(
                        "mem-scale identity oracle: flat-SoA run diverged from the legacy \
                         layout on {} (n = {n})",
                        instance.name
                    )
                    .into());
                }
            }

            let kernel = VanillaGossip::new()
                .pairwise_kernel()
                .expect("vanilla gossip exposes its pairwise kernel");
            let f32_outcome = gossip_sim::flat::run_f32(
                graph,
                &initial,
                kernel,
                &sim_config,
                &gossip_sim::flat::F32Oracle::default(),
            )?;

            Ok(MemScaleRow {
                family: instance.name.clone(),
                n,
                edges: graph.edge_count(),
                initial: "uniform".to_string(),
                ticks: flat.total_ticks,
                stop_time: flat.elapsed_time,
                stop_reason: format!("{:?}", flat.stop_reason),
                variance_ratio: flat.variance_ratio(),
                moment_refreshes: flat.moment_refreshes,
                legacy_checked,
                f32_ticks: f32_outcome.total_ticks,
                f32_variance_ratio: f32_outcome.variance_ratio(),
                f32_mean_drift: f32_outcome.mean_drift,
                f32_mean_drift_bound: f32_outcome.mean_drift_bound,
                f32_variance_error: f32_outcome.variance_error,
                f32_variance_error_bound: f32_outcome.variance_error_bound,
                wall_ms,
                ticks_per_sec: flat.total_ticks as f64 / (wall_ms / 1e3).max(1e-9),
                peak_rss_bytes: peak_rss_bytes(),
            })
        },
    )
}

/// Runs the memory-scaling tier: for every size in `mem_scale_sizes` and
/// every family of `sim_scale_suite`, one flat-SoA vanilla relaxation to the
/// Definition 1 stop (timed, with peak-RSS accounting), the legacy
/// byte-identity oracle at 50k, and an f32-tier run under its error-bound
/// oracle.
///
/// Every family starts from the **uniform** vector — including the chordal
/// ring, which the SIM_SCALE tier starts arc-adversarially.  The deviation
/// is deliberate: the arc-adversarial relaxation needs Ω(n²)-ish ticks on
/// the ring and would make the 10⁶-node row wall-clock prohibitive, and
/// worst-case *averaging time* is SIM_SCALE's claim — this tier's claims
/// are memory-layout identity, bounded RSS, and throughput at scale.
///
/// # Errors
///
/// See [`mem_scale_rows`].
pub fn run_mem_scale(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(MemScaleReport, Table)> {
    let sweep = sweep::mem_scale_sweep(config.quick);
    let rows = mem_scale_rows(config, sink, &sweep.values)?;
    let report = MemScaleReport {
        quick: config.quick,
        seed: config.seed,
        moment_refresh_every_ticks: gossip_sim::engine::DEFAULT_MOMENT_REFRESH_TICKS,
        rows,
    };

    let descriptor = ExperimentId::MemScale.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "family",
            "n",
            "|E|",
            "ticks",
            "T_stop",
            "var ratio",
            "legacy✓",
            "f32 drift",
            "drift bound",
            "wall ms",
            "ticks/s",
            "RSS MiB",
        ],
    );
    for row in &report.rows {
        table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.ticks.to_string(),
            fmt(row.stop_time),
            fmt(row.variance_ratio),
            if row.legacy_checked { "yes" } else { "-" }.to_string(),
            fmt(row.f32_mean_drift),
            fmt(row.f32_mean_drift_bound),
            fmt(row.wall_ms),
            fmt(row.ticks_per_sec),
            match row.peak_rss_bytes {
                Some(bytes) => fmt(bytes as f64 / (1024.0 * 1024.0)),
                None => "-".to_string(),
            },
        ]);
    }
    Ok((report, table))
}

// ---------------------------------------------------------------------------
// Robustness: fault injection and dynamic topology.
// ---------------------------------------------------------------------------

/// One row of the robustness tier: a faulted asynchronous run against its
/// fault-free baseline, with conservation-oracle and surviving-topology
/// columns.  Deliberately contains no wall-clock fields: the report is part
/// of the CI determinism gate and must be byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Fault profile name (from `FaultProfile::name`).
    pub fault: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Per-contact drop probability of the profile (0 for topological
    /// faults).
    pub drop_probability: f64,
    /// Ticks to the stop of the fault-free baseline run (same clock seed).
    pub baseline_ticks: u64,
    /// Ticks to the stop of the faulted run.
    pub ticks: u64,
    /// Why the faulted run stopped (expected: `Converged`).
    pub stop_reason: String,
    /// Final normalized variance of the faulted run (exact recompute).
    pub variance_ratio: f64,
    /// Conservation oracle: `|mean X(T) − mean X(0)|` of the faulted run.
    /// Suppressed contacts skip the pairwise update atomically, so this must
    /// stay at rounding-noise level no matter the schedule.
    pub mean_drift: f64,
    /// Contacts whose handler ran.
    pub delivered: u64,
    /// Contacts dropped by the message-loss process.
    pub dropped: u64,
    /// Contacts suppressed by link outages.
    pub edge_down_skips: u64,
    /// Contacts suppressed by node pauses.
    pub node_pause_skips: u64,
    /// Worst-surviving-subgraph spectral probe: the minimum algebraic
    /// connectivity over the components that remain when every edge the
    /// plan ever takes down (and every edge incident to an ever-paused
    /// node) is removed; `0.0` if nothing with an edge survives.
    pub worst_surviving_lambda2: f64,
}

/// The robustness-tier report serialized to `BENCH_robustness.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed.
    pub seed: u64,
    /// One row per (size, churn case) pair.
    pub rows: Vec<RobustnessRow>,
}

// Hand-written serde impls: the vendored derive is a no-op (vendor/README.md).
impl serde::Serialize for RobustnessRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("fault".to_string(), self.fault.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            (
                "drop_probability".to_string(),
                self.drop_probability.to_json_value(),
            ),
            (
                "baseline_ticks".to_string(),
                self.baseline_ticks.to_json_value(),
            ),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            ("mean_drift".to_string(), self.mean_drift.to_json_value()),
            ("delivered".to_string(), self.delivered.to_json_value()),
            ("dropped".to_string(), self.dropped.to_json_value()),
            (
                "edge_down_skips".to_string(),
                self.edge_down_skips.to_json_value(),
            ),
            (
                "node_pause_skips".to_string(),
                self.node_pause_skips.to_json_value(),
            ),
            (
                "worst_surviving_lambda2".to_string(),
                self.worst_surviving_lambda2.to_json_value(),
            ),
        ])
    }
}

impl TrialRow for RobustnessRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(RobustnessRow {
            family: value.field_str("family")?.to_string(),
            fault: value.field_str("fault")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            drop_probability: value.field_f64("drop_probability")?,
            baseline_ticks: value.field_u64("baseline_ticks")?,
            ticks: value.field_u64("ticks")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            mean_drift: value.field_f64("mean_drift")?,
            delivered: value.field_u64("delivered")?,
            dropped: value.field_u64("dropped")?,
            edge_down_skips: value.field_u64("edge_down_skips")?,
            node_pause_skips: value.field_u64("node_pause_skips")?,
            worst_surviving_lambda2: value.field_f64("worst_surviving_lambda2")?,
        })
    }
}

impl serde::Serialize for RobustnessReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

/// Runs the robustness tier: for every size in the robustness grid and every
/// churn case, one fault-free baseline run and one faulted run (same clock
/// seed, adversarial cut-aligned start, global uniform clock, Definition 1
/// stop), plus the worst-surviving-subgraph spectral probe of the plan's
/// dynamic topology.  The report carries no wall-clock fields, so two runs
/// at the same seed are byte-identical — CI diffs the JSON.
///
/// # Errors
///
/// Propagates graph-construction, fault-plan, simulation and journal errors.
pub fn run_robustness(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(RobustnessReport, Table)> {
    let sweep = sweep::robustness_sweep(config.quick);
    let fingerprints: Vec<String> = sweep.values.iter().map(|case| case.fingerprint()).collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "ROBUSTNESS",
        &fingerprints,
        |index| -> BenchResult<RobustnessRow> {
            let case = &sweep.values[index];
            let instance = case
                .scenario
                .instantiate(config.seed.wrapping_add(1600 + index as u64))?;
            instance.validate_notation1()?;
            let graph = &instance.graph;
            let plan = case
                .fault
                .compile(&instance, config.seed.wrapping_add(1700 + index as u64));
            let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
            let base_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(1800 + index as u64))
                    .with_clock_model(ClockModel::GlobalUniform)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200_000_000)),
            );

            let mut baseline_sim = AsyncSimulator::new(
                graph,
                initial.clone(),
                VanillaGossip::new(),
                base_config.clone(),
            )?;
            let baseline = baseline_sim.run()?;

            let initial_mean = initial.mean();
            let mut faulted_sim = AsyncSimulator::new(
                graph,
                initial,
                VanillaGossip::new(),
                base_config.with_fault_plan(plan.clone()),
            )?;
            let faulted = faulted_sim.run()?;

            // Worst surviving subgraph: remove everything the plan ever takes
            // down and probe the weakest remaining island.
            let mut view = gossip_graph::dynamic::DynamicGraphView::new(graph);
            for edge in plan.edges_ever_down() {
                view.kill_edge(edge)?;
            }
            for node in plan.nodes_ever_paused() {
                view.kill_node(node)?;
            }
            let worst_lambda2 = view.worst_surviving_connectivity()?.unwrap_or(0.0);

            Ok(RobustnessRow {
                family: instance.name.clone(),
                fault: case.fault.name(),
                n: graph.node_count(),
                edges: graph.edge_count(),
                drop_probability: case.fault.drop_probability(),
                baseline_ticks: baseline.total_ticks,
                ticks: faulted.total_ticks,
                stop_reason: format!("{:?}", faulted.stop_reason),
                variance_ratio: faulted.variance_ratio(),
                mean_drift: (faulted.final_values.mean() - initial_mean).abs(),
                delivered: faulted.fault_stats.delivered,
                dropped: faulted.fault_stats.dropped,
                edge_down_skips: faulted.fault_stats.edge_down_skips,
                node_pause_skips: faulted.fault_stats.node_pause_skips,
                worst_surviving_lambda2: worst_lambda2,
            })
        },
    )?;
    let report = RobustnessReport {
        quick: config.quick,
        seed: config.seed,
        rows,
    };

    let descriptor = ExperimentId::Robustness.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "family",
            "fault",
            "n",
            "|E|",
            "base ticks",
            "fault ticks",
            "slowdown",
            "stop",
            "var ratio",
            "suppressed",
            "worst λ₂",
            "mean drift",
        ],
    );
    for row in &report.rows {
        let suppressed = row.dropped + row.edge_down_skips + row.node_pause_skips;
        table.push_row(vec![
            row.family.clone(),
            row.fault.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.baseline_ticks.to_string(),
            row.ticks.to_string(),
            fmt(row.ticks as f64 / row.baseline_ticks.max(1) as f64),
            row.stop_reason.clone(),
            fmt(row.variance_ratio),
            suppressed.to_string(),
            fmt(row.worst_surviving_lambda2),
            fmt(row.mean_drift),
        ]);
    }
    Ok((report, table))
}

// ---------------------------------------------------------------------------
// Adversary: Byzantine attacks against vanilla and robust aggregation.
// ---------------------------------------------------------------------------

/// Tick cap of the adversary tier: persistent attackers can hold the global
/// variance above the Definition 1 threshold forever (frozen biased
/// injectors never join the consensus), so `MaxTicks` is an expected stop
/// reason, not a failure, and the cap bounds the tier's runtime.
const ADVERSARY_MAX_TICKS: u64 = 20_000_000;

/// One row of the adversary tier: an attacked asynchronous run against its
/// attack-free baseline under the same aggregation rule, with the
/// honest-subset drift oracle and the detection counters.  Deliberately
/// contains no wall-clock fields: the report is part of the CI determinism
/// gate and must be byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Attack profile name (from `AdversaryProfile::name`).
    pub attack: String,
    /// Aggregation rule name (from `AggregationKind::name`).
    pub aggregation: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of misbehaving nodes (0 for censor-only attacks).
    pub adversaries: usize,
    /// Ticks to the stop of the attack-free baseline run (same clock seed,
    /// same aggregation rule).
    pub clean_ticks: u64,
    /// Ticks to the stop of the attacked run.
    pub ticks: u64,
    /// Why the attacked run stopped (`Converged` or — under persistent
    /// attacks that pin the variance — `MaxTicks`).
    pub stop_reason: String,
    /// Final normalized variance of the attacked run (exact recompute).
    pub variance_ratio: f64,
    /// `|mean of honest final values − mean of honest initial values|` of
    /// the attacked run: how far the adversary dragged the honest subset.
    pub honest_drift: f64,
    /// The oracle bound on `honest_drift`: the per-capita falsification
    /// bound (`gossip_analysis::robust::honest_drift_bound`) for
    /// mass-conserving rules, the convex-hull bound
    /// (`gossip_analysis::robust::hull_drift_bound`) for median gossip.
    pub drift_bound: f64,
    /// Whether `honest_drift ≤ drift_bound + 1e-9` — must be `true` on
    /// every row.
    pub drift_oracle_ok: bool,
    /// Contacts suppressed by censoring bridges.
    pub censored_contacts: u64,
    /// Delivered contacts with at least one falsified report.
    pub falsified_contacts: u64,
    /// Falsified reports (facing an honest partner) beyond the plan's
    /// detection threshold.
    pub flagged_reports: u64,
}

/// The adversary-tier report serialized to `BENCH_adversary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed.
    pub seed: u64,
    /// One row per (size, attack × aggregation) case.
    pub rows: Vec<AdversaryRow>,
}

// Hand-written serde impls: the vendored derive is a no-op (vendor/README.md).
impl serde::Serialize for AdversaryRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("attack".to_string(), self.attack.to_json_value()),
            ("aggregation".to_string(), self.aggregation.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("adversaries".to_string(), self.adversaries.to_json_value()),
            ("clean_ticks".to_string(), self.clean_ticks.to_json_value()),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            (
                "honest_drift".to_string(),
                self.honest_drift.to_json_value(),
            ),
            ("drift_bound".to_string(), self.drift_bound.to_json_value()),
            (
                "drift_oracle_ok".to_string(),
                self.drift_oracle_ok.to_json_value(),
            ),
            (
                "censored_contacts".to_string(),
                self.censored_contacts.to_json_value(),
            ),
            (
                "falsified_contacts".to_string(),
                self.falsified_contacts.to_json_value(),
            ),
            (
                "flagged_reports".to_string(),
                self.flagged_reports.to_json_value(),
            ),
        ])
    }
}

impl TrialRow for AdversaryRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(AdversaryRow {
            family: value.field_str("family")?.to_string(),
            attack: value.field_str("attack")?.to_string(),
            aggregation: value.field_str("aggregation")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            adversaries: value.field_usize("adversaries")?,
            clean_ticks: value.field_u64("clean_ticks")?,
            ticks: value.field_u64("ticks")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            honest_drift: value.field_f64("honest_drift")?,
            drift_bound: value.field_f64("drift_bound")?,
            drift_oracle_ok: value.field_bool("drift_oracle_ok")?,
            censored_contacts: value.field_u64("censored_contacts")?,
            falsified_contacts: value.field_u64("falsified_contacts")?,
            flagged_reports: value.field_u64("flagged_reports")?,
        })
    }
}

impl serde::Serialize for AdversaryReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

/// Mean of the values at the nodes **not** listed in `excluded` (the honest
/// subset).  `excluded` must leave at least one node.
fn honest_mean(values: &NodeValues, excluded: &[NodeId]) -> f64 {
    let excluded: std::collections::BTreeSet<usize> = excluded.iter().map(|n| n.0).collect();
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, v) in values.as_slice().iter().enumerate() {
        if !excluded.contains(&i) {
            sum += v;
            count += 1;
        }
    }
    sum / count as f64
}

/// Runs the adversary tier: for every size in the robustness grid and every
/// attack × aggregation case, one attack-free baseline run and one attacked
/// run (same clock seed, adversarial cut-aligned start, global uniform
/// clock, Definition 1 stop with the [`ADVERSARY_MAX_TICKS`] cap), checking
/// the honest-subset drift oracle on every attacked run.  The report
/// carries no wall-clock fields, so two runs at the same seed are
/// byte-identical — CI diffs the JSON.
///
/// # Errors
///
/// Propagates graph-construction, adversary-plan, simulation and journal
/// errors, and fails outright if any row violates its drift oracle (a
/// violated oracle is an `Err`, so the row never reaches the journal).
pub fn run_adversary(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(AdversaryReport, Table)> {
    let sweep = sweep::adversary_sweep(config.quick);
    let fingerprints: Vec<String> = sweep.values.iter().map(|case| case.fingerprint()).collect();
    let rows = run_trials(
        config,
        &config.executor(),
        sink,
        "ADVERSARY",
        &fingerprints,
        |index| -> BenchResult<AdversaryRow> {
            let case = &sweep.values[index];
            let instance = case
                .scenario
                .instantiate(config.seed.wrapping_add(2700 + index as u64))?;
            instance.validate_notation1()?;
            let graph = &instance.graph;
            let n = graph.node_count();
            let plan = case
                .attack
                .compile(&instance, config.seed.wrapping_add(2800 + index as u64));
            let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
            let base_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(2900 + index as u64))
                    .with_clock_model(ClockModel::GlobalUniform)
                    .with_stopping_rule(
                        StoppingRule::definition1().or_max_ticks(ADVERSARY_MAX_TICKS),
                    ),
            );

            let mut clean_sim = AsyncSimulator::new(
                graph,
                initial.clone(),
                case.aggregation.build(n),
                base_config.clone(),
            )?;
            let clean = clean_sim.run()?;

            let adversarial_nodes = plan.adversarial_nodes();
            let honest_initial_mean = honest_mean(&initial, &adversarial_nodes);
            let (initial_min, initial_max) = initial
                .as_slice()
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });

            let mut attacked_sim = AsyncSimulator::new(
                graph,
                initial,
                case.aggregation.build(n),
                base_config.with_adversary_plan(plan.clone()),
            )?;
            let attacked = attacked_sim.run()?;
            let stats = attacked.adversary_stats;

            let honest_drift = (honest_mean(&attacked.final_values, &adversarial_nodes)
                - honest_initial_mean)
                .abs();
            let drift_bound = if case.aggregation.is_mass_conserving() {
                robust::honest_drift_bound(stats.falsification_l1, n - adversarial_nodes.len())?
            } else {
                robust::hull_drift_bound(
                    initial_min,
                    initial_max,
                    stats.report_min,
                    stats.report_max,
                    honest_initial_mean,
                )?
            };
            let drift_oracle_ok = honest_drift <= drift_bound + 1e-9;
            if !drift_oracle_ok {
                return Err(format!(
                    "honest-subset drift oracle violated on {}: drift {honest_drift} > bound \
                     {drift_bound}",
                    case.name()
                )
                .into());
            }

            Ok(AdversaryRow {
                family: instance.name.clone(),
                attack: case.attack.name(),
                aggregation: case.aggregation.name().to_string(),
                n,
                edges: graph.edge_count(),
                adversaries: adversarial_nodes.len(),
                clean_ticks: clean.total_ticks,
                ticks: attacked.total_ticks,
                stop_reason: format!("{:?}", attacked.stop_reason),
                variance_ratio: attacked.variance_ratio(),
                honest_drift,
                drift_bound,
                drift_oracle_ok,
                censored_contacts: stats.censored_contacts,
                falsified_contacts: stats.falsified_contacts,
                flagged_reports: stats.flagged_reports,
            })
        },
    )?;
    let report = AdversaryReport {
        quick: config.quick,
        seed: config.seed,
        rows,
    };

    let descriptor = ExperimentId::Adversary.descriptor();
    let mut table = Table::new(
        format!("{}: {}", descriptor.id, descriptor.title),
        &[
            "family",
            "attack",
            "aggregation",
            "n",
            "adv",
            "clean ticks",
            "ticks",
            "stop",
            "drift",
            "bound",
            "oracle",
            "censored",
            "flagged",
        ],
    );
    for row in &report.rows {
        table.push_row(vec![
            row.family.clone(),
            row.attack.clone(),
            row.aggregation.clone(),
            row.n.to_string(),
            row.adversaries.to_string(),
            row.clean_ticks.to_string(),
            row.ticks.to_string(),
            row.stop_reason.clone(),
            fmt(row.honest_drift),
            fmt(row.drift_bound),
            if row.drift_oracle_ok { "ok" } else { "FAIL" }.to_string(),
            row.censored_contacts.to_string(),
            row.flagged_reports.to_string(),
        ]);
    }
    Ok((report, table))
}

// ---------------------------------------------------------------------------
// Perf: hot-loop throughput and parallel-estimator speedup.
// ---------------------------------------------------------------------------

/// One throughput row of the performance tier: a timed fault-free vanilla
/// relaxation through the devirtualized hot loop.
///
/// `wall_ms` and `ticks_per_sec` are **wall-clock fields** and vary run to
/// run; everything else is a pure function of the seed.  The CI determinism
/// gate diffs the report with the wall-clock fields (and `jobs`) stripped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfThroughputRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Edge ticks processed until the run stopped (deterministic).
    pub ticks: u64,
    /// Why the run stopped (expected: `Converged`; deterministic).
    pub stop_reason: String,
    /// Final normalized variance (deterministic).
    pub variance_ratio: f64,
    /// Wall-clock milliseconds for the run (volatile).
    pub wall_ms: f64,
    /// Event throughput in ticks per wall-clock second (volatile).
    pub ticks_per_sec: f64,
}

/// One timed pass of an estimator comparison at a fixed job count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfJobTiming {
    /// Worker count of this pass (volatile: the top of the grid depends on
    /// `--jobs` / `GOSSIP_JOBS` / the machine).
    pub jobs: usize,
    /// Wall-clock milliseconds of the full estimate (volatile).
    pub wall_ms: f64,
    /// One-job wall clock divided by this pass's wall clock (volatile).
    pub speedup: f64,
}

/// One estimator row of the performance tier: the Definition 1 estimator
/// timed end-to-end at every job count of the grid (1, 2, 4 and the
/// resolved width, deduplicated), with a bitwise comparison of every
/// parallel estimate against the one-job estimate built in — a perf
/// measurement that doubles as a determinism oracle.
///
/// Each family's instance is sized so one run costs milliseconds to tens of
/// milliseconds: the timed workload has to dwarf per-run dispatch, or the
/// "speedup" would measure pool overhead instead of the estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfEstimatorRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Independent runs per estimate.
    pub runs: usize,
    /// The estimated averaging time — identical (bitwise) at every job
    /// count, or `run_perf` errors out.
    pub averaging_time: f64,
    /// Mean per-run settling time (deterministic).
    pub mean_settling_time: f64,
    /// Runs that confirmed convergence (deterministic).
    pub confirmed_runs: usize,
    /// Wall-clock milliseconds of the 1-job estimate (volatile).
    pub wall_ms_serial: f64,
    /// Wall-clock milliseconds at the top of the job grid (volatile).
    pub wall_ms_parallel: f64,
    /// `wall_ms_serial / wall_ms_parallel` (volatile).
    pub speedup: f64,
    /// One timed pass per job count of the grid, ascending (the first entry
    /// is the one-job pass the others are compared against).
    pub timings: Vec<PerfJobTiming>,
}

/// One sharded-relaxation row of the performance tier: a single large
/// vanilla relaxation through the sharded engine at one shard versus the
/// configured shard width, with the bitwise-identity invariant checked in
/// code.
///
/// Both runs use `SimulationConfig::shards` (`Some(1)` versus `Some(k)`), so
/// they execute the *same* event schedule and merge order — only the lane
/// fan-out differs — and every deterministic field must agree bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfShardRow {
    /// Scenario name (from `Scenario::name`).
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub edges: usize,
    /// Shard width of the parallel run (volatile: `--shards`, default 4).
    pub shards: usize,
    /// Edge ticks processed until the run stopped (deterministic).
    pub ticks: u64,
    /// Why the run stopped (expected: `Converged`; deterministic).
    pub stop_reason: String,
    /// Final normalized variance (deterministic).
    pub variance_ratio: f64,
    /// Wall-clock milliseconds of the one-shard run (volatile).
    pub wall_ms_serial: f64,
    /// Wall-clock milliseconds of the `shards`-wide run (volatile).
    pub wall_ms_sharded: f64,
    /// `wall_ms_serial / wall_ms_sharded` (volatile).
    pub speedup: f64,
}

/// The performance-tier report serialized to `BENCH_perf.json`.
///
/// Volatile fields — `jobs`, `shards`, `wall_ms`, `wall_ms_serial`,
/// `wall_ms_parallel`, `wall_ms_sharded`, `ticks_per_sec`, `speedup` — are
/// the only ones that may differ between two runs at the same seed (or at
/// different `--jobs` / `--shards`); CI strips exactly those lines before
/// diffing the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Whether the quick size grid was used.
    pub quick: bool,
    /// Harness seed.
    pub seed: u64,
    /// Resolved worker count of the parallel measurements (volatile: depends
    /// on `--jobs` / `GOSSIP_JOBS` / the machine).
    pub jobs: usize,
    /// Shard width of the sharded-relaxation rows (volatile: `--shards`).
    pub shards: usize,
    /// One timed relaxation per scale family.
    pub throughput: Vec<PerfThroughputRow>,
    /// One timed estimator job-grid comparison per scale family.
    pub estimator: Vec<PerfEstimatorRow>,
    /// Timed one-shard-versus-`shards` relaxations with the bitwise oracle.
    pub sharded: Vec<PerfShardRow>,
}

// Hand-written serde impls: the vendored derive is a no-op (vendor/README.md).
impl serde::Serialize for PerfThroughputRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            ("wall_ms".to_string(), self.wall_ms.to_json_value()),
            (
                "ticks_per_sec".to_string(),
                self.ticks_per_sec.to_json_value(),
            ),
        ])
    }
}

impl serde::Serialize for PerfJobTiming {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("jobs".to_string(), self.jobs.to_json_value()),
            ("wall_ms".to_string(), self.wall_ms.to_json_value()),
            ("speedup".to_string(), self.speedup.to_json_value()),
        ])
    }
}

impl serde::Serialize for PerfEstimatorRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("runs".to_string(), self.runs.to_json_value()),
            (
                "averaging_time".to_string(),
                self.averaging_time.to_json_value(),
            ),
            (
                "mean_settling_time".to_string(),
                self.mean_settling_time.to_json_value(),
            ),
            (
                "confirmed_runs".to_string(),
                self.confirmed_runs.to_json_value(),
            ),
            (
                "wall_ms_serial".to_string(),
                self.wall_ms_serial.to_json_value(),
            ),
            (
                "wall_ms_parallel".to_string(),
                self.wall_ms_parallel.to_json_value(),
            ),
            ("speedup".to_string(), self.speedup.to_json_value()),
            ("timings".to_string(), self.timings.to_json_value()),
        ])
    }
}

impl serde::Serialize for PerfShardRow {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("family".to_string(), self.family.to_json_value()),
            ("n".to_string(), self.n.to_json_value()),
            ("edges".to_string(), self.edges.to_json_value()),
            ("shards".to_string(), self.shards.to_json_value()),
            ("ticks".to_string(), self.ticks.to_json_value()),
            ("stop_reason".to_string(), self.stop_reason.to_json_value()),
            (
                "variance_ratio".to_string(),
                self.variance_ratio.to_json_value(),
            ),
            (
                "wall_ms_serial".to_string(),
                self.wall_ms_serial.to_json_value(),
            ),
            (
                "wall_ms_sharded".to_string(),
                self.wall_ms_sharded.to_json_value(),
            ),
            ("speedup".to_string(), self.speedup.to_json_value()),
        ])
    }
}

impl TrialRow for PerfThroughputRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(PerfThroughputRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            ticks: value.field_u64("ticks")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            wall_ms: value.field_f64("wall_ms")?,
            ticks_per_sec: value.field_f64("ticks_per_sec")?,
        })
    }
}

impl TrialRow for PerfJobTiming {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(PerfJobTiming {
            jobs: value.field_usize("jobs")?,
            wall_ms: value.field_f64("wall_ms")?,
            speedup: value.field_f64("speedup")?,
        })
    }
}

impl TrialRow for PerfEstimatorRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        let timings = value
            .get("timings")?
            .as_array()?
            .iter()
            .map(PerfJobTiming::from_value)
            .collect::<Option<Vec<_>>>()?;
        Some(PerfEstimatorRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            runs: value.field_usize("runs")?,
            averaging_time: value.field_f64("averaging_time")?,
            mean_settling_time: value.field_f64("mean_settling_time")?,
            confirmed_runs: value.field_usize("confirmed_runs")?,
            wall_ms_serial: value.field_f64("wall_ms_serial")?,
            wall_ms_parallel: value.field_f64("wall_ms_parallel")?,
            speedup: value.field_f64("speedup")?,
            timings,
        })
    }
}

impl TrialRow for PerfShardRow {
    fn to_value(&self) -> Value {
        serde::Serialize::to_json_value(self)
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(PerfShardRow {
            family: value.field_str("family")?.to_string(),
            n: value.field_usize("n")?,
            edges: value.field_usize("edges")?,
            shards: value.field_usize("shards")?,
            ticks: value.field_u64("ticks")?,
            stop_reason: value.field_str("stop_reason")?.to_string(),
            variance_ratio: value.field_f64("variance_ratio")?,
            wall_ms_serial: value.field_f64("wall_ms_serial")?,
            wall_ms_sharded: value.field_f64("wall_ms_sharded")?,
            speedup: value.field_f64("speedup")?,
        })
    }
}

impl serde::Serialize for PerfReport {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            (
                "schema_version".to_string(),
                gossip_store::SCHEMA_VERSION.to_json_value(),
            ),
            ("quick".to_string(), self.quick.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            ("jobs".to_string(), self.jobs.to_json_value()),
            ("shards".to_string(), self.shards.to_json_value()),
            ("throughput".to_string(), self.throughput.to_json_value()),
            ("estimator".to_string(), self.estimator.to_json_value()),
            ("sharded".to_string(), self.sharded.to_json_value()),
        ])
    }
}

/// The estimator scenarios of the performance tier, sized per family so a
/// single run costs enough wall clock to dwarf per-run dispatch.
///
/// The naive choice — one size for all families, as the throughput section
/// uses — made the chordal ring's runs finish in ~0.1 ms while the ring of
/// cliques took ~150 ms: the fast family timed pool dispatch, the slow one
/// blew the tier's budget.  The sparse-cut families are therefore sized
/// *down* (their averaging time is Ω(n₁/|E₁₂|), so even small instances run
/// ≥10 ms) and the cut-free chordal ring *up* (it relaxes in O(log n) time).
fn perf_estimator_suite(est_n: usize) -> Vec<Scenario> {
    vec![
        Scenario::ChordalRing {
            n: (est_n * 8).max(64),
        },
        Scenario::ExpanderDumbbell {
            half: (est_n / 4).max(16),
        },
        Scenario::ExpanderBarbell {
            left: (est_n / 6).max(8),
            right: (est_n / 3).max(16),
        },
        Scenario::RingOfCliques {
            cliques: (est_n / 64).max(3),
            clique_size: 16,
        },
    ]
}

/// Runs the performance tier at explicit sizes — the test hook behind
/// [`run_perf`], which supplies the standard quick/full grid.
///
/// * **Throughput**: one fault-free vanilla relaxation per scale family at
///   `sim_n` nodes (global uniform clock, Definition 1 stop), timed
///   strictly serially.
/// * **Estimator**: per scale family (sizes from [`perf_estimator_suite`]),
///   the Definition 1 estimator (`est_runs` runs, adversarial start) timed
///   end-to-end at every job count of the grid `{1, 2, 4, resolved}`
///   (deduplicated), after one untimed warmup pass that spawns the worker
///   pool and faults the instance in.  Every parallel estimate is compared
///   **bitwise** against the one-job estimate; any divergence is an error,
///   so the PERF tier is itself a serial-vs-parallel determinism oracle.
/// * **Sharded**: large single relaxations (`shard_n` nodes) through the
///   sharded engine at one shard versus the configured width, timed, with
///   the bitwise-identity invariant checked in code.
///
/// # Errors
///
/// Propagates graph-construction, simulation and journal errors, and
/// reports any parallel or sharded result that diverges from its serial
/// twin as an error.
pub fn run_perf_sized(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
    sim_n: usize,
    est_n: usize,
    est_runs: usize,
    shard_n: usize,
) -> BenchResult<(PerfReport, Vec<Table>)> {
    let jobs = config.executor().jobs();
    // ticks/s is this tier's headline metric, so every timed section runs
    // strictly one trial at a time (a single-job executor) no matter what
    // the harness job count is: concurrent siblings would contend for cache
    // and memory bandwidth and deflate every row.  A handful of serial rows
    // cost seconds; polluted throughput numbers poison the perf trajectory.
    // Replayed trials return their wall-clock fields as committed.
    let serial = Executor::new(1);

    let suite = gossip_workloads::scenarios::sim_scale_suite(sim_n);
    let throughput_fingerprints: Vec<String> = suite
        .iter()
        .map(|scenario| format!("{}+section=throughput", scenario.fingerprint()))
        .collect();
    let throughput = run_trials(
        config,
        &serial,
        sink,
        "PERF",
        &throughput_fingerprints,
        |index| -> BenchResult<PerfThroughputRow> {
            let scenario = &suite[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(1900 + index as u64))?;
            let graph = &instance.graph;
            let n = graph.node_count();
            let initial = match scenario {
                Scenario::ChordalRing { .. } => {
                    AveragingTimeEstimator::adversarial_initial(&instance.partition)
                }
                _ => InitialCondition::Uniform { lo: -1.0, hi: 1.0 }.generate(
                    n,
                    Some(&instance.partition),
                    config.seed.wrapping_add(2000 + index as u64),
                )?,
            };
            let sim_config = config.sharded(
                SimulationConfig::new(config.seed.wrapping_add(2100 + index as u64))
                    .with_clock_model(ClockModel::GlobalUniform)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000_000))
                    .with_max_events(4_000_000_000),
            );
            let start = std::time::Instant::now();
            let mut simulator =
                AsyncSimulator::new(graph, initial, VanillaGossip::new(), sim_config)?;
            let outcome = simulator.run()?;
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            Ok(PerfThroughputRow {
                family: instance.name.clone(),
                n,
                edges: graph.edge_count(),
                ticks: outcome.total_ticks,
                stop_reason: format!("{:?}", outcome.stop_reason),
                variance_ratio: outcome.variance_ratio(),
                wall_ms,
                ticks_per_sec: outcome.total_ticks as f64 / (wall_ms / 1e3).max(1e-9),
            })
        },
    )?;

    let mut job_grid = vec![1, 2, 4, jobs];
    job_grid.sort_unstable();
    job_grid.dedup();
    let max_jobs = *job_grid.last().expect("grid is non-empty");

    let est_suite = perf_estimator_suite(est_n);
    let estimator_fingerprints: Vec<String> = est_suite
        .iter()
        .map(|scenario| {
            format!(
                "{}+section=estimator,runs={est_runs}",
                scenario.fingerprint()
            )
        })
        .collect();
    let estimator_rows = run_trials(
        config,
        &serial,
        sink,
        "PERF",
        &estimator_fingerprints,
        |index| -> BenchResult<PerfEstimatorRow> {
            let scenario = &est_suite[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(2200 + index as u64))?;
            let lower = bounds::theorem1_lower_bound(&instance.partition);
            let base = EstimatorConfig::new(config.seed.wrapping_add(2300 + index as u64))
                .with_runs(est_runs)
                .with_max_time(60.0 * lower + 500.0)
                .with_shards(config.shards);

            // Untimed warmup: spawns (and parks) the pool workers, faults the
            // instance's pages in, and fills the per-worker scratch arenas, so
            // the first timed pass doesn't pay one-time setup costs.
            AveragingTimeEstimator::new(
                base.clone()
                    .with_runs(est_runs.min(2))
                    .with_jobs(Some(max_jobs)),
            )
            .estimate(&instance.graph, &instance.partition, VanillaGossip::new)?;

            let mut baseline: Option<AveragingTimeEstimate> = None;
            let mut timings: Vec<PerfJobTiming> = Vec::with_capacity(job_grid.len());
            for &grid_jobs in &job_grid {
                let start = std::time::Instant::now();
                let estimate = AveragingTimeEstimator::new(base.clone().with_jobs(Some(grid_jobs)))
                    .estimate(&instance.graph, &instance.partition, VanillaGossip::new)?;
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                match &baseline {
                    None => baseline = Some(estimate),
                    Some(serial) => {
                        let bitwise_equal = *serial == estimate
                            && serial
                                .settling_times
                                .iter()
                                .zip(estimate.settling_times.iter())
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if !bitwise_equal {
                            return Err(format!(
                                "parallel estimate diverged from serial on {} at {} jobs: \
                             {:?} vs {:?}",
                                instance.name, grid_jobs, estimate, serial
                            )
                            .into());
                        }
                    }
                }
                let serial_wall = timings.first().map_or(wall_ms, |t| t.wall_ms);
                timings.push(PerfJobTiming {
                    jobs: grid_jobs,
                    wall_ms,
                    speedup: serial_wall / wall_ms.max(1e-9),
                });
            }

            let serial_estimate = baseline.expect("the grid starts at one job");
            let top = timings.last().expect("the grid is non-empty").clone();
            Ok(PerfEstimatorRow {
                family: instance.name.clone(),
                n: instance.graph.node_count(),
                runs: est_runs,
                averaging_time: serial_estimate.averaging_time,
                mean_settling_time: serial_estimate.mean_settling_time,
                confirmed_runs: serial_estimate.confirmed_runs,
                wall_ms_serial: timings[0].wall_ms,
                wall_ms_parallel: top.wall_ms,
                speedup: top.speedup,
                timings,
            })
        },
    )?;

    // Sharded relaxations: the same schedule at one shard versus the
    // configured width must agree bit for bit (the merge-order invariant),
    // while the wide run may only win wall clock.  The pool is already warm
    // from the estimator grid above.
    let shard_width = config.shards.unwrap_or(4).max(1);
    let shard_suite = [
        Scenario::ChordalRing { n: shard_n.max(3) },
        Scenario::ExpanderDumbbell {
            half: (shard_n / 2).max(3),
        },
    ];
    let sharded_fingerprints: Vec<String> = shard_suite
        .iter()
        .map(|scenario| {
            format!(
                "{}+section=sharded,width={shard_width}",
                scenario.fingerprint()
            )
        })
        .collect();
    let sharded_rows = run_trials(
        config,
        &serial,
        sink,
        "PERF",
        &sharded_fingerprints,
        |index| -> BenchResult<PerfShardRow> {
            let scenario = &shard_suite[index];
            let instance = scenario.instantiate(config.seed.wrapping_add(2400 + index as u64))?;
            let graph = &instance.graph;
            let n = graph.node_count();
            let initial = match scenario {
                Scenario::ChordalRing { .. } => {
                    AveragingTimeEstimator::adversarial_initial(&instance.partition)
                }
                _ => InitialCondition::Uniform { lo: -1.0, hi: 1.0 }.generate(
                    n,
                    Some(&instance.partition),
                    config.seed.wrapping_add(2500 + index as u64),
                )?,
            };
            let base = SimulationConfig::new(config.seed.wrapping_add(2600 + index as u64))
                .with_clock_model(ClockModel::GlobalUniform)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000_000))
                .with_max_events(4_000_000_000);
            let run_at = |shards: usize| -> BenchResult<(SimulationOutcome, f64)> {
                let start = std::time::Instant::now();
                let mut simulator = AsyncSimulator::new(
                    graph,
                    initial.clone(),
                    VanillaGossip::new(),
                    base.clone().with_shards(shards),
                )?;
                let outcome = simulator.run()?;
                Ok((outcome, start.elapsed().as_secs_f64() * 1e3))
            };
            let (serial_outcome, wall_ms_serial) = run_at(1)?;
            let (sharded_outcome, wall_ms_sharded) = run_at(shard_width)?;

            let bitwise_equal = serial_outcome.total_ticks == sharded_outcome.total_ticks
                && serial_outcome.stop_reason == sharded_outcome.stop_reason
                && serial_outcome.moment_refreshes == sharded_outcome.moment_refreshes
                && serial_outcome.fault_stats == sharded_outcome.fault_stats
                && serial_outcome.elapsed_time.to_bits() == sharded_outcome.elapsed_time.to_bits()
                && serial_outcome
                    .final_values
                    .as_slice()
                    .iter()
                    .zip(sharded_outcome.final_values.as_slice().iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !bitwise_equal {
                return Err(format!(
                    "sharded relaxation diverged from its one-shard twin on {} at {} shards",
                    instance.name, shard_width
                )
                .into());
            }

            Ok(PerfShardRow {
                family: instance.name.clone(),
                n,
                edges: graph.edge_count(),
                shards: shard_width,
                ticks: serial_outcome.total_ticks,
                stop_reason: format!("{:?}", serial_outcome.stop_reason),
                variance_ratio: serial_outcome.variance_ratio(),
                wall_ms_serial,
                wall_ms_sharded,
                speedup: wall_ms_serial / wall_ms_sharded.max(1e-9),
            })
        },
    )?;

    let report = PerfReport {
        quick: config.quick,
        seed: config.seed,
        jobs,
        shards: shard_width,
        throughput,
        estimator: estimator_rows,
        sharded: sharded_rows,
    };

    let descriptor = ExperimentId::Perf.descriptor();
    let mut throughput_table = Table::new(
        format!(
            "{}: {} — hot-loop throughput",
            descriptor.id, descriptor.title
        ),
        &[
            "family",
            "n",
            "|E|",
            "ticks",
            "stop",
            "var ratio",
            "wall ms",
            "ticks/s",
        ],
    );
    for row in &report.throughput {
        throughput_table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.ticks.to_string(),
            row.stop_reason.clone(),
            fmt(row.variance_ratio),
            fmt(row.wall_ms),
            fmt(row.ticks_per_sec),
        ]);
    }
    let mut estimator_table = Table::new(
        format!(
            "{}: {} — estimator across the job grid (max {} jobs)",
            descriptor.id, descriptor.title, max_jobs
        ),
        &[
            "family",
            "n",
            "runs",
            "T_av",
            "confirmed",
            "wall ms (1 job)",
            "wall ms (max)",
            "speedup by jobs",
        ],
    );
    for row in &report.estimator {
        let speedups = row
            .timings
            .iter()
            .skip(1)
            .map(|t| format!("{}:{}", t.jobs, fmt(t.speedup)))
            .collect::<Vec<_>>()
            .join(" ");
        estimator_table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.runs.to_string(),
            fmt(row.averaging_time),
            row.confirmed_runs.to_string(),
            fmt(row.wall_ms_serial),
            fmt(row.wall_ms_parallel),
            if speedups.is_empty() {
                "-".to_string()
            } else {
                speedups
            },
        ]);
    }
    let mut sharded_table = Table::new(
        format!(
            "{}: {} — sharded relaxation at 1 vs {} shards",
            descriptor.id, descriptor.title, shard_width
        ),
        &[
            "family",
            "n",
            "|E|",
            "shards",
            "ticks",
            "stop",
            "wall ms (1 shard)",
            "wall ms (k shards)",
            "speedup",
        ],
    );
    for row in &report.sharded {
        sharded_table.push_row(vec![
            row.family.clone(),
            row.n.to_string(),
            row.edges.to_string(),
            row.shards.to_string(),
            row.ticks.to_string(),
            row.stop_reason.clone(),
            fmt(row.wall_ms_serial),
            fmt(row.wall_ms_sharded),
            fmt(row.speedup),
        ]);
    }
    Ok((
        report,
        vec![throughput_table, estimator_table, sharded_table],
    ))
}

/// Runs the performance tier on the standard grid: throughput relaxations at
/// 2 048 (quick) / 16 384 (full) nodes, estimator grids derived from 256 /
/// 512 with 6 / 12 runs, sharded relaxations at 2 048 / 50 000 nodes.  See
/// [`run_perf_sized`].
///
/// # Errors
///
/// See [`run_perf_sized`].
pub fn run_perf(
    config: &HarnessConfig,
    sink: &dyn TrialSink,
) -> BenchResult<(PerfReport, Vec<Table>)> {
    if config.quick {
        run_perf_sized(config, sink, 2048, 256, 6, 2048)
    } else {
        run_perf_sized(config, sink, 16384, 512, 12, 50_000)
    }
}

// ---------------------------------------------------------------------------
// Convenience wrappers.
// ---------------------------------------------------------------------------

/// Runs every experiment through `sink` and returns the rendered tables in
/// order.
///
/// # Errors
///
/// Propagates the first failure of any experiment.
pub fn run_all(config: &HarnessConfig, sink: &dyn TrialSink) -> BenchResult<Vec<Table>> {
    let mut tables = Vec::new();
    let sweep = run_dumbbell_sweep(config, sink)?;
    tables.push(table_e1(&sweep));
    tables.push(table_e2(&sweep));
    tables.push(table_e3(&sweep));
    tables.push(run_e4(config, sink)?.1);
    tables.push(run_e5(config, sink)?.1);
    let (cut_table, c_table) = run_e6(config, sink)?;
    tables.push(cut_table);
    tables.push(c_table);
    tables.push(run_e7(config, sink)?);
    tables.push(run_e8(config, sink)?);
    tables.push(run_e9(config, sink)?);
    tables.push(run_e10(config, sink)?.1);
    tables.push(run_scale(config, sink)?.1);
    tables.push(run_sim_scale(config, sink)?.1);
    tables.push(run_mem_scale(config, sink)?.1);
    tables.push(run_robustness(config, sink)?.1);
    tables.push(run_adversary(config, sink)?.1);
    let (_, perf_tables) = run_perf(config, sink)?;
    tables.extend(perf_tables);
    Ok(tables)
}

/// Verification of experiment E4's claim, used by the integration tests.
pub fn e4_claim_holds(result: &E4Result) -> bool {
    result.max_observed_delta <= result.per_tick_bound + 1e-9
        && result.final_variance + 1e-9 >= result.variance_lower_bound
}

/// Threshold constant re-exported for integration tests comparing measured
/// variance ratios against Definition 1.
pub const THRESHOLD: f64 = DEFINITION1_THRESHOLD;

/// Partition helper re-exported for benches (avoids a direct gossip-graph
/// dependency in bench files that only need the adversarial vector).
pub fn adversarial_initial(partition: &Partition) -> NodeValues {
    AveragingTimeEstimator::adversarial_initial(partition)
}

/// Builds the scenario list used by the Criterion benches: one small instance
/// per experiment family.
pub fn bench_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::Dumbbell { half: 12 },
        Scenario::BridgedClusters {
            n1: 12,
            n2: 12,
            bridges: 2,
            p: 0.5,
        },
        Scenario::GridCorridor {
            rows: 3,
            cols: 4,
            corridor_width: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_store::NullSink;

    #[test]
    fn harness_config_modes() {
        let quick = HarnessConfig::quick();
        let full = HarnessConfig::full();
        assert!(quick.quick);
        assert!(!full.quick);
        assert!(quick.runs() < full.runs());
        assert!(quick.max_dumbbell_n() < full.max_dumbbell_n());
        assert_eq!(HarnessConfig::default(), quick);
    }

    #[test]
    fn e9_table_has_expected_shape() {
        let table = run_e9(&HarnessConfig::quick(), &NullSink).unwrap();
        assert_eq!(table.row_count(), 5);
        assert!(table.to_string().contains("Theorem 3"));
    }

    #[test]
    fn e4_runs_and_claim_holds_on_tiny_instance() {
        let mut config = HarnessConfig::quick();
        config.seed = 42;
        let (result, table) = run_e4(&config, &NullSink).unwrap();
        assert!(e4_claim_holds(&result), "E4 claim failed: {result:?}");
        assert_eq!(table.row_count(), 3);
        assert!(result.observed_cut_ticks > 0);
    }

    #[test]
    fn sim_scale_rows_converge_with_per_tick_checking() {
        // A miniature sweep through the real runner machinery: patch the
        // quick harness seed so the test is independent of the CI artifact.
        let mut config = HarnessConfig::quick();
        config.seed = 7;
        // Running the full quick grid here would slow the unit suite; spot
        // check the smallest size of each family instead via the suite
        // helper used by `run_sim_scale`.
        for scenario in gossip_workloads::scenarios::sim_scale_suite(128) {
            let instance = scenario.instantiate(config.seed).unwrap();
            let initial = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
                .generate(instance.graph.node_count(), Some(&instance.partition), 3)
                .unwrap();
            let sim_config = SimulationConfig::new(11)
                .with_clock_model(ClockModel::GlobalUniform)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(10_000_000));
            let mut sim =
                AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), sim_config)
                    .unwrap();
            let outcome = sim.run().unwrap();
            assert!(outcome.converged(), "{} did not converge", instance.name);
        }
    }

    #[test]
    fn mem_scale_rows_pass_both_oracles_on_a_mini_suite() {
        // Drive the real row machinery of `run_mem_scale` — the timed
        // flat-SoA run, the in-row legacy byte-identity oracle (every size
        // here is ≤ 50k, so it always runs), and the f32-tier oracle — on
        // the smallest suite size so the unit suite stays fast.
        let mut config = HarnessConfig::quick();
        config.seed = 7;
        let scenarios = gossip_workloads::scenarios::sim_scale_suite(128);
        let rows = mem_scale_rows(&config, &NullSink, &scenarios).unwrap();
        assert_eq!(rows.len(), scenarios.len());
        for row in &rows {
            assert_eq!(
                row.stop_reason, "Converged",
                "{} did not converge",
                row.family
            );
            assert!(
                row.legacy_checked,
                "{} skipped the identity oracle",
                row.family
            );
            assert!(row.variance_ratio < DEFINITION1_THRESHOLD);
            assert!(row.f32_mean_drift <= row.f32_mean_drift_bound);
            assert!(row.f32_variance_error <= row.f32_variance_error_bound);
            assert!(row.f32_ticks > 0);
            // Round-trip through the journal encoding.
            let value = TrialRow::to_value(row);
            assert_eq!(MemScaleRow::from_value(&value).unwrap(), *row);
        }
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // VmHWM is always present in /proc/self/status on Linux, and a test
        // process has certainly touched more than a page of memory.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 4096);
        }
    }

    #[test]
    fn robustness_runs_converge_and_conserve_mass_on_a_mini_suite() {
        // Drive the real per-case machinery of `run_robustness` on the
        // smallest suite size so the unit suite stays fast: every churn case
        // must converge under its faults, conserve the mean exactly, and
        // keep a connected-enough surviving subgraph probe-able.
        for (index, case) in gossip_workloads::churn::churn_suite(48).iter().enumerate() {
            let instance = case.scenario.instantiate(23 + index as u64).unwrap();
            let plan = case.fault.compile(&instance, 31 + index as u64);
            let initial = AveragingTimeEstimator::adversarial_initial(&instance.partition);
            let mean = initial.mean();
            let sim_config = SimulationConfig::new(41 + index as u64)
                .with_clock_model(ClockModel::GlobalUniform)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(50_000_000))
                .with_fault_plan(plan.clone());
            let mut sim =
                AsyncSimulator::new(&instance.graph, initial, VanillaGossip::new(), sim_config)
                    .unwrap();
            let outcome = sim.run().unwrap();
            assert!(
                outcome.converged(),
                "{} did not converge under faults",
                case.name()
            );
            assert!(
                (outcome.final_values.mean() - mean).abs() < 1e-9,
                "{} leaked mass",
                case.name()
            );
            assert!(
                outcome.fault_stats.total_suppressed() > 0,
                "{} suppressed nothing — the fault never engaged",
                case.name()
            );
            // The worst-surviving probe is computable for every plan.
            let mut view = gossip_graph::dynamic::DynamicGraphView::new(&instance.graph);
            for edge in plan.edges_ever_down() {
                view.kill_edge(edge).unwrap();
            }
            for node in plan.nodes_ever_paused() {
                view.kill_node(node).unwrap();
            }
            let worst = view.worst_surviving_connectivity().unwrap();
            assert!(worst.unwrap_or(0.0) >= 0.0);
        }
    }

    #[test]
    fn bench_scenarios_are_valid() {
        for scenario in bench_scenarios() {
            let instance = scenario.instantiate(1).unwrap();
            assert!(instance.partition.cut_edge_count() >= 1);
        }
    }

    #[test]
    fn e10_ablation_shows_exact_balance_best() {
        let (rows, table) = run_e10(&HarnessConfig::quick(), &NullSink).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(table.row_count(), 4);
        let exact = &rows[0];
        let literal = &rows[1];
        assert_eq!(exact.censored_runs, 0, "exact-balance runs must converge");
        // The paper-literal coefficient on a balanced dumbbell keeps swapping
        // the block means: it either fails to settle or takes far longer.
        assert!(
            literal.censored_runs > 0 || literal.averaging_time > 3.0 * exact.averaging_time,
            "literal coefficient unexpectedly competitive: {literal:?} vs {exact:?}"
        );
    }
}
