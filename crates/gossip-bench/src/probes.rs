//! Instrumented handler wrappers used by the proof-mechanics experiments.
//!
//! * [`CutTickProbe`] wraps a convex algorithm and records, at every tick of
//!   a cut edge, how much the block-one mean `y(t)` moved — the quantity
//!   Section 2 bounds by `2/n₁` per tick.
//! * [`EpochProbe`] wraps Algorithm A (or any handler) and records the
//!   variance right after every non-convex transfer of the designated edge,
//!   yielding the per-epoch increments of `log var X(T_k⁺)` that Section 3
//!   stochastically dominates with the lazy `±log n` walk.

use gossip_graph::partition::Block;
use gossip_graph::{EdgeId, Partition};
use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
use gossip_sim::values::NodeValues;

/// Records the movement of the block-one mean at every cut-edge tick.
#[derive(Debug, Clone)]
pub struct CutTickProbe<H> {
    inner: H,
    partition: Partition,
    /// Absolute change of the block-one mean at each cut-edge tick.
    pub block_mean_deltas: Vec<f64>,
    /// Times of the cut-edge ticks.
    pub cut_tick_times: Vec<f64>,
}

impl<H> CutTickProbe<H> {
    /// Wraps `inner`, probing cut edges of `partition`.
    pub fn new(inner: H, partition: Partition) -> Self {
        CutTickProbe {
            inner,
            partition,
            block_mean_deltas: Vec::new(),
            cut_tick_times: Vec::new(),
        }
    }

    /// The largest observed per-tick movement of the block-one mean.
    pub fn max_delta(&self) -> f64 {
        self.block_mean_deltas
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
    }

    /// Number of cut-edge ticks observed.
    pub fn cut_tick_count(&self) -> usize {
        self.cut_tick_times.len()
    }
}

impl<H: EdgeTickHandler> EdgeTickHandler for CutTickProbe<H> {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let crosses = self.partition.is_cut_edge(&ctx.edge);
        let before = if crosses {
            Some(values.block_mean(&self.partition, Block::One))
        } else {
            None
        };
        self.inner.on_edge_tick(values, ctx);
        if let Some(before) = before {
            let after = values.block_mean(&self.partition, Block::One);
            self.block_mean_deltas.push((after - before).abs());
            self.cut_tick_times.push(ctx.time);
        }
    }

    fn name(&self) -> &str {
        "cut-tick-probe"
    }
}

/// Records the variance right after every firing of a designated edge's
/// scheduled update (Algorithm A's epoch boundaries `T_k⁺`).
#[derive(Debug, Clone)]
pub struct EpochProbe<H> {
    inner: H,
    designated_edge: EdgeId,
    epoch_ticks: u64,
    renormalize: bool,
    /// Variance immediately after each transfer (`var X(T_k⁺)`).  When
    /// renormalization is enabled this is relative to the unit variance the
    /// state was rescaled to at the previous epoch boundary.
    pub post_transfer_variance: Vec<f64>,
    /// Variance immediately before each transfer (`var X(T_k⁻)`), on the same
    /// scale as the corresponding post-transfer entry.
    pub pre_transfer_variance: Vec<f64>,
    /// Times of the transfers.
    pub transfer_times: Vec<f64>,
}

impl<H> EpochProbe<H> {
    /// Wraps `inner`; `designated_edge` and `epoch_ticks` must match the
    /// wrapped algorithm's schedule (take them from
    /// [`gossip_core::sparse_cut::SparseCutAlgorithm::designated_edge`] and
    /// [`gossip_core::sparse_cut::SparseCutAlgorithm::epoch_ticks`]).
    pub fn new(inner: H, designated_edge: EdgeId, epoch_ticks: u64) -> Self {
        EpochProbe {
            inner,
            designated_edge,
            epoch_ticks: epoch_ticks.max(1),
            renormalize: false,
            post_transfer_variance: Vec::new(),
            pre_transfer_variance: Vec::new(),
            transfer_times: Vec::new(),
        }
    }

    /// Enables renormalization: after recording the post-transfer variance,
    /// the centered state is rescaled to unit variance.  Because every
    /// algorithm studied here is linear, this does not change the
    /// distribution of subsequent per-epoch contraction factors, but it keeps
    /// the variance away from the floating-point floor so that arbitrarily
    /// many epochs can be observed in one run.
    pub fn with_renormalization(mut self) -> Self {
        self.renormalize = true;
        self
    }

    /// Per-epoch increments of `log var X(T_k⁺)`: without renormalization the
    /// differences of consecutive log-variances, with renormalization simply
    /// the log of each post-transfer variance (the state had unit variance at
    /// the start of the epoch).  Empty if fewer than two transfers were
    /// observed.
    pub fn log_variance_increments(&self) -> Vec<f64> {
        if self.renormalize {
            self.post_transfer_variance
                .iter()
                .skip(1)
                .map(|v| v.max(f64::MIN_POSITIVE).ln())
                .collect()
        } else {
            self.post_transfer_variance
                .windows(2)
                .map(|w| (w[1].max(f64::MIN_POSITIVE)).ln() - (w[0].max(f64::MIN_POSITIVE)).ln())
                .collect()
        }
    }

    /// Number of transfers observed.
    pub fn transfer_count(&self) -> usize {
        self.transfer_times.len()
    }
}

impl<H: EdgeTickHandler> EdgeTickHandler for EpochProbe<H> {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let is_transfer = ctx.edge_id == self.designated_edge
            && ctx.edge_tick_count.is_multiple_of(self.epoch_ticks);
        if is_transfer {
            self.pre_transfer_variance.push(values.variance());
        }
        self.inner.on_edge_tick(values, ctx);
        if is_transfer {
            let variance = values.variance();
            self.post_transfer_variance.push(variance);
            self.transfer_times.push(ctx.time);
            if self.renormalize && variance > 0.0 {
                let mean = values.mean();
                let scale = 1.0 / variance.sqrt();
                for i in 0..values.len() {
                    let node = gossip_graph::NodeId(i);
                    let centered = values.get(node) - mean;
                    values.set(node, mean + centered * scale);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "epoch-probe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::convex::VanillaGossip;
    use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
    use gossip_graph::generators::dumbbell;
    use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
    use gossip_sim::stopping::StoppingRule;

    fn adversarial(partition: &Partition) -> NodeValues {
        gossip_core::averaging_time::AveragingTimeEstimator::adversarial_initial(partition)
    }

    #[test]
    fn cut_tick_probe_bounds_block_mean_movement() {
        let (graph, partition) = dumbbell(8).unwrap();
        let probe = CutTickProbe::new(VanillaGossip::new(), partition.clone());
        let config = SimulationConfig::new(3).with_stopping_rule(StoppingRule::max_time(40.0));
        let mut sim = AsyncSimulator::new(&graph, adversarial(&partition), probe, config).unwrap();
        let _ = sim.run().unwrap();
        // The probe itself is consumed by the simulator; re-run with a manual
        // loop instead to inspect it.
        let mut probe = CutTickProbe::new(VanillaGossip::new(), partition.clone());
        let mut values = adversarial(&partition);
        let cut_edge = partition.cut_edges()[0];
        let internal_edge = graph
            .edge_ids()
            .find(|&e| !partition.is_cut_edge(&graph.edge(e).unwrap()))
            .unwrap();
        for k in 1..=50u64 {
            let edge_id = if k % 5 == 0 { cut_edge } else { internal_edge };
            let ctx = EdgeTickContext {
                graph: &graph,
                edge: graph.edge(edge_id).unwrap(),
                edge_id,
                time: k as f64 * 0.1,
                edge_tick_count: k,
                global_tick_count: k,
            };
            probe.on_edge_tick(&mut values, &ctx);
        }
        assert_eq!(probe.cut_tick_count(), 10);
        assert_eq!(probe.block_mean_deltas.len(), 10);
        // Section 2 bound: each cut tick moves y(t) by at most 2/n1 = 0.25.
        assert!(probe.max_delta() <= 2.0 / 8.0 + 1e-12);
        assert_eq!(probe.name(), "cut-tick-probe");
    }

    #[test]
    fn epoch_probe_records_transfers() {
        let (graph, partition) = dumbbell(8).unwrap();
        let algo = SparseCutAlgorithm::from_partition(
            &graph,
            &partition,
            SparseCutConfig::new()
                .with_t_van_sum(1.0)
                .with_epoch_constant(1.0),
        )
        .unwrap();
        let designated = algo.designated_edge();
        let epoch_ticks = algo.epoch_ticks();
        let mut probe = EpochProbe::new(algo, designated, epoch_ticks);
        let mut values = adversarial(&partition);
        // Tick the designated edge through several epochs, with internal
        // mixing in between left out deliberately (the probe only cares about
        // the bookkeeping).
        for k in 1..=(4 * epoch_ticks) {
            let ctx = EdgeTickContext {
                graph: &graph,
                edge: graph.edge(designated).unwrap(),
                edge_id: designated,
                time: k as f64,
                edge_tick_count: k,
                global_tick_count: k,
            };
            probe.on_edge_tick(&mut values, &ctx);
        }
        assert_eq!(probe.transfer_count(), 4);
        assert_eq!(probe.pre_transfer_variance.len(), 4);
        assert_eq!(probe.post_transfer_variance.len(), 4);
        assert_eq!(probe.log_variance_increments().len(), 3);
        assert_eq!(probe.name(), "epoch-probe");
    }
}
