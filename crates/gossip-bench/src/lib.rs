//! Benchmark and experiment harness for the sparse-cut gossip reproduction.
//!
//! The paper has no numbered tables or figures, so the harness regenerates
//! one table per quantitative claim (experiments E1–E10, see `DESIGN.md` §5
//! and `gossip_workloads::experiments`).  The same runner functions back
//! three consumers:
//!
//! * the `experiments` binary (`cargo run -p gossip-bench --release --bin
//!   experiments`), which prints every table and optionally dumps JSON;
//! * the Criterion benches in `benches/`, which time representative
//!   configurations of each experiment's inner loop;
//! * the workspace integration tests, which assert the *shape* of the results
//!   (who wins, roughly by how much) on scaled-down instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod probes;
pub mod runner;
pub mod table;
pub mod trial;

pub use runner::HarnessConfig;
pub use table::Table;
