//! Per-trial plumbing between the tier runners and the run store.
//!
//! Every bench tier decomposes into *trials*: independent seeded
//! computations, one per scenario fingerprint, whose results are the rows
//! the tier's tables and `BENCH_*.json` reports render.  [`run_trials`] is
//! the one fan-out path they all share:
//!
//! 1. derive each trial's journal key from `(experiment token, fingerprint,
//!    base seed, engine fingerprint)`;
//! 2. replay every trial the [`TrialSink`] has already committed (decoding
//!    the journaled row back into the tier's row struct — a row that fails
//!    to decode is recomputed, never trusted);
//! 3. fan the harness executor out over the *missing* trials only, passing
//!    each compute closure its original index (tier seed offsets are
//!    index-derived, so replayed and computed rows mix bit-identically);
//! 4. commit each freshly computed row from inside the worker, after the
//!    tier's oracles passed (oracle failures are `Err`s, so they never
//!    reach the journal);
//! 5. merge replayed and computed rows back in input order.
//!
//! The engine fingerprint folds in everything that changes trial *outputs*:
//! quick/full mode and the legacy-vs-sharded engine.  Job counts and shard
//! widths are deliberately excluded — outputs are byte-identical across
//! them, so a journal written at `--jobs 8 --shards 4` replays under
//! `--jobs 1 --shards 1` and vice versa.
//!
//! # Supervision
//!
//! The fan-out supervises each compute so one bad trial never takes the
//! sweep down with it:
//!
//! * **Panic isolation with bounded deterministic retry.**  A panicking
//!   compute is caught on its worker and retried up to
//!   [`HarnessConfig::trial_retries`] times — same index, same derived
//!   seeds, fresh scratch (the compute rebuilds all of its state).  A trial
//!   that recovers journals normally, with the retry count recorded on the
//!   row as `supervision_retries`; a trial that keeps panicking surfaces
//!   its panic message as an ordinary error.
//! * **Deadline censoring.**  When a compute fails with the engine's
//!   [`SimError::DeadlineExceeded`] (threaded into simulation configs from
//!   [`HarnessConfig::trial_deadline`]), the trial is *censored*: a record
//!   with an explicit `deadline_censored` reason is journaled in its place
//!   and the row is dropped from the sweep's output.  The marker fails row
//!   decoding by construction, so a later resume retries the trial instead
//!   of trusting the censored stub.

use crate::runner::{BenchResult, HarnessConfig};
use gossip_exec::{describe_panic, Executor};
use gossip_sim::SimError;
use gossip_store::{trial_key, TrialRecord, TrialSink};
use serde::json::Value;
use std::panic::{self, AssertUnwindSafe};

/// The engine part of a trial key: every configuration axis that changes
/// trial outputs (and nothing that doesn't).
#[must_use]
pub fn engine_fingerprint(config: &HarnessConfig) -> String {
    format!(
        "{};engine={}",
        if config.quick { "quick" } else { "full" },
        if config.shards.is_some() {
            "sharded"
        } else {
            "legacy"
        }
    )
}

/// A tier row that can round-trip through a journaled JSON value.
///
/// `from_value` is the *decoder*: it must accept exactly what `to_value`
/// produced and return `None` on anything else (missing field, wrong type,
/// non-integral count).  [`run_trials`] treats a `None` as "recompute this
/// trial" — recomputing is always safe, misdecoding never is.
pub trait TrialRow: Sized + Send {
    /// Encodes the row as the journal's JSON value.
    fn to_value(&self) -> Value;
    /// Decodes a journaled value back into the row; `None` on any mismatch.
    fn from_value(value: &Value) -> Option<Self>;
}

/// Optional rows journal as `null` / the inner row's value (E5 skips
/// configurations whose estimator cannot certify a bound).
impl<T: TrialRow> TrialRow for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(row) => row.to_value(),
            None => Value::Null,
        }
    }

    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Plain string-list rows (the E6 sweeps journal their rendered cells).
impl TrialRow for Vec<String> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().cloned().map(Value::String).collect())
    }

    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::String(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

/// Walks an error's source chain looking for the engine's deadline signal;
/// returns the tick count the simulation had reached when it was cut off.
fn deadline_exceeded(error: &crate::runner::BenchError) -> Option<u64> {
    let mut current: Option<&(dyn std::error::Error + 'static)> = Some(&**error);
    while let Some(err) = current {
        if let Some(SimError::DeadlineExceeded { ticks }) = err.downcast_ref::<SimError>() {
            return Some(*ticks);
        }
        current = err.source();
    }
    None
}

/// The journal row written in place of a deadline-censored trial.  Shaped
/// so no tier's [`TrialRow::from_value`] decoder accepts it: a resume sees
/// the trial as "committed but undecodable" and recomputes it.
fn censored_marker(reason: &str) -> Value {
    Value::Object(vec![
        ("deadline_censored".to_string(), Value::Bool(true)),
        ("reason".to_string(), Value::String(reason.to_string())),
    ])
}

/// Stamps the retry count onto a journaled row so a recovered-after-panic
/// trial is auditable from the journal alone.  Only object rows can carry
/// the extra field; decoders look fields up by name, so it never disturbs
/// replay.
fn stamp_retries(mut value: Value, retries: u32) -> Value {
    if let Value::Object(fields) = &mut value {
        fields.push((
            "supervision_retries".to_string(),
            Value::Number(f64::from(retries)),
        ));
    }
    value
}

/// Replays committed trials, computes and commits the missing ones over
/// `executor`, and returns all surviving rows in input order.
///
/// `compute` receives the trial's *original* index into `fingerprints`, so
/// index-derived seed offsets are preserved regardless of which subset is
/// being computed.
///
/// Each compute runs under supervision (see the module docs): panics are
/// retried up to [`HarnessConfig::trial_retries`] times with fresh scratch
/// and the same seeds, and a [`SimError::DeadlineExceeded`] failure
/// journals an explicit `deadline_censored` marker and drops the trial
/// from the returned rows instead of failing the sweep.
pub fn run_trials<T: TrialRow>(
    config: &HarnessConfig,
    executor: &Executor,
    sink: &dyn TrialSink,
    experiment: &str,
    fingerprints: &[String],
    compute: impl Fn(usize) -> BenchResult<T> + Sync,
) -> BenchResult<Vec<T>> {
    let engine = engine_fingerprint(config);
    let keys: Vec<_> = fingerprints
        .iter()
        .map(|fp| trial_key(experiment, fp, config.seed, &engine))
        .collect();

    let mut slots: Vec<Option<T>> = Vec::with_capacity(fingerprints.len());
    let mut missing: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let replayed = sink
            .replay(experiment, *key)
            .and_then(|value| T::from_value(&value));
        match replayed {
            Some(row) => slots.push(Some(row)),
            None => {
                slots.push(None);
                missing.push(i);
            }
        }
    }

    if !missing.is_empty() {
        let computed = executor.try_map_indexed(missing.len(), |slot| {
            let i = missing[slot];

            // Panic isolation: a panicking compute is retried with fresh
            // scratch (the closure rebuilds all state from the index) and
            // identical derived seeds, up to the configured bound.
            let mut retries = 0u32;
            let outcome = loop {
                match panic::catch_unwind(AssertUnwindSafe(|| compute(i))) {
                    Ok(outcome) => break outcome,
                    Err(payload) => {
                        let message = describe_panic(&*payload);
                        if retries >= config.trial_retries {
                            return Err(format!(
                                "trial {} panicked after {retries} retries: {message}",
                                fingerprints[i]
                            )
                            .into());
                        }
                        retries += 1;
                        eprintln!(
                            "run store[{experiment}]: trial {} panicked ({message}); \
                             retry {retries}/{} with fresh scratch",
                            fingerprints[i], config.trial_retries
                        );
                    }
                }
            };

            let row = match outcome {
                Ok(row) => row,
                Err(error) => {
                    // Deadline censoring: journal an explicit marker in the
                    // trial's slot so the sweep completes and a later
                    // resume recomputes (and may re-censor) this trial.
                    let Some(ticks) = deadline_exceeded(&error) else {
                        return Err(error);
                    };
                    let reason = format!("wall-clock deadline exceeded after {ticks} ticks");
                    sink.commit(TrialRecord {
                        key: keys[i],
                        experiment: experiment.to_string(),
                        fingerprint: fingerprints[i].clone(),
                        seed: config.seed,
                        row: censored_marker(&reason),
                    })?;
                    eprintln!(
                        "run store[{experiment}]: trial {} deadline_censored ({reason})",
                        fingerprints[i]
                    );
                    return Ok(None);
                }
            };

            let mut value = row.to_value();
            if retries > 0 {
                value = stamp_retries(value, retries);
            }
            sink.commit(TrialRecord {
                key: keys[i],
                experiment: experiment.to_string(),
                fingerprint: fingerprints[i].clone(),
                seed: config.seed,
                row: value,
            })?;
            Ok::<Option<T>, crate::runner::BenchError>(Some(row))
        })?;
        for (slot, row) in missing.into_iter().zip(computed) {
            slots[slot] = row;
        }
    }

    // Censored slots are `None` here and fall out of the sweep's rows.
    Ok(slots.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_store::{NullSink, RunStore, StoreSink};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct Row {
        index: usize,
    }

    impl TrialRow for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![(
                "index".to_string(),
                Value::Number(self.index as f64),
            )])
        }

        fn from_value(value: &Value) -> Option<Self> {
            use gossip_store::ValueExt;
            Some(Row {
                index: value.field_usize("index")?,
            })
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("gossip-trial-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn fingerprints(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("probe(i={i})")).collect()
    }

    #[test]
    fn engine_fingerprint_tracks_mode_and_engine() {
        let mut config = HarnessConfig::quick();
        assert_eq!(engine_fingerprint(&config), "quick;engine=legacy");
        config.quick = false;
        config.shards = Some(4);
        assert_eq!(engine_fingerprint(&config), "full;engine=sharded");
        // Job counts and shard widths never change outputs, so they never
        // change the fingerprint.
        let narrower = HarnessConfig {
            jobs: Some(1),
            shards: Some(1),
            ..config
        };
        assert_eq!(engine_fingerprint(&narrower), engine_fingerprint(&config));
    }

    #[test]
    fn null_sink_computes_every_trial() {
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &NullSink, "E8", &fingerprints(4), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(rows, (0..4).map(|index| Row { index }).collect::<Vec<_>>());
    }

    #[test]
    fn store_sink_replays_committed_trials_at_original_indexes() {
        let dir = temp_dir("replay");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);

        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        run_trials(&config, &executor, &sink, "E8", &fingerprints(4), |i| {
            Ok(Row { index: i })
        })
        .unwrap();
        let store = sink.into_store();

        // Resume: drop two committed trials by asking for a superset, and
        // check only the genuinely missing indexes are recomputed.
        drop(store);
        let sink = StoreSink::new(RunStore::open(&dir, true).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(6), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(rows, (0..6).map(|index| Row { index }).collect::<Vec<_>>());
        let stats = sink.stats();
        assert_eq!(stats["E8"].replayed, 4);
        assert_eq!(stats["E8"].computed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oracle_failures_never_commit() {
        let dir = temp_dir("oracle");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        let result = run_trials(&config, &executor, &sink, "E8", &fingerprints(3), |i| {
            if i == 1 {
                Err("oracle violated".into())
            } else {
                Ok(Row { index: i })
            }
        });
        assert!(result.is_err());
        let store = sink.into_store();
        // The failing trial reached no journal; trial 0 may have committed
        // before the failure, trial 2's fate depends on executor order, but
        // index 1 must be absent.
        let engine = engine_fingerprint(&config);
        let bad_key = trial_key("E8", "probe(i=1)", config.seed, &engine);
        assert!(store.replay(bad_key).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_trial_is_retried_and_the_retry_count_journaled() {
        let dir = temp_dir("retry");
        let config = HarnessConfig::quick();
        assert_eq!(config.trial_retries, 1);
        let executor = Executor::new(1);
        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(2), |i| {
            let call = calls.fetch_add(1, Ordering::Relaxed);
            // Trial 1 panics on its first attempt only; the retry runs the
            // same index with fresh scratch and succeeds.
            if i == 1 && call == 1 {
                panic!("scratch corrupted");
            }
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(rows, (0..2).map(|index| Row { index }).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        // The recovered trial's journal row carries the retry count; the
        // clean trial's row does not.
        let store = sink.into_store();
        let engine = engine_fingerprint(&config);
        let retried = store
            .replay(trial_key("E8", "probe(i=1)", config.seed, &engine))
            .unwrap();
        match &retried {
            Value::Object(fields) => assert!(
                fields
                    .iter()
                    .any(|(name, value)| name == "supervision_retries"
                        && matches!(value, Value::Number(n) if *n == 1.0)),
                "expected supervision_retries=1 on {retried:?}"
            ),
            other => panic!("expected object row, got {other:?}"),
        }
        // The stamped row still decodes (decoders ignore extra fields).
        assert_eq!(Row::from_value(retried), Some(Row { index: 1 }));
        let clean = store
            .replay(trial_key("E8", "probe(i=0)", config.seed, &engine))
            .unwrap();
        match &clean {
            Value::Object(fields) => {
                assert!(fields.iter().all(|(name, _)| name != "supervision_retries"));
            }
            other => panic!("expected object row, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistently_panicking_trial_surfaces_as_an_error() {
        let config = HarnessConfig {
            trial_retries: 2,
            ..HarnessConfig::quick()
        };
        let executor = Executor::new(1);
        let calls = AtomicUsize::new(0);
        let result = run_trials(
            &config,
            &executor,
            &NullSink,
            "E8",
            &fingerprints(1),
            |_| -> BenchResult<Row> {
                calls.fetch_add(1, Ordering::Relaxed);
                panic!("always broken");
            },
        );
        // One initial attempt plus two retries, then a plain error carrying
        // the panic message — never a hung or aborted sweep.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let message = result.unwrap_err().to_string();
        assert!(
            message.contains("panicked after 2 retries") && message.contains("always broken"),
            "unexpected error: {message}"
        );
    }

    #[test]
    fn deadline_exceeded_trials_are_censored_then_recomputed_on_resume() {
        let dir = temp_dir("censor");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let engine = engine_fingerprint(&config);

        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(3), |i| {
            if i == 1 {
                Err(Box::new(gossip_sim::SimError::DeadlineExceeded {
                    ticks: 65_536,
                }))
            } else {
                Ok(Row { index: i })
            }
        })
        .unwrap();
        // The censored trial is dropped from the output; the sweep itself
        // succeeds.
        assert_eq!(rows, vec![Row { index: 0 }, Row { index: 2 }]);

        // Its journal slot holds the explicit marker, which no decoder
        // accepts.
        let store = sink.into_store();
        let marker = store
            .replay(trial_key("E8", "probe(i=1)", config.seed, &engine))
            .unwrap();
        match &marker {
            Value::Object(fields) => {
                assert!(fields
                    .iter()
                    .any(|(name, value)| name == "deadline_censored"
                        && matches!(value, Value::Bool(true))));
                assert!(fields.iter().any(|(name, value)| name == "reason"
                    && matches!(value, Value::String(s) if s.contains("65536 ticks"))));
            }
            other => panic!("expected censored marker, got {other:?}"),
        }
        assert_eq!(Row::from_value(marker), None);
        drop(store);

        // A resume replays the two real rows and recomputes only the
        // censored trial — this time without a deadline in the way.
        let sink = StoreSink::new(RunStore::open(&dir, true).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(3), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(rows, (0..3).map(|index| Row { index }).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecodable_rows_are_recomputed() {
        let dir = temp_dir("undecodable");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let engine = engine_fingerprint(&config);

        // Commit a row whose shape the decoder rejects.
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(TrialRecord {
                key: trial_key("E8", "probe(i=0)", config.seed, &engine),
                experiment: "E8".to_string(),
                fingerprint: "probe(i=0)".to_string(),
                seed: config.seed,
                row: Value::Object(vec![("wrong".to_string(), Value::Bool(true))]),
            })
            .unwrap();
        drop(store);

        let sink = StoreSink::new(RunStore::open(&dir, true).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(1), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(rows, vec![Row { index: 0 }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
