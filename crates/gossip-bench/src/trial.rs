//! Per-trial plumbing between the tier runners and the run store.
//!
//! Every bench tier decomposes into *trials*: independent seeded
//! computations, one per scenario fingerprint, whose results are the rows
//! the tier's tables and `BENCH_*.json` reports render.  [`run_trials`] is
//! the one fan-out path they all share:
//!
//! 1. derive each trial's journal key from `(experiment token, fingerprint,
//!    base seed, engine fingerprint)`;
//! 2. replay every trial the [`TrialSink`] has already committed (decoding
//!    the journaled row back into the tier's row struct — a row that fails
//!    to decode is recomputed, never trusted);
//! 3. fan the harness executor out over the *missing* trials only, passing
//!    each compute closure its original index (tier seed offsets are
//!    index-derived, so replayed and computed rows mix bit-identically);
//! 4. commit each freshly computed row from inside the worker, after the
//!    tier's oracles passed (oracle failures are `Err`s, so they never
//!    reach the journal);
//! 5. merge replayed and computed rows back in input order.
//!
//! The engine fingerprint folds in everything that changes trial *outputs*:
//! quick/full mode and the legacy-vs-sharded engine.  Job counts and shard
//! widths are deliberately excluded — outputs are byte-identical across
//! them, so a journal written at `--jobs 8 --shards 4` replays under
//! `--jobs 1 --shards 1` and vice versa.

use crate::runner::{BenchResult, HarnessConfig};
use gossip_exec::Executor;
use gossip_store::{trial_key, TrialRecord, TrialSink};
use serde::json::Value;

/// The engine part of a trial key: every configuration axis that changes
/// trial outputs (and nothing that doesn't).
#[must_use]
pub fn engine_fingerprint(config: &HarnessConfig) -> String {
    format!(
        "{};engine={}",
        if config.quick { "quick" } else { "full" },
        if config.shards.is_some() {
            "sharded"
        } else {
            "legacy"
        }
    )
}

/// A tier row that can round-trip through a journaled JSON value.
///
/// `from_value` is the *decoder*: it must accept exactly what `to_value`
/// produced and return `None` on anything else (missing field, wrong type,
/// non-integral count).  [`run_trials`] treats a `None` as "recompute this
/// trial" — recomputing is always safe, misdecoding never is.
pub trait TrialRow: Sized + Send {
    /// Encodes the row as the journal's JSON value.
    fn to_value(&self) -> Value;
    /// Decodes a journaled value back into the row; `None` on any mismatch.
    fn from_value(value: &Value) -> Option<Self>;
}

/// Optional rows journal as `null` / the inner row's value (E5 skips
/// configurations whose estimator cannot certify a bound).
impl<T: TrialRow> TrialRow for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(row) => row.to_value(),
            None => Value::Null,
        }
    }

    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Plain string-list rows (the E6 sweeps journal their rendered cells).
impl TrialRow for Vec<String> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().cloned().map(Value::String).collect())
    }

    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::String(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

/// Replays committed trials, computes and commits the missing ones over
/// `executor`, and returns all rows in input order.
///
/// `compute` receives the trial's *original* index into `fingerprints`, so
/// index-derived seed offsets are preserved regardless of which subset is
/// being computed.
pub fn run_trials<T: TrialRow>(
    config: &HarnessConfig,
    executor: &Executor,
    sink: &dyn TrialSink,
    experiment: &str,
    fingerprints: &[String],
    compute: impl Fn(usize) -> BenchResult<T> + Sync,
) -> BenchResult<Vec<T>> {
    let engine = engine_fingerprint(config);
    let keys: Vec<_> = fingerprints
        .iter()
        .map(|fp| trial_key(experiment, fp, config.seed, &engine))
        .collect();

    let mut slots: Vec<Option<T>> = Vec::with_capacity(fingerprints.len());
    let mut missing: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let replayed = sink
            .replay(experiment, *key)
            .and_then(|value| T::from_value(&value));
        match replayed {
            Some(row) => slots.push(Some(row)),
            None => {
                slots.push(None);
                missing.push(i);
            }
        }
    }

    if !missing.is_empty() {
        let computed = executor.try_map_indexed(missing.len(), |slot| {
            let i = missing[slot];
            let row = compute(i)?;
            sink.commit(TrialRecord {
                key: keys[i],
                experiment: experiment.to_string(),
                fingerprint: fingerprints[i].clone(),
                seed: config.seed,
                row: row.to_value(),
            })?;
            Ok::<T, crate::runner::BenchError>(row)
        })?;
        for (slot, row) in missing.into_iter().zip(computed) {
            slots[slot] = Some(row);
        }
    }

    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every trial slot is replayed or computed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_store::{NullSink, RunStore, StoreSink};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct Row {
        index: usize,
    }

    impl TrialRow for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![(
                "index".to_string(),
                Value::Number(self.index as f64),
            )])
        }

        fn from_value(value: &Value) -> Option<Self> {
            use gossip_store::ValueExt;
            Some(Row {
                index: value.field_usize("index")?,
            })
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("gossip-trial-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn fingerprints(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("probe(i={i})")).collect()
    }

    #[test]
    fn engine_fingerprint_tracks_mode_and_engine() {
        let mut config = HarnessConfig::quick();
        assert_eq!(engine_fingerprint(&config), "quick;engine=legacy");
        config.quick = false;
        config.shards = Some(4);
        assert_eq!(engine_fingerprint(&config), "full;engine=sharded");
        // Job counts and shard widths never change outputs, so they never
        // change the fingerprint.
        let narrower = HarnessConfig {
            jobs: Some(1),
            shards: Some(1),
            ..config
        };
        assert_eq!(engine_fingerprint(&narrower), engine_fingerprint(&config));
    }

    #[test]
    fn null_sink_computes_every_trial() {
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &NullSink, "E8", &fingerprints(4), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(rows, (0..4).map(|index| Row { index }).collect::<Vec<_>>());
    }

    #[test]
    fn store_sink_replays_committed_trials_at_original_indexes() {
        let dir = temp_dir("replay");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);

        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        run_trials(&config, &executor, &sink, "E8", &fingerprints(4), |i| {
            Ok(Row { index: i })
        })
        .unwrap();
        let store = sink.into_store();

        // Resume: drop two committed trials by asking for a superset, and
        // check only the genuinely missing indexes are recomputed.
        drop(store);
        let sink = StoreSink::new(RunStore::open(&dir, true).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(6), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(rows, (0..6).map(|index| Row { index }).collect::<Vec<_>>());
        let stats = sink.stats();
        assert_eq!(stats["E8"].replayed, 4);
        assert_eq!(stats["E8"].computed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oracle_failures_never_commit() {
        let dir = temp_dir("oracle");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        let result = run_trials(&config, &executor, &sink, "E8", &fingerprints(3), |i| {
            if i == 1 {
                Err("oracle violated".into())
            } else {
                Ok(Row { index: i })
            }
        });
        assert!(result.is_err());
        let store = sink.into_store();
        // The failing trial reached no journal; trial 0 may have committed
        // before the failure, trial 2's fate depends on executor order, but
        // index 1 must be absent.
        let engine = engine_fingerprint(&config);
        let bad_key = trial_key("E8", "probe(i=1)", config.seed, &engine);
        assert!(store.replay(bad_key).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecodable_rows_are_recomputed() {
        let dir = temp_dir("undecodable");
        let config = HarnessConfig::quick();
        let executor = Executor::new(1);
        let engine = engine_fingerprint(&config);

        // Commit a row whose shape the decoder rejects.
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(TrialRecord {
                key: trial_key("E8", "probe(i=0)", config.seed, &engine),
                experiment: "E8".to_string(),
                fingerprint: "probe(i=0)".to_string(),
                seed: config.seed,
                row: Value::Object(vec![("wrong".to_string(), Value::Bool(true))]),
            })
            .unwrap();
        drop(store);

        let sink = StoreSink::new(RunStore::open(&dir, true).unwrap());
        let calls = AtomicUsize::new(0);
        let rows = run_trials(&config, &executor, &sink, "E8", &fingerprints(1), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(Row { index: i })
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(rows, vec![Row { index: 0 }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
