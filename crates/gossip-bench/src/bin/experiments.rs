//! Experiment harness binary.
//!
//! Regenerates every experiment table of the reproduction (E1–E10, see
//! `DESIGN.md` §5 and `EXPERIMENTS.md`) plus the SCALE, SIM_SCALE,
//! MEM_SCALE, ROBUSTNESS, PERF and ADVERSARY tiers.
//!
//! Usage:
//!
//! ```text
//! cargo run -p gossip-bench --release --bin experiments             # full run
//! cargo run -p gossip-bench --release --bin experiments -- --quick  # reduced sizes
//! cargo run -p gossip-bench --release --bin experiments -- --only E1 E3
//! cargo run -p gossip-bench --release --bin experiments -- --json results.json
//! cargo run -p gossip-bench --release --bin experiments -- --only PERF --jobs 4
//! cargo run -p gossip-bench --release --bin experiments -- \
//!     --only SIM_SCALE --store-dir runs/quick --resume
//! cargo run -p gossip-bench --release --bin experiments -- \
//!     --store-dir runs/quick --store-summary
//! ```
//!
//! Every tier is one row of the [`TIERS`] registry: its `--only` token, its
//! report flag (`--scale-json`, `--perf-json`, …) and its default report
//! path all come from that one table, so adding a tier means adding a row
//! and a match arm — not another hand-rolled flag parser.  `--only` tokens
//! are validated against the experiment index (`ExperimentId::cli_token`):
//! an unknown token prints the valid set and exits with status 2 instead of
//! silently running nothing.
//!
//! `--jobs <n>` bounds the deterministic run executor that fans trials out
//! over worker threads; every table and report is byte-identical at any
//! `--jobs` value (wall-clock columns aside).  `--shards <k>` opts every
//! kernel-capable simulation into the sharded engine — a *different
//! deterministic mode* from the default legacy loop, with bit-identical
//! outputs at every shard count.
//!
//! `--store-dir <dir>` journals every computed trial into an append-only
//! run store (`<dir>/<tier>.jsonl`, one record per committed trial; see
//! `gossip-store`).  Without `--resume` the run is *fresh*: each tier's
//! journal is reset the first time the tier commits.  With `--resume` the
//! store is loaded first and every already-committed trial is **skipped**
//! — its row replays bit-identically from the journal — so an interrupted
//! sweep continues where it stopped and renders the same bytes an
//! uninterrupted run would have (wall-clock fields replay as committed).
//! A truncated final record (a crash mid-append) is detected and dropped
//! on load; the trial is simply recomputed.  Per-tier `replayed/computed`
//! counts and the grouped store summary print to stderr after the run.
//! `--store-summary` loads the store, prints the per-tier/per-family
//! analysis view, and exits without running anything.
//!
//! `--checkpoint-every-ticks <n>` turns on crash-consistent *mid-run*
//! checkpoints for the MEM_SCALE tier's timed flat run: every `n` ticks an
//! engine checkpoint is committed to `<dir>/mem_scale.ckpt.jsonl`, and a
//! `--resume` restores the newest one instead of recomputing the trial
//! from tick 0 (restored runs are bit-identical to uninterrupted ones).
//! `--trial-deadline-secs <n>` puts a wall-clock deadline on every
//! simulation trial; a trial that exceeds it is journaled as
//! `deadline_censored` and dropped from the sweep instead of hanging it.
//! `--trial-retries <n>` bounds the deterministic retry of a panicking
//! trial (default 1; recovered trials journal `supervision_retries`).
//!
//! The SCALE, SIM_SCALE, MEM_SCALE, ROBUSTNESS, PERF and ADVERSARY tiers
//! additionally write their structured reports to `BENCH_*.json` (paths
//! overridable via the registry's flags).  Every report carries a
//! `schema_version` field — the shared `gossip_store::SCHEMA_VERSION`
//! constant that also stamps every journal record.  The robustness and
//! adversary reports carry no wall-clock fields, so CI diffs them
//! byte-for-byte; the perf report is diffed after stripping the wall-clock
//! and `jobs` fields, the mem-scale report after stripping `wall_ms`,
//! `ticks_per_sec` and `peak_rss_bytes`.

use gossip_bench::runner::{self, BenchResult, HarnessConfig};
use gossip_bench::Table;
use gossip_store::{NullSink, RunStore, StoreSink, StoreSummary, TrialSink};
use gossip_workloads::ExperimentId;
use std::collections::{BTreeMap, BTreeSet};

/// One bench tier as the CLI sees it: the `--only` token, the report-path
/// override flag (if the tier writes a `BENCH_*.json` report), and the
/// default report path.
struct TierSpec {
    token: &'static str,
    json_flag: Option<&'static str>,
    default_json: Option<&'static str>,
}

/// The tier registry, in execution order.  One row per [`ExperimentId`]
/// (covered exactly — see the registry test).
const TIERS: &[TierSpec] = &[
    TierSpec {
        token: "E1",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E2",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E3",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E4",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E5",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E6",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E7",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E8",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E9",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "E10",
        json_flag: None,
        default_json: None,
    },
    TierSpec {
        token: "SCALE",
        json_flag: Some("--scale-json"),
        default_json: Some("BENCH_scale.json"),
    },
    TierSpec {
        token: "SIM_SCALE",
        json_flag: Some("--sim-scale-json"),
        default_json: Some("BENCH_sim_scale.json"),
    },
    TierSpec {
        token: "MEM_SCALE",
        json_flag: Some("--mem-scale-json"),
        default_json: Some("BENCH_mem_scale.json"),
    },
    TierSpec {
        token: "ROBUSTNESS",
        json_flag: Some("--robustness-json"),
        default_json: Some("BENCH_robustness.json"),
    },
    TierSpec {
        token: "PERF",
        json_flag: Some("--perf-json"),
        default_json: Some("BENCH_perf.json"),
    },
    TierSpec {
        token: "ADVERSARY",
        json_flag: Some("--adversary-json"),
        default_json: Some("BENCH_adversary.json"),
    },
];

/// One harness run: the dumbbell sweep backing E1–E3 is computed once and
/// shared, so `--only E1 E2 E3` costs one sweep, not three.
struct Session<'a> {
    config: &'a HarnessConfig,
    sink: &'a dyn TrialSink,
    dumbbell: Option<runner::DumbbellSweep>,
}

impl<'a> Session<'a> {
    fn new(config: &'a HarnessConfig, sink: &'a dyn TrialSink) -> Self {
        Session {
            config,
            sink,
            dumbbell: None,
        }
    }

    fn dumbbell(&mut self) -> BenchResult<&runner::DumbbellSweep> {
        if self.dumbbell.is_none() {
            self.dumbbell = Some(runner::run_dumbbell_sweep(self.config, self.sink)?);
        }
        Ok(self.dumbbell.as_ref().expect("sweep memoized above"))
    }

    /// Runs one tier, returning its tables and (for report-bearing tiers)
    /// the pretty-printed JSON report.
    fn run(&mut self, token: &str) -> BenchResult<(Vec<Table>, Option<String>)> {
        fn pretty<T: serde::Serialize>(token: &str, report: &T) -> BenchResult<String> {
            serde_json::to_string_pretty(report)
                .map_err(|error| format!("failed to serialize {token} report: {error}").into())
        }
        Ok(match token {
            "E1" => (vec![runner::table_e1(self.dumbbell()?)], None),
            "E2" => (vec![runner::table_e2(self.dumbbell()?)], None),
            "E3" => (vec![runner::table_e3(self.dumbbell()?)], None),
            "E4" => (vec![runner::run_e4(self.config, self.sink)?.1], None),
            "E5" => (vec![runner::run_e5(self.config, self.sink)?.1], None),
            "E6" => {
                let (cut_table, c_table) = runner::run_e6(self.config, self.sink)?;
                (vec![cut_table, c_table], None)
            }
            "E7" => (vec![runner::run_e7(self.config, self.sink)?], None),
            "E8" => (vec![runner::run_e8(self.config, self.sink)?], None),
            "E9" => (vec![runner::run_e9(self.config, self.sink)?], None),
            "E10" => (vec![runner::run_e10(self.config, self.sink)?.1], None),
            "SCALE" => {
                let (report, table) = runner::run_scale(self.config, self.sink)?;
                (vec![table], Some(pretty(token, &report)?))
            }
            "SIM_SCALE" => {
                let (report, table) = runner::run_sim_scale(self.config, self.sink)?;
                (vec![table], Some(pretty(token, &report)?))
            }
            "MEM_SCALE" => {
                let (report, table) = runner::run_mem_scale(self.config, self.sink)?;
                (vec![table], Some(pretty(token, &report)?))
            }
            "ROBUSTNESS" => {
                let (report, table) = runner::run_robustness(self.config, self.sink)?;
                (vec![table], Some(pretty(token, &report)?))
            }
            "PERF" => {
                let (report, tables) = runner::run_perf(self.config, self.sink)?;
                (tables, Some(pretty(token, &report)?))
            }
            "ADVERSARY" => {
                let (report, table) = runner::run_adversary(self.config, self.sink)?;
                (vec![table], Some(pretty(token, &report)?))
            }
            other => return Err(format!("tier {other} is not in the registry").into()),
        })
    }
}

fn print_usage() {
    eprintln!(
        "usage: experiments [--quick] [--seed <u64>] [--jobs <n>] [--shards <k>] \
         [--only E1 E2 ... SCALE SIM_SCALE MEM_SCALE ROBUSTNESS PERF ADVERSARY] [--json <path>] \
         [--store-dir <dir>] [--resume] [--store-summary] \
         [--checkpoint-every-ticks <n>] [--trial-deadline-secs <n>] [--trial-retries <n>] \
         [--scale-json <path>] [--sim-scale-json <path>] [--mem-scale-json <path>] \
         [--robustness-json <path>] [--perf-json <path>] [--adversary-json <path>]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = HarnessConfig::full();
    let mut only: BTreeSet<String> = BTreeSet::new();
    let mut json_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut store_summary = false;
    let mut report_paths: BTreeMap<&'static str, String> = TIERS
        .iter()
        .filter_map(|tier| Some((tier.token, tier.default_json?.to_string())))
        .collect();
    let valid_tokens: BTreeSet<&'static str> = ExperimentId::all()
        .iter()
        .map(|id| id.cli_token())
        .collect();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        // Report-path flags come straight from the registry.
        if let Some(tier) = TIERS.iter().find(|tier| tier.json_flag == Some(arg)) {
            i += 1;
            match args.get(i) {
                Some(path) => {
                    report_paths.insert(tier.token, path.clone());
                }
                None => {
                    eprintln!("{arg} requires a path");
                    print_usage();
                    std::process::exit(2);
                }
            }
            i += 1;
            continue;
        }
        match arg {
            "--quick" => config.quick = true,
            "--resume" => resume = true,
            "--store-summary" => store_summary = true,
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => config.seed = seed,
                    None => {
                        eprintln!("--seed requires an unsigned integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(jobs) if jobs >= 1 => config.jobs = Some(jobs),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(shards) if shards >= 1 => config.shards = Some(shards),
                    _ => {
                        eprintln!("--shards requires a positive integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--checkpoint-every-ticks" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ticks) => config.checkpoint_every_ticks = ticks,
                    None => {
                        eprintln!(
                            "--checkpoint-every-ticks requires an unsigned integer (0 disables)"
                        );
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--trial-deadline-secs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(secs) if secs >= 1 => {
                        config.trial_deadline = Some(std::time::Duration::from_secs(secs));
                    }
                    _ => {
                        eprintln!("--trial-deadline-secs requires a positive integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--trial-retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(retries) => config.trial_retries = retries,
                    None => {
                        eprintln!("--trial-retries requires an unsigned integer (0 disables)");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    let token = args[i].to_uppercase();
                    if !valid_tokens.contains(token.as_str()) {
                        eprintln!(
                            "unknown experiment '{}' for --only; valid tokens: {}",
                            args[i],
                            valid_tokens.iter().copied().collect::<Vec<_>>().join(" ")
                        );
                        print_usage();
                        std::process::exit(2);
                    }
                    only.insert(token);
                    i += 1;
                }
                continue;
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = Some(path.clone()),
                    None => {
                        eprintln!("--json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--store-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => store_dir = Some(dir.clone()),
                    None => {
                        eprintln!("--store-dir requires a directory path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if (resume || store_summary) && store_dir.is_none() {
        eprintln!("--resume and --store-summary require --store-dir");
        print_usage();
        std::process::exit(2);
    }

    // Open the run store (resume mode also for --store-summary: a summary
    // must never reset journals).
    let store_sink: Option<StoreSink> = match &store_dir {
        Some(dir) => match RunStore::open(std::path::Path::new(dir), resume || store_summary) {
            Ok(store) => {
                for note in store.notes() {
                    eprintln!("run store: {note}");
                }
                Some(StoreSink::new(store))
            }
            Err(error) => {
                eprintln!("failed to open run store at {dir}: {error}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    if store_summary {
        let sink = store_sink.expect("checked above");
        let store = sink.into_store();
        for line in StoreSummary::from_store(&store).render_lines() {
            println!("{line}");
        }
        return;
    }

    let sink: &dyn TrialSink = match &store_sink {
        Some(sink) => sink,
        None => &NullSink,
    };
    let wanted = |token: &str| only.is_empty() || only.contains(token);
    let mut session = Session::new(&config, sink);
    let mut tables: Vec<Table> = Vec::new();
    let mut reports: Vec<(&'static str, String)> = Vec::new();

    for tier in TIERS {
        if !wanted(tier.token) {
            continue;
        }
        match session.run(tier.token) {
            Ok((tier_tables, report)) => {
                tables.extend(tier_tables);
                if let Some(report) = report {
                    reports.push((tier.token, report));
                }
            }
            Err(error) => {
                eprintln!("experiment harness failed: {error}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "# Sparse-cut gossip experiment harness ({} mode, seed {})\n",
        if config.quick { "quick" } else { "full" },
        config.seed
    );
    for table in &tables {
        println!("{table}");
    }

    for (token, report) in &reports {
        let path = &report_paths[token];
        if let Err(error) = std::fs::write(path, report) {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
        eprintln!("wrote {} report to {path}", token.to_lowercase());
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&tables) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote JSON results to {path}");
            }
            Err(error) => {
                eprintln!("failed to serialize results: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(sink) = store_sink {
        for line in sink.summary_lines() {
            eprintln!("{line}");
        }
        let store = sink.into_store();
        for line in StoreSummary::from_store(&store).render_lines() {
            eprintln!("store: {line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_experiment_exactly_once() {
        let registry: Vec<&str> = TIERS.iter().map(|tier| tier.token).collect();
        let mut deduped = registry.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), registry.len(), "duplicate registry row");
        let index: BTreeSet<&str> = ExperimentId::all()
            .iter()
            .map(|id| id.cli_token())
            .collect();
        let registry: BTreeSet<&str> = registry.into_iter().collect();
        assert_eq!(registry, index);
    }

    #[test]
    fn report_bearing_tiers_have_both_flag_and_default() {
        for tier in TIERS {
            assert_eq!(
                tier.json_flag.is_some(),
                tier.default_json.is_some(),
                "{} must have a flag iff it has a default path",
                tier.token
            );
            if let Some(flag) = tier.json_flag {
                assert!(flag.starts_with("--") && flag.ends_with("-json"));
            }
        }
    }
}
