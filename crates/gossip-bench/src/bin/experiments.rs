//! Experiment harness binary.
//!
//! Regenerates every experiment table of the reproduction (E1–E10, see
//! `DESIGN.md` §5 and `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p gossip-bench --release --bin experiments             # full run
//! cargo run -p gossip-bench --release --bin experiments -- --quick  # reduced sizes
//! cargo run -p gossip-bench --release --bin experiments -- --only E1 E3
//! cargo run -p gossip-bench --release --bin experiments -- --json results.json
//! cargo run -p gossip-bench --release --bin experiments -- --only SCALE
//! cargo run -p gossip-bench --release --bin experiments -- --only SIM_SCALE
//! cargo run -p gossip-bench --release --bin experiments -- --only ROBUSTNESS
//! cargo run -p gossip-bench --release --bin experiments -- --only PERF --jobs 4
//! cargo run -p gossip-bench --release --bin experiments -- --only ADVERSARY
//! ```
//!
//! `--only` tokens are validated against the experiment index
//! (`ExperimentId::cli_token`): an unknown token prints the valid set and
//! exits with status 2 instead of silently running nothing.
//!
//! `--jobs <n>` bounds the deterministic run executor that fans scenario
//! rows (and, in the PERF tier, estimator runs) out over worker threads;
//! the default honors `GOSSIP_JOBS`, then the machine's available
//! parallelism.  Every table and report is byte-identical at any `--jobs`
//! value — only wall-clock columns vary — and `--jobs 1` reproduces the
//! historical serial execution exactly.
//!
//! `--shards <k>` turns on intra-run sharding: every kernel-capable
//! simulation the tiers build applies conflict-free event batches over `k`
//! workers.  Sharded outputs are bit-identical at every `--shards` value
//! (CI diffs `--shards 1` against `--shards 4`) but are a *different
//! deterministic mode* from the default legacy loop, so the flag is opt-in.
//!
//! Whenever the SCALE experiment runs, its report (spectral quantities plus
//! wall-clock timings of the sparse pipeline) is additionally written to
//! `BENCH_scale.json` (path overridable with `--scale-json <path>`) to seed
//! the perf trajectory.  Likewise the SIM_SCALE experiment (asynchronous
//! runs with O(1) per-tick Definition 1 stopping) writes
//! `BENCH_sim_scale.json` (`--sim-scale-json <path>`), the ROBUSTNESS
//! experiment (fault injection against fault-free baselines) writes
//! `BENCH_robustness.json` (`--robustness-json <path>`), and the ADVERSARY
//! experiment (Byzantine attacks against vanilla and robust aggregation,
//! with honest-subset drift oracles) writes `BENCH_adversary.json`
//! (`--adversary-json <path>`); the robustness and adversary reports carry
//! no wall-clock fields, so CI diffs them byte-for-byte.  The PERF
//! experiment (hot-loop throughput plus serial-vs-parallel estimator
//! timing with a built-in bitwise oracle) writes `BENCH_perf.json`
//! (`--perf-json <path>`); CI diffs it across two runs at different
//! `--jobs` after stripping the wall-clock and `jobs` fields.

use gossip_bench::runner::{self, HarnessConfig};
use gossip_bench::Table;
use gossip_workloads::ExperimentId;
use std::collections::BTreeSet;

fn print_usage() {
    eprintln!(
        "usage: experiments [--quick] [--seed <u64>] [--jobs <n>] [--shards <k>] \
         [--only E1 E2 ... SCALE SIM_SCALE ROBUSTNESS PERF ADVERSARY] [--json <path>] \
         [--scale-json <path>] [--sim-scale-json <path>] \
         [--robustness-json <path>] [--perf-json <path>] [--adversary-json <path>]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = HarnessConfig::full();
    let mut only: BTreeSet<String> = BTreeSet::new();
    let mut json_path: Option<String> = None;
    let mut scale_json_path = String::from("BENCH_scale.json");
    let mut sim_scale_json_path = String::from("BENCH_sim_scale.json");
    let mut robustness_json_path = String::from("BENCH_robustness.json");
    let mut perf_json_path = String::from("BENCH_perf.json");
    let mut adversary_json_path = String::from("BENCH_adversary.json");
    let valid_tokens: BTreeSet<&'static str> = ExperimentId::all()
        .iter()
        .map(|id| id.cli_token())
        .collect();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => config.quick = true,
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => config.seed = seed,
                    None => {
                        eprintln!("--seed requires an unsigned integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(jobs) if jobs >= 1 => config.jobs = Some(jobs),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(shards) if shards >= 1 => config.shards = Some(shards),
                    _ => {
                        eprintln!("--shards requires a positive integer");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    let token = args[i].to_uppercase();
                    if !valid_tokens.contains(token.as_str()) {
                        eprintln!(
                            "unknown experiment '{}' for --only; valid tokens: {}",
                            args[i],
                            valid_tokens.iter().copied().collect::<Vec<_>>().join(" ")
                        );
                        print_usage();
                        std::process::exit(2);
                    }
                    only.insert(token);
                    i += 1;
                }
                continue;
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = Some(path.clone()),
                    None => {
                        eprintln!("--json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--scale-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => scale_json_path = path.clone(),
                    None => {
                        eprintln!("--scale-json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--sim-scale-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => sim_scale_json_path = path.clone(),
                    None => {
                        eprintln!("--sim-scale-json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--robustness-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => robustness_json_path = path.clone(),
                    None => {
                        eprintln!("--robustness-json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--perf-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => perf_json_path = path.clone(),
                    None => {
                        eprintln!("--perf-json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--adversary-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => adversary_json_path = path.clone(),
                    None => {
                        eprintln!("--adversary-json requires a path");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let wanted = |id: &str| only.is_empty() || only.contains(id);
    let mut tables: Vec<Table> = Vec::new();
    let mut scale_report: Option<runner::ScaleReport> = None;
    let mut sim_scale_report: Option<runner::SimScaleReport> = None;
    let mut robustness_report: Option<runner::RobustnessReport> = None;
    let mut perf_report: Option<runner::PerfReport> = None;
    let mut adversary_report: Option<runner::AdversaryReport> = None;

    let run = |scale_report: &mut Option<runner::ScaleReport>,
               sim_scale_report: &mut Option<runner::SimScaleReport>,
               robustness_report: &mut Option<runner::RobustnessReport>,
               perf_report: &mut Option<runner::PerfReport>,
               adversary_report: &mut Option<runner::AdversaryReport>|
     -> runner::BenchResult<Vec<Table>> {
        let mut out = Vec::new();
        if wanted("E1") || wanted("E2") || wanted("E3") {
            let sweep = runner::run_dumbbell_sweep(&config)?;
            if wanted("E1") {
                out.push(runner::table_e1(&sweep));
            }
            if wanted("E2") {
                out.push(runner::table_e2(&sweep));
            }
            if wanted("E3") {
                out.push(runner::table_e3(&sweep));
            }
        }
        if wanted("E4") {
            out.push(runner::run_e4(&config)?.1);
        }
        if wanted("E5") {
            out.push(runner::run_e5(&config)?.1);
        }
        if wanted("E6") {
            let (cut, c) = runner::run_e6(&config)?;
            out.push(cut);
            out.push(c);
        }
        if wanted("E7") {
            out.push(runner::run_e7(&config)?);
        }
        if wanted("E8") {
            out.push(runner::run_e8(&config)?);
        }
        if wanted("E9") {
            out.push(runner::run_e9(&config)?);
        }
        if wanted("E10") {
            out.push(runner::run_e10(&config)?.1);
        }
        if wanted("SCALE") {
            let (report, table) = runner::run_scale(&config)?;
            *scale_report = Some(report);
            out.push(table);
        }
        if wanted("SIM_SCALE") {
            let (report, table) = runner::run_sim_scale(&config)?;
            *sim_scale_report = Some(report);
            out.push(table);
        }
        if wanted("ROBUSTNESS") {
            let (report, table) = runner::run_robustness(&config)?;
            *robustness_report = Some(report);
            out.push(table);
        }
        if wanted("PERF") {
            let (report, perf_tables) = runner::run_perf(&config)?;
            *perf_report = Some(report);
            out.extend(perf_tables);
        }
        if wanted("ADVERSARY") {
            let (report, table) = runner::run_adversary(&config)?;
            *adversary_report = Some(report);
            out.push(table);
        }
        Ok(out)
    };

    match run(
        &mut scale_report,
        &mut sim_scale_report,
        &mut robustness_report,
        &mut perf_report,
        &mut adversary_report,
    ) {
        Ok(result) => tables.extend(result),
        Err(error) => {
            eprintln!("experiment harness failed: {error}");
            std::process::exit(1);
        }
    }

    println!(
        "# Sparse-cut gossip experiment harness ({} mode, seed {})\n",
        if config.quick { "quick" } else { "full" },
        config.seed
    );
    for table in &tables {
        println!("{table}");
    }

    if let Some(report) = &scale_report {
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&scale_json_path, json) {
                    eprintln!("failed to write {scale_json_path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote scale report to {scale_json_path}");
            }
            Err(error) => {
                eprintln!("failed to serialize scale report: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(report) = &sim_scale_report {
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&sim_scale_json_path, json) {
                    eprintln!("failed to write {sim_scale_json_path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote sim-scale report to {sim_scale_json_path}");
            }
            Err(error) => {
                eprintln!("failed to serialize sim-scale report: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(report) = &robustness_report {
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&robustness_json_path, json) {
                    eprintln!("failed to write {robustness_json_path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote robustness report to {robustness_json_path}");
            }
            Err(error) => {
                eprintln!("failed to serialize robustness report: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(report) = &perf_report {
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&perf_json_path, json) {
                    eprintln!("failed to write {perf_json_path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote perf report to {perf_json_path}");
            }
            Err(error) => {
                eprintln!("failed to serialize perf report: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(report) = &adversary_report {
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&adversary_json_path, json) {
                    eprintln!("failed to write {adversary_json_path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote adversary report to {adversary_json_path}");
            }
            Err(error) => {
                eprintln!("failed to serialize adversary report: {error}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&tables) {
            Ok(json) => {
                if let Err(error) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {error}");
                    std::process::exit(1);
                }
                eprintln!("wrote JSON results to {path}");
            }
            Err(error) => {
                eprintln!("failed to serialize results: {error}");
                std::process::exit(1);
            }
        }
    }
}
