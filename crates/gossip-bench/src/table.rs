//! Minimal table rendering for the experiment harness.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular table of strings with a title, rendered as GitHub-flavoured
/// markdown (so the harness output can be pasted into `EXPERIMENTS.md`
/// verbatim).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (printed above the table).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Formats a float with a sensible number of significant digits for
    /// table cells.
    pub fn fmt_f64(value: f64) -> String {
        if !value.is_finite() {
            return format!("{value}");
        }
        if value == 0.0 {
            return "0".to_string();
        }
        let magnitude = value.abs();
        if magnitude >= 100.0 {
            format!("{value:.1}")
        } else if magnitude >= 1.0 {
            format!("{value:.2}")
        } else {
            format!("{value:.4}")
        }
    }
}

// The vendored `serde` stand-in ships a no-op derive (see vendor/README.md),
// so the one type this workspace actually writes to disk carries a
// hand-written impl against the vendored JSON data model.
impl serde::Serialize for Table {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("title".to_string(), self.title.to_json_value()),
            ("columns".to_string(), self.columns.to_json_value()),
            ("rows".to_string(), self.rows.to_json_value()),
        ])
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        let separator: Vec<String> = self.columns.iter().map(|_| "---".to_string()).collect();
        writeln!(f, "| {} |", separator.join(" | "))?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_markdown() {
        let mut t = Table::new("E0: smoke", &["n", "value"]);
        t.push_row(vec!["4".into(), "1.25".into()]);
        t.push_row(vec!["8".into(), "2.50".into()]);
        assert_eq!(t.row_count(), 2);
        let rendered = t.to_string();
        assert!(rendered.contains("### E0: smoke"));
        assert!(rendered.contains("| n | value |"));
        assert!(rendered.contains("| --- | --- |"));
        assert!(rendered.contains("| 8 | 2.50 |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(Table::fmt_f64(0.0), "0");
        assert_eq!(Table::fmt_f64(1234.567), "1234.6");
        assert_eq!(Table::fmt_f64(12.345), "12.35");
        assert_eq!(Table::fmt_f64(0.01234), "0.0123");
        assert_eq!(Table::fmt_f64(f64::INFINITY), "inf");
    }
}
