//! In-memory analysis views over a loaded [`RunStore`].
//!
//! Views group the store's *live* committed trials (later commits shadow
//! earlier ones) per tier and, within a tier, per scenario family — the
//! fingerprint prefix before the parameter list, so
//! `chordring(n=1000)` and `chordring(n=4000)` land in one
//! `chordring` family.  They answer "what has this store already paid
//! for?" without touching the journals again; the experiments binary
//! renders them as the `--store-summary` listing.

use std::collections::BTreeMap;

use crate::store::RunStore;

/// Trials of one scenario family inside one tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyView {
    /// The family name (fingerprint text before the first `(`).
    pub family: String,
    /// Number of live committed trials in the family.
    pub trials: usize,
    /// The distinct fingerprints seen, in sorted order.
    pub fingerprints: Vec<String>,
    /// The distinct base seeds seen, in sorted order.
    pub seeds: Vec<u64>,
}

/// Committed trials of one bench tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierView {
    /// The tier's CLI token.
    pub experiment: String,
    /// Total live committed trials of the tier.
    pub trials: usize,
    /// Per-family breakdown, sorted by family name.
    pub families: Vec<FamilyView>,
}

/// Grouped view of everything a store has committed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreSummary {
    /// Per-tier views, sorted by tier token.
    pub tiers: Vec<TierView>,
}

/// The family of a scenario fingerprint: the text before the first `(`.
#[must_use]
pub fn family_of(fingerprint: &str) -> &str {
    fingerprint.split('(').next().unwrap_or(fingerprint)
}

/// The distinct fingerprints and seeds of one family, pre-dedup.
type FamilyBucket = (Vec<String>, Vec<u64>);

impl StoreSummary {
    /// Builds the summary from a store's live records.
    #[must_use]
    pub fn from_store(store: &RunStore) -> Self {
        // tier token -> family -> (fingerprints, seeds)
        let mut tiers: BTreeMap<String, BTreeMap<String, FamilyBucket>> = BTreeMap::new();
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for record in store.live_records() {
            let family = family_of(&record.fingerprint).to_string();
            let slot = tiers
                .entry(record.experiment.clone())
                .or_default()
                .entry(family.clone())
                .or_default();
            slot.0.push(record.fingerprint.clone());
            slot.1.push(record.seed);
            *counts
                .entry((record.experiment.clone(), family))
                .or_default() += 1;
        }
        let tiers = tiers
            .into_iter()
            .map(|(experiment, families)| {
                let families: Vec<FamilyView> = families
                    .into_iter()
                    .map(|(family, (mut fingerprints, mut seeds))| {
                        let trials = counts[&(experiment.clone(), family.clone())];
                        fingerprints.sort();
                        fingerprints.dedup();
                        seeds.sort_unstable();
                        seeds.dedup();
                        FamilyView {
                            family,
                            trials,
                            fingerprints,
                            seeds,
                        }
                    })
                    .collect();
                let trials = families.iter().map(|f| f.trials).sum();
                TierView {
                    experiment,
                    trials,
                    families,
                }
            })
            .collect();
        StoreSummary { tiers }
    }

    /// Renders the summary as indented text lines, e.g.
    ///
    /// ```text
    /// SIM_SCALE: 8 trials
    ///   chordring: 2 trials over 2 fingerprints, seeds [42]
    /// ```
    #[must_use]
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        if self.tiers.is_empty() {
            lines.push("store is empty".to_string());
            return lines;
        }
        for tier in &self.tiers {
            lines.push(format!("{}: {} trials", tier.experiment, tier.trials));
            for family in &tier.families {
                let seeds: Vec<String> = family.seeds.iter().map(u64::to_string).collect();
                lines.push(format!(
                    "  {}: {} trials over {} fingerprints, seeds [{}]",
                    family.family,
                    family.trials,
                    family.fingerprints.len(),
                    seeds.join(", ")
                ));
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::trial_key;
    use crate::journal::TrialRecord;
    use serde::json::Value;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("gossip-store-views-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn record(experiment: &str, fingerprint: &str, seed: u64) -> TrialRecord {
        TrialRecord {
            key: trial_key(experiment, fingerprint, seed, "quick;engine=legacy"),
            experiment: experiment.to_string(),
            fingerprint: fingerprint.to_string(),
            seed,
            row: Value::Object(vec![("rounds".to_string(), Value::Number(5.0))]),
        }
    }

    #[test]
    fn family_strips_parameters() {
        assert_eq!(family_of("chordring(n=1000)"), "chordring");
        assert_eq!(family_of("sbm(n1=500,n2=500,p_in=0.1,p_out=0.001)"), "sbm");
        assert_eq!(family_of("bare"), "bare");
    }

    #[test]
    fn summary_groups_per_tier_and_family() {
        let dir = temp_dir("summary");
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(record("SIM_SCALE", "chordring(n=1000)", 42))
            .unwrap();
        store
            .commit(record("SIM_SCALE", "chordring(n=4000)", 42))
            .unwrap();
        store
            .commit(record("SIM_SCALE", "grid(rows=10,cols=100)", 42))
            .unwrap();
        store
            .commit(record("SCALE", "chordring(n=1000)", 7))
            .unwrap();
        // Shadowed duplicate must not double-count.
        store
            .commit(record("SIM_SCALE", "chordring(n=1000)", 42))
            .unwrap();

        let summary = StoreSummary::from_store(&store);
        assert_eq!(summary.tiers.len(), 2);
        let sim = summary
            .tiers
            .iter()
            .find(|t| t.experiment == "SIM_SCALE")
            .unwrap();
        assert_eq!(sim.trials, 3);
        let chord = sim
            .families
            .iter()
            .find(|f| f.family == "chordring")
            .unwrap();
        assert_eq!(chord.trials, 2);
        assert_eq!(chord.fingerprints.len(), 2);
        assert_eq!(chord.seeds, vec![42]);

        let lines = StoreSummary::from_store(&store).render_lines();
        assert!(lines.iter().any(|l| l == "SIM_SCALE: 3 trials"));
        assert!(lines
            .iter()
            .any(|l| l.contains("chordring: 2 trials over 2 fingerprints, seeds [42]")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_renders_placeholder() {
        let dir = temp_dir("empty");
        let store = RunStore::open(&dir, false).unwrap();
        let summary = StoreSummary::from_store(&store);
        assert!(summary.tiers.is_empty());
        assert_eq!(summary.render_lines(), vec!["store is empty".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
