//! Trial-key derivation.
//!
//! A trial's identity is the 64-bit splitmix64 hash of its four coordinates
//! — experiment id, scenario fingerprint, base seed, engine-config
//! fingerprint — folded byte by byte through the same finalizer the
//! estimator uses for per-run seed derivation.  The key is what the journal
//! indexes commits by and what a resumed sweep looks up before deciding to
//! recompute, so the derivation is **frozen**: `trial_key_is_pinned` in
//! this module holds golden values that fail loudly if anyone changes the
//! mixing, which would silently orphan every existing journal.

/// A trial's 64-bit identity hash.
pub type TrialKey = u64;

/// The splitmix64 finalizer (Steele, Lea, Flood 2014): a bijective avalanche
/// mix of one 64-bit word.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Incremental splitmix64-based hasher for trial keys.
///
/// Every absorbed word passes through the full finalizer, so short inputs
/// still avalanche; strings absorb their bytes in 8-byte little-endian
/// chunks followed by their length (so `("ab", "c")` and `("a", "bc")`
/// cannot collide through concatenation).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl KeyHasher {
    /// Starts a hasher from the fixed domain tag.
    #[must_use]
    pub fn new() -> Self {
        KeyHasher {
            // "gossip-store v1" domain separation: journals must not
            // collide with any other splitmix64 use in the workspace.
            state: splitmix64(0x6753_544F_5245_0001),
        }
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, word: u64) {
        self.state = splitmix64(self.state ^ word);
    }

    /// Absorbs a string: its bytes in 8-byte little-endian chunks (final
    /// chunk zero-padded), then its length.
    pub fn write_str(&mut self, text: &str) {
        for chunk in text.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
        self.write_u64(text.len() as u64);
    }

    /// Finishes the hash.
    #[must_use]
    pub fn finish(&self) -> TrialKey {
        splitmix64(self.state)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives the journal key of one trial from its four coordinates.
///
/// * `experiment` — the tier's CLI token (e.g. `"SIM_SCALE"`).
/// * `fingerprint` — the stable scenario fingerprint (every generator
///   parameter encoded; see `gossip_workloads::Scenario::fingerprint`).
/// * `seed` — the harness base seed (per-trial offsets are derived
///   deterministically from it, so the base seed pins them all).
/// * `engine` — the engine-config fingerprint (quick/full grid, legacy
///   versus sharded engine — everything that changes a trial's bytes other
///   than the seed; job counts are deliberately excluded because outputs
///   are byte-identical at any width).
#[must_use]
pub fn trial_key(experiment: &str, fingerprint: &str, seed: u64, engine: &str) -> TrialKey {
    let mut hasher = KeyHasher::new();
    hasher.write_str(experiment);
    hasher.write_str(fingerprint);
    hasher.write_u64(seed);
    hasher.write_str(engine);
    hasher.finish()
}

/// Formats a key the way the journal stores it: 16 lowercase hex digits
/// (a JSON number would squeeze a `u64` through `f64` and lose bits).
#[must_use]
pub fn format_key(key: TrialKey) -> String {
    format!("{key:016x}")
}

/// Parses a journal-formatted key.
#[must_use]
pub fn parse_key(text: &str) -> Option<TrialKey> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First two outputs of the published splitmix64 stream at seed 0
        // (state advances by the golden-gamma increment between calls).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn trial_key_is_pinned() {
        // Golden values: changing the key derivation orphans every journal
        // on disk, so it must be a deliberate, schema-bumped decision.
        assert_eq!(
            trial_key(
                "SIM_SCALE",
                "chordring(n=1000)",
                0xC0FFEE,
                "quick;engine=legacy"
            ),
            0x4a31_1fff_dc1e_6939
        );
        assert_eq!(
            trial_key("E9", "s=0.5", 99, "full;engine=legacy"),
            0x9a0d_ecd5_41bc_4b8a
        );
    }

    #[test]
    fn keys_separate_every_coordinate() {
        let base = trial_key("SIM_SCALE", "chordring(n=1000)", 7, "quick;engine=legacy");
        assert_ne!(
            base,
            trial_key("SCALE", "chordring(n=1000)", 7, "quick;engine=legacy")
        );
        assert_ne!(
            base,
            trial_key("SIM_SCALE", "chordring(n=2000)", 7, "quick;engine=legacy")
        );
        assert_ne!(
            base,
            trial_key("SIM_SCALE", "chordring(n=1000)", 8, "quick;engine=legacy")
        );
        assert_ne!(
            base,
            trial_key("SIM_SCALE", "chordring(n=1000)", 7, "full;engine=legacy")
        );
        // Concatenation shuffles across field boundaries must not collide.
        assert_ne!(trial_key("AB", "C", 0, ""), trial_key("A", "BC", 0, ""));
    }

    #[test]
    fn key_text_round_trips() {
        for key in [0u64, 1, u64::MAX, 0x4a31_1fff_dc1e_6939] {
            assert_eq!(parse_key(&format_key(key)), Some(key));
        }
        assert_eq!(parse_key("xyz"), None);
        assert_eq!(parse_key("00"), None);
    }
}
