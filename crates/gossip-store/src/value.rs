//! Field accessors for decoding journaled rows.
//!
//! The vendored `serde::json::Value` is a bare enum with no lookup helpers;
//! every tier's replay path needs "get field `x` of this object as an
//! `f64`/`u64`/`&str`".  [`ValueExt`] provides those as a small extension
//! trait so the decoders in `gossip-bench` read like field accesses instead
//! of nested pattern matches.

use serde::json::Value;

/// Lookup and coercion helpers on [`Value`].
pub trait ValueExt {
    /// Looks up a field of an object by key (first match; journal records
    /// never carry duplicate keys).
    fn get(&self, key: &str) -> Option<&Value>;
    /// The value as a finite float.
    fn as_f64(&self) -> Option<f64>;
    /// The value as an unsigned integer, if it is a number with an exact
    /// `u64` representation.
    fn as_u64(&self) -> Option<u64>;
    /// The value as a `usize` (via [`ValueExt::as_u64`]).
    fn as_usize(&self) -> Option<usize>;
    /// The value as a string slice.
    fn as_str(&self) -> Option<&str>;
    /// The value as a boolean.
    fn as_bool(&self) -> Option<bool>;
    /// The value as an array slice.
    fn as_array(&self) -> Option<&[Value]>;

    /// Field lookup + float coercion in one step.
    fn field_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }
    /// Field lookup + unsigned-integer coercion in one step.
    fn field_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }
    /// Field lookup + `usize` coercion in one step.
    fn field_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.as_usize()
    }
    /// Field lookup + string coercion in one step.
    fn field_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
    /// Field lookup + boolean coercion in one step.
    fn field_bool(&self, key: &str) -> Option<bool> {
        self.get(key)?.as_bool()
    }
}

impl ValueExt for Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            // Journal numbers come through f64, which is exact for the
            // integer counts the tiers store (all far below 2^53).
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::Number(1000.0)),
            ("ratio".to_string(), Value::Number(0.25)),
            (
                "name".to_string(),
                Value::String("dumbbell-500".to_string()),
            ),
            ("ok".to_string(), Value::Bool(true)),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
            ),
        ])
    }

    #[test]
    fn accessors_coerce_matching_types() {
        let v = sample();
        assert_eq!(v.field_usize("n"), Some(1000));
        assert_eq!(v.field_u64("n"), Some(1000));
        assert_eq!(v.field_f64("ratio"), Some(0.25));
        assert_eq!(v.field_str("name"), Some("dumbbell-500"));
        assert_eq!(v.field_bool("ok"), Some(true));
        assert_eq!(
            v.get("rows")
                .and_then(ValueExt::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn accessors_reject_mismatched_types() {
        let v = sample();
        assert_eq!(v.field_u64("ratio"), None, "fractional number is not a u64");
        assert_eq!(v.field_str("n"), None);
        assert_eq!(v.field_f64("name"), None);
        assert_eq!(v.field_f64("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
    }
}
