//! The append-only JSONL trial journal.
//!
//! One journal file holds one bench tier's committed trials, one compact
//! JSON object per line:
//!
//! ```json
//! {"schema_version":1,"key":"4a311fffdc1e6939","experiment":"SIM_SCALE",
//!  "fingerprint":"chordring(n=1000)","seed":"42","row":{...}}
//! ```
//!
//! `key` is the trial's splitmix64 hash as 16 hex digits and `seed` is a
//! decimal string — both are 64-bit values that must not squeeze through
//! the JSON number type's `f64` (bits above 2^53 would be lost).  `row` is
//! the tier's own row value, replayed verbatim on resume.
//!
//! **Crash safety.**  Records are written `line + '\n'` in a single write
//! and flushed per commit, so after a crash at most the *final* line can be
//! damaged.  [`Journal::load`] therefore accepts a journal whose last line
//! is truncated, unparseable, or missing its terminating newline — that
//! tail is dropped and reported, and [`JournalLoad::valid_len`] is the byte
//! offset of the clean prefix so a resume can truncate the file before
//! appending.  Damage *before* the final line cannot be explained by a
//! crash and is a hard [`StoreError::CorruptRecord`]; a record written at a
//! different schema version is a hard [`StoreError::SchemaVersion`] even at
//! the tail (version skew is not truncation).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::json::Value;

use crate::hash::{format_key, parse_key, TrialKey};
use crate::value::ValueExt;
use crate::{Result, StoreError, SCHEMA_VERSION};

/// One committed trial, as stored on one journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The trial's identity hash (see [`crate::hash::trial_key`]).
    pub key: TrialKey,
    /// The tier's CLI token, e.g. `"SIM_SCALE"`.
    pub experiment: String,
    /// The stable scenario fingerprint the key was derived from.
    pub fingerprint: String,
    /// The harness base seed the trial ran at.
    pub seed: u64,
    /// The tier's row payload, replayed verbatim on resume.
    pub row: Value,
}

impl TrialRecord {
    /// Renders the record as its single compact journal line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let doc = Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::Number(SCHEMA_VERSION as f64),
            ),
            ("key".to_string(), Value::String(format_key(self.key))),
            (
                "experiment".to_string(),
                Value::String(self.experiment.clone()),
            ),
            (
                "fingerprint".to_string(),
                Value::String(self.fingerprint.clone()),
            ),
            ("seed".to_string(), Value::String(self.seed.to_string())),
            ("row".to_string(), self.row.clone()),
        ]);
        serde_json::to_string(&Direct(doc)).expect("vendored serialization is infallible")
    }

    /// Decodes one journal line.  The error distinguishes a schema-version
    /// mismatch (`Err(Ok(found))`) from any other damage (`Err(Err(reason))`)
    /// because the two are handled differently at the journal tail.
    fn from_line(line: &str) -> std::result::Result<TrialRecord, std::result::Result<u64, String>> {
        let doc = serde_json::from_str(line).map_err(|e| Err(e.to_string()))?;
        let version = doc
            .field_u64("schema_version")
            .ok_or_else(|| Err("missing schema_version".to_string()))?;
        if version != SCHEMA_VERSION {
            return Err(Ok(version));
        }
        let key = doc
            .field_str("key")
            .and_then(parse_key)
            .ok_or_else(|| Err("missing or malformed key".to_string()))?;
        let experiment = doc
            .field_str("experiment")
            .ok_or_else(|| Err("missing experiment".to_string()))?
            .to_string();
        let fingerprint = doc
            .field_str("fingerprint")
            .ok_or_else(|| Err("missing fingerprint".to_string()))?
            .to_string();
        let seed = doc
            .field_str("seed")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| Err("missing or malformed seed".to_string()))?;
        let row = doc
            .get("row")
            .ok_or_else(|| Err("missing row".to_string()))?
            .clone();
        Ok(TrialRecord {
            key,
            experiment,
            fingerprint,
            seed,
            row,
        })
    }
}

/// Wrapper giving a raw [`Value`] a `Serialize` impl (the vendored serde
/// has no blanket impl for its own data model).
pub(crate) struct Direct(pub(crate) Value);

impl serde::Serialize for Direct {
    fn to_json_value(&self) -> Value {
        self.0.clone()
    }
}

/// Result of loading a journal file.
#[derive(Debug)]
pub struct JournalLoad {
    /// Every fully-valid record, in file order.
    pub records: Vec<TrialRecord>,
    /// Byte length of the valid prefix — everything past this offset is
    /// the dropped tail (if any).  A resume must truncate the file here
    /// before appending.
    pub valid_len: u64,
    /// Why the tail was dropped, if it was.
    pub dropped_tail: Option<String>,
}

/// An append handle on one journal file.
///
/// The file is opened lazily on first [`Journal::append`]; each append
/// writes one full line and flushes, so a crash can damage at most the
/// final line (which [`Journal::load`] then drops).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Option<File>,
}

impl Journal {
    /// Creates an append handle (no file is touched until the first
    /// append).
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        Journal { path, file: None }
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, record: &TrialRecord) -> Result<()> {
        append_line(&self.path, &mut self.file, &record.to_line())
    }

    /// Truncates the journal file to `valid_len` bytes, discarding a
    /// damaged tail before a resume starts appending.
    pub fn truncate_to(path: &Path, valid_len: u64) -> Result<()> {
        let current = match std::fs::metadata(path) {
            Ok(meta) => meta.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(source) => {
                return Err(StoreError::Io {
                    path: path.display().to_string(),
                    source,
                })
            }
        };
        if current == valid_len {
            return Ok(());
        }
        let io_err = |source| StoreError::Io {
            path: path.display().to_string(),
            source,
        };
        let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
        file.set_len(valid_len).map_err(io_err)?;
        // The repair must be as durable as the appends it protects: fsync
        // the truncated file *and* its directory, so a crash right after
        // this load can't resurrect the dropped tail (and corrupt the
        // recomputed records appended past it) when the metadata replays.
        file.sync_all().map_err(io_err)?;
        if let Some(parent) = path.parent() {
            let dir = File::open(parent).map_err(|source| StoreError::Io {
                path: parent.display().to_string(),
                source,
            })?;
            dir.sync_all().map_err(|source| StoreError::Io {
                path: parent.display().to_string(),
                source,
            })?;
        }
        Ok(())
    }

    /// Loads a journal file with the crash-safe tail policy described in
    /// the module docs.  A missing file loads as empty.
    pub fn load(path: &Path) -> Result<JournalLoad> {
        let (records, valid_len, dropped_tail) = scan_lines(path, TrialRecord::from_line)?;
        Ok(JournalLoad {
            records,
            valid_len,
            dropped_tail,
        })
    }
}

/// Appends one rendered line (plus the terminating newline, as a single
/// write) to the lazily opened append handle shared by the trial journal
/// and the checkpoint log.
pub(crate) fn append_line(path: &Path, file: &mut Option<File>, line: &str) -> Result<()> {
    let io_err = |source| StoreError::Io {
        path: path.display().to_string(),
        source,
    };
    if file.is_none() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        let opened = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        *file = Some(opened);
    }
    let file = file.as_mut().expect("opened above");
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    file.write_all(buf.as_bytes())
        .and_then(|()| file.flush())
        .map_err(io_err)
}

/// The shared crash-safe line scan: decodes every newline-terminated line
/// of `path`, dropping a damaged *final* line (the only damage a crash
/// mid-append can produce) and hard-erroring on anything earlier.  The
/// decoder reports schema-version skew as `Err(Ok(found))` — a hard error
/// even at the tail — and any other damage as `Err(Err(reason))`.
pub(crate) fn scan_lines<T>(
    path: &Path,
    decode: impl Fn(&str) -> std::result::Result<T, std::result::Result<u64, String>>,
) -> Result<(Vec<T>, u64, Option<String>)> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), 0, None));
        }
        Err(source) => {
            return Err(StoreError::Io {
                path: path.display().to_string(),
                source,
            })
        }
    };

    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut dropped_tail = None;
    let mut pos = 0usize;
    let mut line_no = 0usize;
    while pos < bytes.len() {
        line_no += 1;
        let newline = bytes[pos..].iter().position(|&b| b == b'\n');
        let Some(rel) = newline else {
            // Unterminated final line: the `line + '\n'` write did not
            // complete, so this is the crash tail by definition.
            dropped_tail = Some(format!(
                "line {line_no} has no terminating newline (interrupted write)"
            ));
            break;
        };
        let end = pos + rel;
        let is_last = end + 1 == bytes.len();
        let decoded = std::str::from_utf8(&bytes[pos..end])
            .map_err(|e| Err(format!("invalid UTF-8: {e}")))
            .and_then(&decode);
        match decoded {
            Ok(record) => {
                records.push(record);
                valid_len = (end + 1) as u64;
                pos = end + 1;
            }
            Err(Ok(found)) => {
                // Version skew is never truncation damage: hard error
                // even on the final line.
                return Err(StoreError::SchemaVersion {
                    path: path.display().to_string(),
                    line: line_no,
                    found,
                });
            }
            Err(Err(reason)) if is_last => {
                dropped_tail = Some(format!("line {line_no}: {reason}"));
                break;
            }
            Err(Err(reason)) => {
                return Err(StoreError::CorruptRecord {
                    path: path.display().to_string(),
                    line: line_no,
                    reason,
                });
            }
        }
    }
    Ok((records, valid_len, dropped_tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::trial_key;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "gossip-store-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn record(i: u64) -> TrialRecord {
        let fingerprint = format!("chordring(n={})", 1000 * (i + 1));
        TrialRecord {
            key: trial_key("SIM_SCALE", &fingerprint, 42, "quick;engine=legacy"),
            experiment: "SIM_SCALE".to_string(),
            fingerprint,
            seed: 42,
            row: Value::Object(vec![
                ("rounds".to_string(), Value::Number(17.0 + i as f64)),
                ("ratio".to_string(), Value::Number(0.1 + i as f64)),
            ]),
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::new(path.clone());
        for i in 0..3 {
            journal.append(&record(i)).unwrap();
        }
        let load = Journal::load(&path).unwrap();
        assert_eq!(load.records, vec![record(0), record(1), record(2)]);
        assert_eq!(load.dropped_tail, None);
        assert_eq!(load.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let load = Journal::load(Path::new("/nonexistent/never/journal.jsonl")).unwrap();
        assert!(load.records.is_empty());
        assert_eq!(load.valid_len, 0);
        assert_eq!(load.dropped_tail, None);
    }

    #[test]
    fn truncated_final_record_is_dropped() {
        let path = temp_path("truncated");
        let mut journal = Journal::new(path.clone());
        for i in 0..3 {
            journal.append(&record(i)).unwrap();
        }
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        let clean_len = full
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        // Chop the third record mid-line: simulates a crash mid-write.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let load = Journal::load(&path).unwrap();
        assert_eq!(load.records, vec![record(0), record(1)]);
        assert_eq!(load.valid_len, clean_len as u64);
        assert!(load.dropped_tail.is_some());

        // Resume protocol: truncate to the valid prefix, append, reload.
        Journal::truncate_to(&path, load.valid_len).unwrap();
        let mut journal = Journal::new(path.clone());
        journal.append(&record(2)).unwrap();
        let load = Journal::load(&path).unwrap();
        assert_eq!(load.records, vec![record(0), record(1), record(2)]);
        assert_eq!(load.dropped_tail, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_final_record_is_dropped_but_earlier_corruption_errors() {
        let path = temp_path("corrupt");
        let mut journal = Journal::new(path.clone());
        for i in 0..2 {
            journal.append(&record(i)).unwrap();
        }
        drop(journal);
        // Garbage final line (newline-terminated, still droppable).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"schema_version\":1,garbage}\n");
        std::fs::write(&path, &bytes).unwrap();
        let load = Journal::load(&path).unwrap();
        assert_eq!(load.records.len(), 2);
        assert!(load.dropped_tail.is_some());

        // The same garbage *before* a valid record is a hard error.
        let mut journal = Journal::new(path.clone());
        journal.append(&record(2)).unwrap();
        match Journal::load(&path) {
            Err(StoreError::CorruptRecord { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_version_skew_is_a_hard_error_even_at_the_tail() {
        let path = temp_path("schema");
        let mut journal = Journal::new(path.clone());
        journal.append(&record(0)).unwrap();
        drop(journal);
        let line = record(1)
            .to_line()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        std::fs::write(&path, &bytes).unwrap();
        match Journal::load(&path) {
            Err(StoreError::SchemaVersion { line, found, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(found, 999);
            }
            other => panic!("expected SchemaVersion, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_rows_replay_bit_identically() {
        // The property resume rests on: a row that went through the journal
        // (render -> parse) renders the same bytes as the original.
        let path = temp_path("bitident");
        let row = Value::Object(vec![
            ("pi".to_string(), Value::Number(std::f64::consts::PI)),
            ("tiny".to_string(), Value::Number(5e-324)),
            (
                "big".to_string(),
                Value::Number(1.234_567_890_123_456_7e300),
            ),
            ("count".to_string(), Value::Number(1_000_000.0)),
        ]);
        let mut rec = record(0);
        rec.row = row.clone();
        let mut journal = Journal::new(path.clone());
        journal.append(&rec).unwrap();
        drop(journal);
        let load = Journal::load(&path).unwrap();
        let direct = serde_json::to_string(&Direct(row)).unwrap();
        let replayed = serde_json::to_string(&Direct(load.records[0].row.clone())).unwrap();
        assert_eq!(direct, replayed);
        std::fs::remove_file(&path).unwrap();
    }
}
