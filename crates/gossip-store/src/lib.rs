//! Journaled, resumable run store for the experiment harness.
//!
//! Every bench-tier trial — one scenario row of one tier at one seed — is a
//! *committed, hash-keyed, auditable record*: the tier computes the row,
//! its oracles pass (a failing oracle is an error, so nothing is written),
//! and only then is the row appended to an **append-only JSONL journal**
//! keyed by a splitmix64 hash of `(experiment id, scenario fingerprint,
//! seed, engine config)`.  A resumed sweep loads the journal, *skips* every
//! committed trial (replaying its row bit-identically from disk — the
//! vendored JSON round trip is shortest-representation exact for finite
//! `f64`s), and fans the parallel executor out over the uncommitted set
//! only.  Reports are pure renderings of the store's rows, so an
//! interrupted-and-resumed sweep renders the same bytes as an uninterrupted
//! one.
//!
//! Modules:
//!
//! * [`hash`] — splitmix64 and the trial-key derivation.
//! * [`journal`] — the append-only JSONL journal with crash-safe load
//!   (a truncated or corrupted **final** record is detected and dropped;
//!   corruption anywhere earlier is an error).
//! * [`checkpoint`] — the mid-run engine-checkpoint log kept next to each
//!   tier's journal (`<token>.ckpt.jsonl`), sharing its crash-tail policy;
//!   a torn checkpoint falls back to the previous one or a cold start.
//! * [`store`] — [`RunStore`] (per-tier journals + committed index) and the
//!   [`TrialSink`] abstraction every tier writes through ([`NullSink`] for
//!   store-less runs, [`StoreSink`] for journal-backed runs).
//! * [`value`] — field accessors for decoding journaled rows.
//! * [`views`] — in-memory analysis views grouping committed trials per
//!   tier and family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod hash;
pub mod journal;
pub mod store;
pub mod value;
pub mod views;

pub use checkpoint::{CheckpointLoad, CheckpointLog, CheckpointRecord};
pub use hash::{trial_key, TrialKey};
pub use journal::{Journal, JournalLoad, TrialRecord};
pub use store::{NullSink, RunStore, SinkStats, StoreSink, TrialSink};
pub use value::ValueExt;
pub use views::{FamilyView, StoreSummary, TierView};

use std::fmt;

/// Version of the trial-journal record format **and** of every
/// `BENCH_*.json` report.  Bumped in this one place whenever a record or
/// report schema changes shape; the journal loader rejects records written
/// at any other version (a resumed sweep must never replay rows whose
/// layout the current binary misreads — recomputing is always safe,
/// misdecoding never is).
pub const SCHEMA_VERSION: u64 = 1;

/// Errors of the run store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure on the journal file or store directory.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A record before the final one failed to parse — the journal is
    /// damaged beyond the crash-safe tail-drop and must not be trusted.
    CorruptRecord {
        /// The journal file.
        path: String,
        /// 1-based line number of the damaged record.
        line: usize,
        /// Parse failure detail.
        reason: String,
    },
    /// A record was written at a different [`SCHEMA_VERSION`].
    SchemaVersion {
        /// The journal file.
        path: String,
        /// 1-based line number of the record.
        line: usize,
        /// The version found in the record.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "run store I/O error on {path}: {source}"),
            StoreError::CorruptRecord { path, line, reason } => write!(
                f,
                "corrupt journal record at {path}:{line} (not the final record, so the \
                 crash-safe tail drop does not apply): {reason}"
            ),
            StoreError::SchemaVersion { path, line, found } => write!(
                f,
                "journal record at {path}:{line} has schema version {found}, this binary \
                 writes {SCHEMA_VERSION}; delete the store directory or rerun without --resume"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result alias of the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty_and_pairwise_distinct() {
        // One representative per variant: non-empty messages, and no two
        // variants rendering identically (a supervisor journaling by
        // message must be able to tell them apart).
        let errors = [
            StoreError::Io {
                path: "store/x.jsonl".to_string(),
                source: std::io::Error::other("disk gone"),
            },
            StoreError::CorruptRecord {
                path: "store/x.jsonl".to_string(),
                line: 2,
                reason: "bad".to_string(),
            },
            StoreError::SchemaVersion {
                path: "store/x.jsonl".to_string(),
                line: 2,
                found: 9,
            },
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty(), "{:?} renders empty", errors[i]);
            for (j, b) in rendered.iter().enumerate() {
                if i != j {
                    assert_ne!(
                        a, b,
                        "{:?} and {:?} render identically",
                        errors[i], errors[j]
                    );
                }
            }
        }
    }

    #[test]
    fn error_source_chain() {
        let e = StoreError::Io {
            path: "store/x.jsonl".to_string(),
            source: std::io::Error::other("disk gone"),
        };
        assert!(std::error::Error::source(&e).is_some());
        let e = StoreError::SchemaVersion {
            path: "store/x.jsonl".to_string(),
            line: 1,
            found: 2,
        };
        assert!(std::error::Error::source(&e).is_none());
    }
}
