//! The run store: per-tier journals plus the committed-trial index, and
//! the [`TrialSink`] abstraction every bench tier writes through.
//!
//! A tier never touches files itself.  It asks its sink to
//! [`TrialSink::replay`] a trial key — getting the journaled row back if
//! that exact trial (same tier, scenario fingerprint, seed, and engine
//! config) already committed — and calls [`TrialSink::commit`] with each
//! freshly computed row *after its oracles passed*.  [`NullSink`] makes
//! both a no-op so store-less runs take the identical code path;
//! [`StoreSink`] backs them with a [`RunStore`] and counts
//! replayed/computed trials per tier for the run summary.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::json::Value;

use crate::checkpoint::{CheckpointLog, CheckpointRecord};
use crate::hash::TrialKey;
use crate::journal::{Journal, TrialRecord};
use crate::{Result, StoreError};

/// Where bench tiers send computed trials and ask for replays.
///
/// `Sync` because commits happen inside the parallel executor's worker
/// closures, as trials complete — durability is incremental, not batched
/// at the end of a sweep.
pub trait TrialSink: Sync {
    /// Returns the committed row of `key`, if this exact trial already
    /// committed.  `experiment` is the tier's CLI token (used for
    /// accounting; the key alone identifies the trial).
    fn replay(&self, experiment: &str, key: TrialKey) -> Option<Value>;

    /// Durably commits one freshly computed trial.  Callers only invoke
    /// this after the trial's oracles passed — a failed oracle is an error
    /// on the compute path, so nothing reaches the journal.
    fn commit(&self, record: TrialRecord) -> Result<()>;

    /// Returns the newest committed mid-run checkpoint of `key`, as
    /// `(tick, blob)`, if one survived.  Store-less sinks have none.
    fn latest_checkpoint(&self, _experiment: &str, _key: TrialKey) -> Option<(u64, Value)> {
        None
    }

    /// Durably commits one mid-run checkpoint.  Store-less sinks discard
    /// it — checkpoints are an optimization, never load-bearing state.
    fn commit_checkpoint(&self, _record: CheckpointRecord) -> Result<()> {
        Ok(())
    }
}

/// Sink for store-less runs: replays nothing, commits nowhere.
#[derive(Debug, Default)]
pub struct NullSink;

impl TrialSink for NullSink {
    fn replay(&self, _experiment: &str, _key: TrialKey) -> Option<Value> {
        None
    }

    fn commit(&self, _record: TrialRecord) -> Result<()> {
        Ok(())
    }
}

/// The journal-backed run store: one JSONL journal per tier under the
/// store directory (`<dir>/<token lowercase>.jsonl`), plus an in-memory
/// index of every committed trial.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    resume: bool,
    /// Every committed record (loaded + fresh), in arrival order.
    records: Vec<TrialRecord>,
    /// Trial key -> index into `records`; a later commit of the same key
    /// wins (journals are append-only, so re-runs shadow instead of edit).
    index: BTreeMap<TrialKey, usize>,
    /// Per-tier append handles, keyed by CLI token.
    journals: BTreeMap<String, Journal>,
    /// Newest surviving mid-run checkpoint per trial key (pruned when the
    /// trial itself commits — a finished trial replays, never restores).
    checkpoints: BTreeMap<TrialKey, CheckpointRecord>,
    /// Per-tier checkpoint-log append handles, keyed by CLI token.
    checkpoint_logs: BTreeMap<String, CheckpointLog>,
    /// Tiers whose journal + checkpoint files have been reset this run
    /// (fresh mode only).
    reset: std::collections::BTreeSet<String>,
    /// Human-readable notes from loading (dropped crash tails).
    notes: Vec<String>,
}

impl RunStore {
    /// Opens a store rooted at `dir`.
    ///
    /// With `resume` set, every `*.jsonl` journal under `dir` is loaded
    /// with the crash-safe tail policy, truncated to its valid prefix, and
    /// indexed — subsequent [`RunStore::replay`] calls serve those trials
    /// from memory.  Without `resume`, nothing is loaded and each tier's
    /// journal is reset the first time that tier commits, so a fresh run
    /// never mixes old and new trials in one file.
    pub fn open(dir: &Path, resume: bool) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        let mut store = RunStore {
            dir: dir.to_path_buf(),
            resume,
            records: Vec::new(),
            index: BTreeMap::new(),
            journals: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            checkpoint_logs: BTreeMap::new(),
            reset: std::collections::BTreeSet::new(),
            notes: Vec::new(),
        };
        if resume {
            store.load_existing()?;
        }
        Ok(store)
    }

    fn load_existing(&mut self) -> Result<()> {
        let entries = std::fs::read_dir(&self.dir).map_err(|source| StoreError::Io {
            path: self.dir.display().to_string(),
            source,
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        paths.sort();
        // A `<token>.ckpt.jsonl` checkpoint log shares the directory and
        // extension with the trial journals; the `.ckpt` stem suffix keeps
        // it off the journal path.
        let is_checkpoint_log = |p: &Path| {
            p.file_stem()
                .is_some_and(|stem| stem.to_string_lossy().ends_with(".ckpt"))
        };
        for path in paths {
            if is_checkpoint_log(&path) {
                let load = CheckpointLog::load(&path)?;
                if let Some(reason) = load.dropped_tail {
                    self.notes.push(format!(
                        "{}: dropped torn checkpoint ({reason})",
                        path.display()
                    ));
                    Journal::truncate_to(&path, load.valid_len)?;
                }
                for record in load.records {
                    self.insert_checkpoint(record);
                }
            } else {
                let load = Journal::load(&path)?;
                if let Some(reason) = load.dropped_tail {
                    self.notes
                        .push(format!("{}: dropped crash tail ({reason})", path.display()));
                    Journal::truncate_to(&path, load.valid_len)?;
                }
                for record in load.records {
                    self.insert(record);
                }
            }
        }
        // Checkpoints of trials that committed are dead weight: the trial
        // replays from its journal row, never from a restore.
        let index = &self.index;
        self.checkpoints.retain(|key, _| !index.contains_key(key));
        Ok(())
    }

    fn insert(&mut self, record: TrialRecord) {
        let key = record.key;
        self.records.push(record);
        self.index.insert(key, self.records.len() - 1);
    }

    fn insert_checkpoint(&mut self, record: CheckpointRecord) {
        // Later lines supersede earlier ones, and within one run later
        // lines carry later ticks; keeping the max tick also survives a
        // log holding a superseded re-run's tail.
        match self.checkpoints.entry(record.key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(record);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                if record.tick >= slot.get().tick {
                    slot.insert(record);
                }
            }
        }
    }

    /// The journal path of one tier.
    #[must_use]
    pub fn journal_path(&self, experiment: &str) -> PathBuf {
        self.dir
            .join(format!("{}.jsonl", experiment.to_lowercase()))
    }

    /// The checkpoint-log path of one tier, next to its journal.
    #[must_use]
    pub fn checkpoint_path(&self, experiment: &str) -> PathBuf {
        self.dir
            .join(format!("{}.ckpt.jsonl", experiment.to_lowercase()))
    }

    /// Returns the committed row of `key`, if present.
    #[must_use]
    pub fn replay(&self, key: TrialKey) -> Option<&Value> {
        self.index.get(&key).map(|&i| &self.records[i].row)
    }

    /// In fresh (non-resume) mode, the first write of a tier — trial or
    /// checkpoint — resets both of that tier's files, so a fresh run never
    /// mixes old and new state in either.
    fn reset_tier_files(&mut self, token: &str) -> Result<()> {
        if self.resume || !self.reset.insert(token.to_string()) {
            return Ok(());
        }
        for path in [self.journal_path(token), self.checkpoint_path(token)] {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(source) => {
                    return Err(StoreError::Io {
                        path: path.display().to_string(),
                        source,
                    })
                }
            }
        }
        Ok(())
    }

    /// Commits one trial: appends it to the tier's journal (resetting the
    /// tier's files first in fresh mode) and indexes it.  Any surviving
    /// mid-run checkpoint of the trial is dropped from the index — a
    /// committed trial replays, never restores.
    pub fn commit(&mut self, record: TrialRecord) -> Result<()> {
        let token = record.experiment.clone();
        self.reset_tier_files(&token)?;
        let path = self.journal_path(&token);
        let journal = self
            .journals
            .entry(token)
            .or_insert_with(|| Journal::new(path));
        journal.append(&record)?;
        self.checkpoints.remove(&record.key);
        self.insert(record);
        Ok(())
    }

    /// Commits one mid-run checkpoint: appends it to the tier's checkpoint
    /// log (resetting the tier's files first in fresh mode) and makes it
    /// the trial's newest checkpoint.
    pub fn commit_checkpoint(&mut self, record: CheckpointRecord) -> Result<()> {
        let token = record.experiment.clone();
        self.reset_tier_files(&token)?;
        let path = self.checkpoint_path(&token);
        let log = self
            .checkpoint_logs
            .entry(token)
            .or_insert_with(|| CheckpointLog::new(path));
        log.append(&record)?;
        self.insert_checkpoint(record);
        Ok(())
    }

    /// The newest surviving mid-run checkpoint of `key`, if any (and only
    /// if the trial itself has not committed).
    #[must_use]
    pub fn latest_checkpoint(&self, key: TrialKey) -> Option<&CheckpointRecord> {
        self.checkpoints.get(&key)
    }

    /// Every *live* committed record — one per trial key, later commits
    /// shadowing earlier ones — in key order.
    pub fn live_records(&self) -> impl Iterator<Item = &TrialRecord> {
        self.index.values().map(|&i| &self.records[i])
    }

    /// Number of live committed trials of one tier.
    #[must_use]
    pub fn committed_count(&self, experiment: &str) -> usize {
        self.live_records()
            .filter(|r| r.experiment == experiment)
            .count()
    }

    /// Load-time notes (dropped crash tails), for the run summary.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

/// Per-tier replay/compute accounting of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Trials served from the journal without recomputation.
    pub replayed: usize,
    /// Trials computed and freshly committed this run.
    pub computed: usize,
}

/// A [`TrialSink`] backed by a [`RunStore`].
///
/// Interior mutability (a mutex around the store and one around the stats)
/// lets executor worker closures share one sink by reference; contention is
/// negligible because trials spend their time simulating, not committing.
#[derive(Debug)]
pub struct StoreSink {
    store: Mutex<RunStore>,
    stats: Mutex<BTreeMap<String, SinkStats>>,
}

impl StoreSink {
    /// Wraps a store.
    #[must_use]
    pub fn new(store: RunStore) -> Self {
        StoreSink {
            store: Mutex::new(store),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// Unwraps the store (e.g. to build analysis views after the run).
    #[must_use]
    pub fn into_store(self) -> RunStore {
        self.store.into_inner().expect("store mutex poisoned")
    }

    /// Snapshot of the per-tier accounting.
    #[must_use]
    pub fn stats(&self) -> BTreeMap<String, SinkStats> {
        self.stats.lock().expect("stats mutex poisoned").clone()
    }

    /// One summary line per tier that replayed or computed anything, e.g.
    /// `run store[SIM_SCALE]: replayed 3, computed 5` — the line the CI
    /// interrupt-and-resume gate greps for.
    #[must_use]
    pub fn summary_lines(&self) -> Vec<String> {
        self.stats()
            .iter()
            .map(|(token, s)| {
                format!(
                    "run store[{token}]: replayed {}, computed {}",
                    s.replayed, s.computed
                )
            })
            .collect()
    }

    /// Load-time notes of the wrapped store.
    #[must_use]
    pub fn notes(&self) -> Vec<String> {
        self.store
            .lock()
            .expect("store mutex poisoned")
            .notes()
            .to_vec()
    }
}

impl TrialSink for StoreSink {
    fn replay(&self, experiment: &str, key: TrialKey) -> Option<Value> {
        let row = {
            let store = self.store.lock().expect("store mutex poisoned");
            store.replay(key).cloned()
        }?;
        self.stats
            .lock()
            .expect("stats mutex poisoned")
            .entry(experiment.to_string())
            .or_default()
            .replayed += 1;
        Some(row)
    }

    fn commit(&self, record: TrialRecord) -> Result<()> {
        let token = record.experiment.clone();
        self.store
            .lock()
            .expect("store mutex poisoned")
            .commit(record)?;
        self.stats
            .lock()
            .expect("stats mutex poisoned")
            .entry(token)
            .or_default()
            .computed += 1;
        Ok(())
    }

    fn latest_checkpoint(&self, _experiment: &str, key: TrialKey) -> Option<(u64, Value)> {
        let store = self.store.lock().expect("store mutex poisoned");
        store
            .latest_checkpoint(key)
            .map(|record| (record.tick, record.blob.clone()))
    }

    fn commit_checkpoint(&self, record: CheckpointRecord) -> Result<()> {
        self.store
            .lock()
            .expect("store mutex poisoned")
            .commit_checkpoint(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::trial_key;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("gossip-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn record(experiment: &str, fingerprint: &str, seed: u64, rounds: f64) -> TrialRecord {
        TrialRecord {
            key: trial_key(experiment, fingerprint, seed, "quick;engine=legacy"),
            experiment: experiment.to_string(),
            fingerprint: fingerprint.to_string(),
            seed,
            row: Value::Object(vec![("rounds".to_string(), Value::Number(rounds))]),
        }
    }

    #[test]
    fn commit_then_reopen_with_resume_replays() {
        let dir = temp_dir("resume");
        let mut store = RunStore::open(&dir, false).unwrap();
        let rec = record("SIM_SCALE", "chordring(n=1000)", 42, 17.0);
        store.commit(rec.clone()).unwrap();
        store
            .commit(record("SCALE", "dumbbell(half=500)", 42, 9.0))
            .unwrap();
        drop(store);

        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.replay(rec.key), Some(&rec.row));
        assert_eq!(store.committed_count("SIM_SCALE"), 1);
        assert_eq!(store.committed_count("SCALE"), 1);
        assert_eq!(
            store.replay(trial_key(
                "SIM_SCALE",
                "chordring(n=1000)",
                43,
                "quick;engine=legacy"
            )),
            None,
            "a different seed is a different trial"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_resets_a_tier_journal_at_first_commit() {
        let dir = temp_dir("fresh");
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(record("SIM_SCALE", "chordring(n=1000)", 1, 11.0))
            .unwrap();
        store
            .commit(record("SCALE", "dumbbell(half=500)", 1, 5.0))
            .unwrap();
        drop(store);

        // A fresh (non-resume) run that only touches SIM_SCALE must reset
        // that journal but leave the SCALE journal alone.
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(record("SIM_SCALE", "chordring(n=2000)", 2, 13.0))
            .unwrap();
        drop(store);

        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.committed_count("SIM_SCALE"), 1);
        assert_eq!(
            store.replay(trial_key(
                "SIM_SCALE",
                "chordring(n=1000)",
                1,
                "quick;engine=legacy"
            )),
            None,
            "the old SIM_SCALE trial was reset away"
        );
        assert_eq!(store.committed_count("SCALE"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_commits_shadow_earlier_ones() {
        let dir = temp_dir("shadow");
        let mut store = RunStore::open(&dir, false).unwrap();
        let first = record("SIM_SCALE", "chordring(n=1000)", 7, 10.0);
        let second = record("SIM_SCALE", "chordring(n=1000)", 7, 12.0);
        store.commit(first).unwrap();
        store.commit(second.clone()).unwrap();
        assert_eq!(store.replay(second.key), Some(&second.row));
        assert_eq!(store.live_records().count(), 1);
        drop(store);
        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.replay(second.key), Some(&second.row));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_sink_counts_replays_and_commits() {
        let dir = temp_dir("sink");
        let store = RunStore::open(&dir, false).unwrap();
        let sink = StoreSink::new(store);
        let rec = record("SIM_SCALE", "chordring(n=1000)", 3, 8.0);
        assert_eq!(sink.replay("SIM_SCALE", rec.key), None);
        sink.commit(rec.clone()).unwrap();
        assert_eq!(sink.replay("SIM_SCALE", rec.key), Some(rec.row.clone()));
        let stats = sink.stats();
        assert_eq!(
            stats.get("SIM_SCALE"),
            Some(&SinkStats {
                replayed: 1,
                computed: 1
            })
        );
        assert_eq!(
            sink.summary_lines(),
            vec!["run store[SIM_SCALE]: replayed 1, computed 1".to_string()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn null_sink_is_inert() {
        let sink = NullSink;
        let rec = record("SIM_SCALE", "chordring(n=1000)", 3, 8.0);
        assert_eq!(sink.replay("SIM_SCALE", rec.key), None);
        sink.commit(rec.clone()).unwrap();
        assert_eq!(sink.replay("SIM_SCALE", rec.key), None);
        assert_eq!(sink.latest_checkpoint("SIM_SCALE", rec.key), None);
        sink.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        assert_eq!(sink.latest_checkpoint("SIM_SCALE", rec.key), None);
    }

    fn checkpoint(key: TrialKey, tick: u64) -> CheckpointRecord {
        CheckpointRecord {
            key,
            experiment: "MEM_SCALE".to_string(),
            tick,
            blob: Value::Object(vec![("ticks".to_string(), Value::String(tick.to_string()))]),
        }
    }

    #[test]
    fn checkpoints_survive_reopen_until_the_trial_commits() {
        let dir = temp_dir("ckpt-resume");
        let rec = record("MEM_SCALE", "chordring(n=1000)", 42, 17.0);
        let mut store = RunStore::open(&dir, false).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 1024)).unwrap();
        drop(store);

        // A resumed store serves the newest checkpoint of the unfinished
        // trial, and its `.ckpt.jsonl` file never pollutes the trial index.
        let mut store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.replay(rec.key), None);
        assert_eq!(store.latest_checkpoint(rec.key).map(|c| c.tick), Some(1024));
        assert_eq!(store.committed_count("MEM_SCALE"), 0);

        // Committing the trial retires its checkpoints.
        store.commit(rec.clone()).unwrap();
        assert_eq!(store.latest_checkpoint(rec.key), None);
        drop(store);
        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.latest_checkpoint(rec.key), None);
        assert_eq!(store.replay(rec.key), Some(&rec.row));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_checkpoint_tail_falls_back_to_the_previous_checkpoint() {
        let dir = temp_dir("ckpt-torn");
        let rec = record("MEM_SCALE", "chordring(n=1000)", 42, 17.0);
        let mut store = RunStore::open(&dir, false).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 1024)).unwrap();
        let path = store.checkpoint_path("MEM_SCALE");
        drop(store);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.latest_checkpoint(rec.key).map(|c| c.tick), Some(512));
        assert!(store.notes().iter().any(|n| n.contains("torn checkpoint")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_only_checkpoint_falls_back_to_a_cold_start() {
        let dir = temp_dir("ckpt-cold");
        let rec = record("MEM_SCALE", "chordring(n=1000)", 42, 17.0);
        let mut store = RunStore::open(&dir, false).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        let path = store.checkpoint_path("MEM_SCALE");
        drop(store);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.latest_checkpoint(rec.key), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_resets_checkpoints_alongside_the_journal() {
        let dir = temp_dir("ckpt-fresh");
        let rec = record("MEM_SCALE", "chordring(n=1000)", 42, 17.0);
        let mut store = RunStore::open(&dir, false).unwrap();
        store.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        drop(store);

        // A fresh run's first commit of the tier wipes the stale
        // checkpoint log along with the journal.
        let mut store = RunStore::open(&dir, false).unwrap();
        store
            .commit(record("MEM_SCALE", "chordring(n=2000)", 2, 13.0))
            .unwrap();
        drop(store);
        let store = RunStore::open(&dir, true).unwrap();
        assert_eq!(store.latest_checkpoint(rec.key), None);
        assert_eq!(store.committed_count("MEM_SCALE"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_sink_round_trips_checkpoints() {
        let dir = temp_dir("ckpt-sink");
        let sink = StoreSink::new(RunStore::open(&dir, false).unwrap());
        let rec = record("MEM_SCALE", "chordring(n=1000)", 42, 17.0);
        assert_eq!(sink.latest_checkpoint("MEM_SCALE", rec.key), None);
        sink.commit_checkpoint(checkpoint(rec.key, 512)).unwrap();
        let (tick, blob) = sink.latest_checkpoint("MEM_SCALE", rec.key).unwrap();
        assert_eq!(tick, 512);
        assert_eq!(blob, checkpoint(rec.key, 512).blob);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
