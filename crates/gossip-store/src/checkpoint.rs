//! The append-only mid-run checkpoint log.
//!
//! Mid-run engine checkpoints live *next to* each tier's trial journal, in
//! `<dir>/<token lowercase>.ckpt.jsonl`, one compact JSON object per line:
//!
//! ```json
//! {"schema_version":1,"key":"4a311fffdc1e6939","experiment":"MEM_SCALE",
//!  "tick":"131072","blob":{...}}
//! ```
//!
//! `key` is the owning trial's key (see [`crate::hash::trial_key`]) and
//! `tick` is the checkpoint's global tick count as a decimal string (a
//! 64-bit value that must not squeeze through the JSON number's `f64`).
//! `blob` is the engine's own checkpoint document, stored verbatim — the
//! store does not interpret it.
//!
//! **Crash-tail semantics.**  Appends are `line + '\n'` in a single write,
//! flushed per commit, exactly like the trial journal — so the log shares
//! the journal's load policy (see [`crate::journal`]): a torn *final* line
//! is detected, dropped, and reported, and the caller truncates to the
//! valid prefix (durably — the repair fsyncs file and directory) before
//! appending again.  Losing the newest checkpoint is always safe: a resume
//! simply restores from the previous checkpoint of the same trial, or cold
//! starts if none survived.  For one trial key, a *later line always
//! supersedes an earlier one* — the log is append-only, so re-runs shadow
//! instead of edit.

use std::fs::File;
use std::path::{Path, PathBuf};

use serde::json::Value;

use crate::hash::{format_key, parse_key, TrialKey};
use crate::journal::{append_line, scan_lines, Direct};
use crate::value::ValueExt;
use crate::{Result, SCHEMA_VERSION};

/// One committed mid-run checkpoint, as stored on one log line.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// The owning trial's identity hash.
    pub key: TrialKey,
    /// The tier's CLI token, e.g. `"MEM_SCALE"`.
    pub experiment: String,
    /// The checkpoint's global tick count.
    pub tick: u64,
    /// The engine checkpoint document, stored verbatim.
    pub blob: Value,
}

impl CheckpointRecord {
    /// Renders the record as its single compact log line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let doc = Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::Number(SCHEMA_VERSION as f64),
            ),
            ("key".to_string(), Value::String(format_key(self.key))),
            (
                "experiment".to_string(),
                Value::String(self.experiment.clone()),
            ),
            ("tick".to_string(), Value::String(self.tick.to_string())),
            ("blob".to_string(), self.blob.clone()),
        ]);
        serde_json::to_string(&Direct(doc)).expect("vendored serialization is infallible")
    }

    /// Decodes one log line; the error shape matches the journal decoder
    /// (`Err(Ok(found))` for schema skew, `Err(Err(reason))` otherwise).
    fn from_line(
        line: &str,
    ) -> std::result::Result<CheckpointRecord, std::result::Result<u64, String>> {
        let doc = serde_json::from_str(line).map_err(|e| Err(e.to_string()))?;
        let version = doc
            .field_u64("schema_version")
            .ok_or_else(|| Err("missing schema_version".to_string()))?;
        if version != SCHEMA_VERSION {
            return Err(Ok(version));
        }
        let key = doc
            .field_str("key")
            .and_then(parse_key)
            .ok_or_else(|| Err("missing or malformed key".to_string()))?;
        let experiment = doc
            .field_str("experiment")
            .ok_or_else(|| Err("missing experiment".to_string()))?
            .to_string();
        let tick = doc
            .field_str("tick")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| Err("missing or malformed tick".to_string()))?;
        let blob = doc
            .get("blob")
            .ok_or_else(|| Err("missing blob".to_string()))?
            .clone();
        Ok(CheckpointRecord {
            key,
            experiment,
            tick,
            blob,
        })
    }
}

/// Result of loading a checkpoint log file.
#[derive(Debug)]
pub struct CheckpointLoad {
    /// Every fully-valid record, in file order.
    pub records: Vec<CheckpointRecord>,
    /// Byte length of the valid prefix (truncate here before appending).
    pub valid_len: u64,
    /// Why the tail was dropped, if it was.
    pub dropped_tail: Option<String>,
}

/// An append handle on one checkpoint log file (lazily opened, like
/// [`crate::journal::Journal`]).
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    file: Option<File>,
}

impl CheckpointLog {
    /// Creates an append handle (no file is touched until the first
    /// append).
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        CheckpointLog { path, file: None }
    }

    /// The checkpoint log file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<()> {
        append_line(&self.path, &mut self.file, &record.to_line())
    }

    /// Loads a checkpoint log with the journal's crash-safe tail policy.
    /// A missing file loads as empty.
    pub fn load(path: &Path) -> Result<CheckpointLoad> {
        let (records, valid_len, dropped_tail) = scan_lines(path, CheckpointRecord::from_line)?;
        Ok(CheckpointLoad {
            records,
            valid_len,
            dropped_tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::trial_key;
    use crate::journal::Journal;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "gossip-store-ckptlog-{tag}-{}.ckpt.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn record(tick: u64) -> CheckpointRecord {
        CheckpointRecord {
            key: trial_key("MEM_SCALE", "chordring(n=1000)", 42, "quick;engine=flat"),
            experiment: "MEM_SCALE".to_string(),
            tick,
            blob: Value::Object(vec![
                ("ticks".to_string(), Value::String(tick.to_string())),
                (
                    "values".to_string(),
                    Value::Array(vec![Value::String("3ff0000000000000".to_string())]),
                ),
            ]),
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let mut log = CheckpointLog::new(path.clone());
        for tick in [512, 1024, 1536] {
            log.append(&record(tick)).unwrap();
        }
        let load = CheckpointLog::load(&path).unwrap();
        assert_eq!(load.records, vec![record(512), record(1024), record(1536)]);
        assert_eq!(load.dropped_tail, None);
        assert_eq!(load.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_checkpoint_is_dropped_and_the_previous_one_survives() {
        let path = temp_path("torn");
        let mut log = CheckpointLog::new(path.clone());
        log.append(&record(512)).unwrap();
        log.append(&record(1024)).unwrap();
        drop(log);
        // Chop the newest checkpoint mid-line: a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        let load = CheckpointLog::load(&path).unwrap();
        assert_eq!(load.records, vec![record(512)]);
        assert!(load.dropped_tail.is_some());
        // The resume protocol truncates durably, then appends cleanly.
        Journal::truncate_to(&path, load.valid_len).unwrap();
        let mut log = CheckpointLog::new(path.clone());
        log.append(&record(1536)).unwrap();
        let load = CheckpointLog::load(&path).unwrap();
        assert_eq!(load.records, vec![record(512), record(1536)]);
        assert_eq!(load.dropped_tail, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blob_replays_bit_identically() {
        let path = temp_path("bitident");
        let mut rec = record(512);
        rec.blob = Value::Object(vec![(
            "time".to_string(),
            Value::String(format!("{:016x}", std::f64::consts::PI.to_bits())),
        )]);
        let mut log = CheckpointLog::new(path.clone());
        log.append(&rec).unwrap();
        let load = CheckpointLog::load(&path).unwrap();
        assert_eq!(load.records[0].to_line(), rec.to_line());
        std::fs::remove_file(&path).unwrap();
    }
}
