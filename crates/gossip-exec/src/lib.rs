//! Deterministic parallel execution of independent seeded tasks.
//!
//! Every quantity this workspace estimates — averaging times under
//! Definition 1, Theorem 1 floors, robustness slowdowns — is an aggregate
//! over **many independent seeded runs**: each run is a pure function of its
//! derived seed, so the collection is embarrassingly parallel by
//! construction.  [`Executor`] exploits that while keeping the one property
//! the repository's determinism gates depend on: **output is byte-identical
//! to the serial order, regardless of thread count or scheduling.**
//!
//! The design is deliberately minimal (std-only — the workspace is
//! vendored-only):
//!
//! * Fan-outs run on a **persistent process-wide worker pool** (see
//!   [`mod@pool`]): workers are spawned once and park between calls, so a
//!   `map_indexed` call costs a mutex round-trip rather than a spawn and
//!   join per worker.  PR-5's per-call `std::thread::scope` workers paid
//!   ~50–100 µs of spawn/teardown each, which swallowed the entire parallel
//!   gain on millisecond-scale runs — the measured ~1.0x "speedup" in the
//!   old PERF tier.
//! * Tasks are indexed `0..len`; workers pull the next index from a shared
//!   atomic counter (dynamic load balancing, so a slow run does not stall a
//!   whole stripe of fast ones).
//! * Each result is written into the slot of its **input index**; after the
//!   fan-out drains, slots are read in index order.  Which thread computed a
//!   result is therefore unobservable — ordered collection is what makes
//!   parallel output bit-equal to serial output.
//! * With one job (or one task) the executor runs inline on the caller's
//!   thread: `--jobs 1` is not merely equivalent to the old serial code, it
//!   *is* the old serial code path, short-circuiting included.
//! * Failures keep their **serial identity**: when a task errors or panics
//!   at index `i`, no task above `i` is newly claimed (already-running ones
//!   finish), tasks below `i` — which the serial loop would have reached
//!   first — still run, and the failure ultimately reported is the one with
//!   the lowest index.  The caller sees exactly the error (or re-raised
//!   panic payload, after every worker has drained) that the serial loop
//!   would have produced, without paying for the rest of the workload.
//! * [`Executor::try_map_indexed_with`] threads a lazily-created
//!   **per-worker scratch arena** through consecutive claims, so a worker
//!   that processes forty seeded runs allocates its buffers once, not forty
//!   times.
//!
//! Job-count resolution follows the workspace convention: an explicit
//! override (e.g. a `--jobs` flag) wins, then the `GOSSIP_JOBS` environment
//! variable, then [`std::thread::available_parallelism`].

// `unsafe` is denied crate-wide and allowed only inside `pool`, whose single
// audited exception (a lifetime-erased task pointer) is what lets persistent
// `'static` workers execute borrowed closures.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable consulted by [`Executor::from_env`] and
/// [`Executor::with_override`] when no explicit job count is given.
pub const JOBS_ENV_VAR: &str = "GOSSIP_JOBS";

/// Resolves the effective worker count from an optional explicit override.
///
/// Precedence: `explicit` (clamped to at least 1), then [`JOBS_ENV_VAR`],
/// then [`std::thread::available_parallelism`] (1 if even that is
/// unavailable).  A `GOSSIP_JOBS` that is set but invalid — `0`, negative,
/// or non-numeric — resolves to 1 with a one-time diagnostic on stderr; it
/// never panics and never silently falls through to a different job count.
/// An empty value is treated as unset.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    let env = std::env::var(JOBS_ENV_VAR).ok();
    let (jobs, complaint) = resolve_jobs_from(explicit, env.as_deref());
    if let Some(complaint) = complaint {
        static LOGGED: std::sync::Once = std::sync::Once::new();
        LOGGED.call_once(|| eprintln!("gossip-exec: {complaint}"));
    }
    jobs
}

/// Pure core of [`resolve_jobs`]: resolves a job count from the explicit
/// override and the raw environment value, returning the count plus an
/// optional diagnostic describing a rejected environment value.
///
/// Exposed (and tested) separately so the `GOSSIP_JOBS` edge cases — `0`,
/// non-numeric, surrounding whitespace, empty — have pinned behavior
/// without tests mutating process-global environment state.
pub fn resolve_jobs_from(explicit: Option<usize>, env: Option<&str>) -> (usize, Option<String>) {
    if let Some(jobs) = explicit {
        return (jobs.max(1), None);
    }
    match env.map(str::trim) {
        None | Some("") => (available_parallelism(), None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(jobs) if jobs >= 1 => (jobs, None),
            _ => (
                1,
                Some(format!(
                    "{JOBS_ENV_VAR}={raw:?} is not a positive integer; running with 1 job"
                )),
            ),
        },
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders a caught panic payload as a human-readable message.
///
/// `std::panic::catch_unwind` hands back a `Box<dyn Any + Send>`; in
/// practice the payload is the `&str` or `String` the `panic!` site
/// supplied.  Supervisors (the bench harness's retry loop, and anything
/// else that isolates a panicking task instead of dying with it) use this
/// one helper so journaled panic reasons render uniformly.
pub fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width view onto the persistent worker pool, with ordered result
/// collection.
///
/// The executor itself is a plain job count — cheap to copy, compare, and
/// store in configs.  The threads live in the process-wide [`mod@pool`] and
/// are shared by every executor; borrows of the caller's stack (graphs,
/// initial vectors, handler factories) flow into tasks without `'static`
/// bounds or reference counting because a fan-out call does not return
/// until every participating worker has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// Creates an executor with exactly `jobs` workers (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// Creates an executor honoring `GOSSIP_JOBS`, defaulting to
    /// [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        Self::new(resolve_jobs(None))
    }

    /// Creates an executor from an optional explicit override (see
    /// [`resolve_jobs`] for the precedence).
    pub fn with_override(explicit: Option<usize>) -> Self {
        Self::new(resolve_jobs(explicit))
    }

    /// The number of workers this executor fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Computes `f(0), f(1), …, f(len - 1)` and returns the results **in
    /// index order**, fanning the calls out over the pool's workers.
    ///
    /// `f` must be a pure function of its index for the parallel output to
    /// be byte-identical to the serial output; everything this workspace
    /// fans out (seeded simulation runs, scenario rows, sharded tick lanes)
    /// is.
    ///
    /// # Panics
    ///
    /// Re-raises the panic payload of the **lowest-index** panicking task —
    /// the one the serial loop would have hit — on the caller's thread,
    /// after every worker has drained.  Once a task panics, no task above
    /// it is newly claimed.
    pub fn map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.jobs == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        let result: Result<Vec<T>, std::convert::Infallible> =
            self.pooled(len, |_scratch: &mut Option<()>, index| Ok(f(index)));
        match result {
            Ok(values) => values,
            Err(never) => match never {},
        }
    }

    /// Fallible variant of [`Executor::map_indexed`]: returns all results in
    /// index order, or the error of the **lowest-index** failing task.
    ///
    /// This matches serial semantics exactly.  Indices are claimed in
    /// increasing order, so when a task fails at index `i`, every index
    /// below `i` has already been claimed and still runs to completion —
    /// if one of them also fails, that lower-index error wins, which is
    /// precisely the error the serial loop (stopping at its first failure)
    /// would have reported.  Tasks above the lowest failing index are no
    /// longer claimed, so a failing fan-out does not pay for the rest of
    /// the workload; results and errors of higher indices are discarded,
    /// keeping the observable outcome identical to serial.  With one job
    /// the loop short-circuits like the serial code it replaces.
    ///
    /// # Errors
    ///
    /// The error of the lowest-index failing task, if any.
    pub fn try_map_indexed<T, E, F>(&self, len: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        if self.jobs == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        self.pooled(len, |_scratch: &mut Option<()>, index| f(index))
    }

    /// Like [`Executor::try_map_indexed`], but threads a **per-worker
    /// scratch arena** through the claim loop: each participating worker
    /// calls `init` once (lazily, on its first claim) and then reuses that
    /// scratch for every index it processes.
    ///
    /// This is the allocation-churn fix for hot fan-outs: a worker that
    /// runs dozens of seeded simulations can reuse one set of value/clock
    /// buffers instead of reallocating them per derived seed.  `f` must
    /// leave the result *independent* of the scratch's prior contents (the
    /// scratch is an arena, not an accumulator) — otherwise output would
    /// depend on which worker processed which index.  Ordering, failure,
    /// and panic semantics are identical to [`Executor::try_map_indexed`].
    ///
    /// # Errors
    ///
    /// The error of the lowest-index failing task, if any.
    pub fn try_map_indexed_with<S, T, E, I, F>(
        &self,
        len: usize,
        init: I,
        f: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> Result<T, E> + Sync,
    {
        if self.jobs == 1 || len <= 1 {
            if len == 0 {
                return Ok(Vec::new());
            }
            let mut scratch = init();
            return (0..len).map(|index| f(&mut scratch, index)).collect();
        }
        self.pooled(len, f_with_init(init, f))
    }

    /// The shared fan-out: ordered slots, increasing-index claiming, and
    /// lowest-index failure tracking for both errors and panics, executed
    /// by pool workers plus the calling thread.
    fn pooled<S, T, E, F>(&self, len: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(&mut Option<S>, usize) -> Result<T, E> + Sync,
    {
        enum Failure<E> {
            Error(E),
            Panic(Box<dyn std::any::Any + Send>),
        }
        let next = AtomicUsize::new(0);
        // Lowest failing index seen so far; claims above it are skipped
        // (the serial loop would have stopped there, so those tasks are
        // unobservable and need not run).
        let failed_at = AtomicUsize::new(usize::MAX);
        let first_failure: Mutex<Option<(usize, Failure<E>)>> = Mutex::new(None);
        let note_failure = |index: usize, failure: Failure<E>| {
            failed_at.fetch_min(index, Ordering::Relaxed);
            let mut slot = first_failure
                .lock()
                .expect("failure slot lock is never poisoned: the store is infallible");
            match &*slot {
                Some((best, _)) if *best <= index => {}
                _ => *slot = Some((index, failure)),
            }
        };
        let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let participants = self.jobs.min(len);
        let claim_loop = || {
            // Per-participant scratch, created lazily inside the task
            // closure (never before the first claim, never after a
            // failure is already known).
            let mut scratch: Option<S> = None;
            loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= len {
                    break;
                }
                if index > failed_at.load(Ordering::Relaxed) {
                    continue;
                }
                // Tasks here are pure functions of their index whose
                // every failure ends in an error return or a re-raised
                // panic, so state a panic may have left behind in `f`'s
                // captures is never observed through a normal return.
                // (A panicking participant also never claims again: its
                // own index becomes the skip threshold for everything
                // above it, so a scratch the panic may have corrupted is
                // never reused.)
                match panic::catch_unwind(panic::AssertUnwindSafe(|| f(&mut scratch, index))) {
                    Ok(Ok(value)) => {
                        *slots[index].lock().expect(
                            "result slot lock is never poisoned: each slot is \
                             locked only around an infallible store",
                        ) = Some(value);
                    }
                    Ok(Err(error)) => note_failure(index, Failure::Error(error)),
                    Err(payload) => note_failure(index, Failure::Panic(payload)),
                }
            }
        };
        pool::run(participants - 1, &claim_loop);
        if let Some((_, failure)) = first_failure
            .into_inner()
            .expect("failure slot lock is never poisoned")
        {
            match failure {
                Failure::Error(error) => return Err(error),
                Failure::Panic(payload) => panic::resume_unwind(payload),
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock is never poisoned")
                    .expect("every index below len was claimed and computed")
            })
            .collect())
    }
}

/// Adapts a scratch-taking task to the `Option<S>`-scratch claim loop,
/// initializing the scratch on first use.
fn f_with_init<S, T, E, I, F>(
    init: I,
    f: F,
) -> impl Fn(&mut Option<S>, usize) -> Result<T, E> + Sync
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    move |scratch, index| f(scratch.get_or_insert_with(&init), index)
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(Executor::new(0).jobs(), 1);
        assert_eq!(Executor::new(3).jobs(), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(7)), 7);
        assert!(resolve_jobs(None) >= 1);
        assert!(Executor::from_env().jobs() >= 1);
        assert!(Executor::default().jobs() >= 1);
        assert_eq!(Executor::with_override(Some(5)).jobs(), 5);
    }

    #[test]
    fn env_jobs_resolution_has_pinned_edge_cases() {
        // Explicit override always wins, env untouched.
        assert_eq!(resolve_jobs_from(Some(3), Some("0")), (3, None));
        assert_eq!(resolve_jobs_from(Some(0), Some("8")), (1, None));
        // Valid env values (with surrounding whitespace) are honored.
        assert_eq!(resolve_jobs_from(None, Some("4")), (4, None));
        assert_eq!(resolve_jobs_from(None, Some(" 2 ")), (2, None));
        // Unset and empty fall through to available parallelism.
        let (fallback, note) = resolve_jobs_from(None, None);
        assert!(fallback >= 1);
        assert!(note.is_none());
        let (fallback, note) = resolve_jobs_from(None, Some("  "));
        assert!(fallback >= 1);
        assert!(note.is_none());
        // Set-but-invalid values clamp to 1 *with a diagnostic* — never a
        // panic, never a silent fall-through to a different width.
        for bad in ["0", "-2", "abc", "1.5", "4x", "999999999999999999999999"] {
            let (jobs, note) = resolve_jobs_from(None, Some(bad));
            assert_eq!(jobs, 1, "GOSSIP_JOBS={bad:?}");
            let note = note.expect("invalid value must produce a diagnostic");
            assert!(note.contains(JOBS_ENV_VAR), "{note}");
        }
    }

    #[test]
    fn map_preserves_input_order_at_any_job_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Executor::new(jobs).map_indexed(97, |i| i * i);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let executor = Executor::new(4);
        assert_eq!(executor.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(executor.map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_index_is_computed_exactly_once() {
        let calls = AtomicU64::new(0);
        let results = Executor::new(8).map_indexed(1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(results, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_fanouts_reuse_the_pool() {
        // Exercises the persistent pool across many consecutive calls from
        // the same executor value; results must stay ordered and complete.
        let executor = Executor::new(4);
        for round in 0..32u64 {
            let got = executor.map_indexed(64, |i| round * 1000 + i as u64);
            let expected: Vec<u64> = (0..64).map(|i| round * 1000 + i).collect();
            assert_eq!(got, expected, "round = {round}");
        }
    }

    #[test]
    fn scratch_is_reused_within_a_worker_and_results_stay_ordered() {
        let inits = AtomicU64::new(0);
        let result: Result<Vec<usize>, std::convert::Infallible> = Executor::new(4)
            .try_map_indexed_with(
                200,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u8>::with_capacity(1024)
                },
                |scratch, i| {
                    scratch.clear();
                    scratch.extend(std::iter::repeat_n(i as u8, 16));
                    Ok(scratch.len() + i)
                },
            );
        let values = result.unwrap();
        assert_eq!(values, (0..200).map(|i| 16 + i).collect::<Vec<_>>());
        // At most one scratch per participant (4 workers incl. the caller),
        // not one per index — that is the whole point of the arena.
        let created = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&created),
            "expected ≤ 4 scratch arenas for 200 tasks, got {created}"
        );
    }

    #[test]
    fn scratch_variant_matches_serial_and_short_circuits_on_error() {
        let serial: Result<Vec<u64>, String> =
            Executor::new(1).try_map_indexed_with(50, || 0u64, |_s, i| Ok(i as u64 * 3));
        let parallel: Result<Vec<u64>, String> =
            Executor::new(4).try_map_indexed_with(50, || 0u64, |_s, i| Ok(i as u64 * 3));
        assert_eq!(serial.unwrap(), parallel.unwrap());
        let failing: Result<Vec<u64>, String> = Executor::new(4).try_map_indexed_with(
            50,
            || (),
            |_s, i| {
                if i >= 9 {
                    Err(format!("task {i} failed"))
                } else {
                    Ok(i as u64)
                }
            },
        );
        assert_eq!(failing.unwrap_err(), "task 9 failed");
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let executor = Executor::new(4);
        let result: Result<Vec<usize>, String> = executor.try_map_indexed(50, |i| {
            if i == 7 || i == 31 {
                Err(format!("task {i} failed"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "task 7 failed");
        let ok: Result<Vec<usize>, String> = executor.try_map_indexed(5, Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn serial_try_map_short_circuits() {
        let calls = AtomicU64::new(0);
        let result: Result<Vec<usize>, &str> = Executor::new(1).try_map_indexed(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err("boom")
            } else {
                Ok(i)
            }
        });
        assert!(result.is_err());
        assert_eq!(
            calls.load(Ordering::Relaxed),
            4,
            "serial path stops at the error"
        );
    }

    #[test]
    fn failure_stops_claiming_higher_indices() {
        // After index 2 fails, no index above 2 is newly claimed: out of
        // 10 000 tasks, only indices ≤ 2 plus the handful already in
        // flight on other workers ever execute.
        let calls = AtomicU64::new(0);
        let result: Result<Vec<usize>, &str> = Executor::new(4).try_map_indexed(10_000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 2 {
                Err("early failure")
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "early failure");
        let executed = calls.load(Ordering::Relaxed);
        assert!(
            executed < 100,
            "claiming should stop at the failure, but {executed} tasks ran"
        );
    }

    #[test]
    fn lowest_index_failure_wins_even_when_it_finishes_last() {
        // Index 0 sleeps, index 1 fails instantly; the slow low-index
        // failure must still be the one reported, as in the serial order.
        let result: Result<Vec<usize>, String> = Executor::new(4).try_map_indexed(4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Err("failure at 0".to_string())
            } else if i == 1 {
                Err("failure at 1".to_string())
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "failure at 0");
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let caught = panic::catch_unwind(|| {
            Executor::new(4).map_indexed(16, |i| {
                if i == 5 {
                    panic!("deliberate failure in task 5");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("deliberate failure in task 5"),
            "original payload must survive: {message:?}"
        );
    }

    #[test]
    fn describe_panic_renders_common_payloads() {
        let p = panic::catch_unwind(|| panic!("static str payload")).unwrap_err();
        assert_eq!(describe_panic(p.as_ref()), "static str payload");
        let p = panic::catch_unwind(|| panic!("formatted {} payload", 7)).unwrap_err();
        assert_eq!(describe_panic(p.as_ref()), "formatted 7 payload");
        let p = panic::catch_unwind(|| panic::panic_any(42u32)).unwrap_err();
        assert_eq!(describe_panic(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn nested_fanouts_complete_with_correct_results() {
        // A fan-out inside a fan-out (the shape of a sharded simulation
        // inside a parallel estimator) must run inline on the outer
        // participants without deadlocking the single-job pool.
        let outer = Executor::new(3);
        let got = outer.map_indexed(6, |i| {
            let inner: Vec<usize> = Executor::new(3).map_indexed(5, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_results_match_serial_for_seeded_work() {
        // A stand-in for a seeded simulation run: a splitmix-style hash of
        // the index.  Serial and parallel collections must agree bitwise.
        let mix = |i: usize| {
            let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        };
        let serial = Executor::new(1).map_indexed(512, mix);
        let parallel = Executor::new(7).map_indexed(512, mix);
        assert_eq!(serial, parallel);
    }
}
