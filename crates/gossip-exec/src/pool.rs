//! The process-wide persistent worker pool behind [`crate::Executor`].
//!
//! PR-5's executor spawned fresh `std::thread::scope` workers on every
//! `map_indexed` call and joined them before returning.  That kept the API
//! borrow-friendly, but it priced every fan-out at one spawn + join per
//! worker (~50–100 µs each) — for bench families whose individual runs last
//! about a millisecond, dispatch overhead ate the entire parallel gain.
//! This module replaces the per-call scope with **one process-wide pool**
//! whose workers park on a condvar between calls, so a fan-out costs a
//! mutex round-trip instead of thread creation.
//!
//! # Design
//!
//! * Workers are spawned lazily, the first time a call needs them, and then
//!   live (parked) for the rest of the process.  The pool grows to the
//!   largest helper count ever requested and never shrinks.
//! * One job is in flight at a time (`State::busy` serializes publishers).
//!   A job is a lifetime-erased pointer to the caller's borrowed closure
//!   plus a join limit; workers that pick it up run the closure to
//!   completion (the closure contains its own index-claiming loop).
//! * The **caller participates**: it publishes the job, runs the closure
//!   inline as the `helpers + 1`-th participant, then clears the job and
//!   blocks until every joined worker has finished.  Only then does it
//!   return — which is the entire safety argument for the erased borrow.
//! * Nested fan-outs (a sharded simulation inside an already-parallel
//!   estimator, say) run inline on the calling participant: the outer job
//!   already owns every core, so nesting would only oversubscribe — and a
//!   thread-local re-entry flag keeps it deadlock-free by construction.
//!
//! Determinism is unaffected by any of this: the pool decides only *where*
//! a closure runs, and the closure's ordered result slots decide *what* is
//! observed.
//!
//! # Why `unsafe` is confined here
//!
//! The crate is `deny(unsafe_code)`; this module carries the single audited
//! exception.  Erasing the task borrow to `'static` is what lets the
//! persistent workers execute non-`'static` closures.  The invariant that
//! makes it sound is stated on [`ErasedTask`] and enforced by
//! `Pool::run_job`: the erased reference is used only between a
//! lock-protected join (`active += 1` while the job is still published) and
//! the matching `active -= 1`, and `run_job` does not return — so the
//! caller's closure cannot die — until it has observed `active == 0` after
//! unpublishing the job.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// A caller-owned task closure with its lifetime erased to `'static`.
///
/// The `'static` is a lie told to the type system; the truth that makes it
/// sound is the drain protocol in [`Pool::run_job`]: the publishing caller
/// does not return (ending the real borrow) until every worker that joined
/// the job has decremented `active` under the pool lock, and workers join
/// (copying this reference) only while the job is still published — so no
/// worker can first touch the task after the caller has left.  The pointee
/// is `Sync`, so concurrent shared calls from several threads are fine.
type ErasedTask = &'static (dyn Fn() + Sync);

/// A published fan-out: the erased task plus how many workers may join it.
struct Job {
    task: ErasedTask,
    /// Maximum number of pool workers that may join this job.
    limit: usize,
    /// Number of pool workers that have joined so far.
    joined: usize,
    /// Publish-order stamp, so a worker never re-joins a job it already ran.
    generation: u64,
}

#[derive(Default)]
struct State {
    job: Option<Job>,
    /// Monotone job counter (stamped into each published [`Job`]).
    generation: u64,
    /// Workers currently executing the published job.
    active: usize,
    /// Workers ever spawned; the pool grows lazily and never shrinks.
    spawned: usize,
    /// A caller is between publishing a job and draining its workers.
    busy: bool,
}

struct Pool {
    state: Mutex<State>,
    /// Single condvar for all transitions; every waiter re-checks its own
    /// predicate, so spurious wakeups and shared notifications are benign.
    cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True while this thread is executing a pool task (as a worker or as
    /// the participating caller).  A nested [`run`] observes it and runs
    /// inline instead of dead-locking on the single job slot.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `task` on up to `helpers` pool workers concurrently with one inline
/// invocation on the calling thread, returning only after every invocation
/// has finished.
///
/// "Up to": a worker that has not woken by the time the caller's own
/// invocation drains the work never joins — which is harmless, because the
/// task is a claim loop over a shared counter, not a partitioned slice.
/// With `helpers == 0`, or when called from inside a pool task (nested
/// fan-out), the task simply runs inline.
pub(crate) fn run(helpers: usize, task: &(dyn Fn() + Sync)) {
    if helpers == 0 || IN_POOL.with(Cell::get) {
        task();
        return;
    }
    POOL.get_or_init(Pool::new).run_job(helpers, task);
}

impl Pool {
    fn new() -> Self {
        Pool {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// Locks the pool state.  The lock is never poisoned in practice (no
    /// panic escapes a critical section), but recovering the guard keeps
    /// the pool usable even if that invariant is ever broken by a bug.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn run_job(&'static self, helpers: usize, task: &(dyn Fn() + Sync)) {
        // SAFETY: pure lifetime erasure (see `ErasedTask`).  This frame
        // outlives every dereference because it drains `active` to 0 after
        // unpublishing the job, before the real borrow of `task` ends.
        let erased: ErasedTask =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), ErasedTask>(task) };
        {
            let mut st = self.lock();
            // One publisher at a time: `busy` covers publish → drain, so a
            // second caller can neither clobber the job slot nor confuse
            // this caller's `active` accounting with its own workers.
            while st.busy {
                st = self.wait(st);
            }
            st.busy = true;
            while st.spawned < helpers {
                st.spawned += 1;
                std::thread::Builder::new()
                    .name(format!("gossip-exec-{}", st.spawned))
                    .spawn(move || self.worker())
                    .expect("spawning a pool worker thread");
            }
            st.generation += 1;
            st.job = Some(Job {
                task: erased,
                limit: helpers,
                joined: 0,
                generation: st.generation,
            });
            self.cv.notify_all();
        }
        // Participate in our own job.  The closure is catch-wrapped not
        // because it is expected to panic (the executor's claim loop
        // catches per-task panics itself) but so an unexpected unwind still
        // drains the workers below before the borrow ends.
        IN_POOL.with(|flag| flag.set(true));
        let caller_result = panic::catch_unwind(AssertUnwindSafe(task));
        IN_POOL.with(|flag| flag.set(false));
        {
            let mut st = self.lock();
            st.job = None; // no further joins
            while st.active > 0 {
                st = self.wait(st);
            }
            // All joined workers are done: the borrow of `task` may end.
            st.busy = false;
            self.cv.notify_all();
        }
        if let Err(payload) = caller_result {
            panic::resume_unwind(payload);
        }
    }

    fn worker(&'static self) {
        IN_POOL.with(|flag| flag.set(true));
        let mut last_generation = 0u64;
        let mut st = self.lock();
        loop {
            let job = match st.job.as_mut() {
                Some(job) if job.generation != last_generation && job.joined < job.limit => job,
                _ => {
                    st = self.wait(st);
                    continue;
                }
            };
            job.joined += 1;
            last_generation = job.generation;
            let task = job.task;
            st.active += 1;
            drop(st);
            // `active` was incremented under the lock while the job was
            // still published, and `run_job` waits for `active == 0` after
            // unpublishing before it returns — so the pointee is alive for
            // the entire call (see `ErasedTask`).
            let _ = panic::catch_unwind(AssertUnwindSafe(task));
            st = self.lock();
            st.active -= 1;
            if st.active == 0 {
                self.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn nested_runs_execute_inline_without_deadlock() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        super::run(2, &|| {
            outer.fetch_add(1, Ordering::Relaxed);
            super::run(2, &|| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        // Between 1 and 3 participants run the outer task (workers that
        // wake too late never join), and each runs the nested task exactly
        // once inline — no helper ever joins a nested job.
        let outer = outer.load(Ordering::Relaxed);
        let inner = inner.load(Ordering::Relaxed);
        assert!((1..=3).contains(&outer), "outer = {outer}");
        assert_eq!(inner, outer);
    }

    #[test]
    fn pool_never_spawns_more_than_the_largest_request() {
        let calls = AtomicUsize::new(0);
        for _ in 0..50 {
            super::run(2, &|| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Each call runs the task on the caller plus however many of its 2
        // helpers woke in time (instant tasks often drain caller-only).
        let calls = calls.load(Ordering::Relaxed);
        assert!((50..=150).contains(&calls), "calls = {calls}");
        // 50 calls × 2 helpers would have minted 100 threads under the old
        // per-call scoped design.  The persistent pool's worker count is
        // bounded by the largest helper count any call in this process has
        // requested — at most 63 anywhere in this test binary (the widest
        // executor test uses 64 jobs), typically far fewer.
        let spawned = super::POOL
            .get()
            .expect("pool is initialized")
            .lock()
            .spawned;
        assert!((1..=63).contains(&spawned), "spawned = {spawned}");
    }
}
