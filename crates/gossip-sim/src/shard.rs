//! Intra-run sharding: conflict-free parallel application of event batches.
//!
//! The run-level executor (`gossip-exec`) parallelizes *across* independent
//! runs; this module parallelizes *inside* one run.  The engine draws a
//! batch of edge-tick events serially (the RNG stream is inherently
//! sequential), then hands the delivered events to [`BatchPlanner`], which
//!
//! 1. assigns every event a **wavefront round** — `round(e) = 1 +
//!    max(round(u), round(v))` over the endpoints' latest rounds — so the
//!    events of one round touch pairwise-disjoint nodes and can be applied
//!    concurrently without conflicts;
//! 2. splits each round into fixed [`LANE_EVENTS`]-sized contiguous lanes
//!    and fans the lanes out over the executor, each lane applying its
//!    events through the handler's pairwise kernel and accumulating a
//!    `(Δsum, Δsum²)` moment delta in event order;
//! 3. merges the lane deltas **in lane-index order** (the executor returns
//!    ordered results), so the float schedule is a pure function of the
//!    event sequence — independent of worker count, scheduling, and timing.
//!
//! That merge-order invariant is what makes a sharded run bit-identical for
//! every shard count: `shards = 1`, `2`, and `4` execute the *same* additions
//! in the *same* order, merely on different threads.  (The schedule does
//! differ from the serial engine's one-tracker-update-per-set order, which is
//! why `SimulationConfig::shards = None` keeps the legacy loop untouched and
//! byte-stable.)
//!
//! Values live in a [`SharedValues`] array of `AtomicU64` bit patterns —
//! safe-Rust shared mutation (the crate forbids `unsafe`).  All accesses are
//! `Relaxed`: within a round, lanes write disjoint nodes and read only nodes
//! last written in earlier rounds, and the executor's join (a mutex/condvar
//! hand-off in the worker pool) provides the cross-round happens-before edge.

use crate::values::NodeValues;
use gossip_exec::Executor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Events drawn per sharded batch (the engine cuts batches earlier at
/// moment-refresh boundaries and the event cap).  Large enough that the
/// wavefront rounds of a big graph hold thousands of independent events;
/// small enough that batch-granularity stopping checks stay responsive.
pub(crate) const BATCH_TICKS: u64 = 4096;

/// Events per lane: the fixed chunk size whose boundaries define the merge
/// schedule.  Must not depend on worker count, or bit-stability across shard
/// counts would break.
const LANE_EVENTS: usize = 128;

/// Rounds smaller than this are applied inline by the calling thread (same
/// lane arithmetic, no dispatch) — fanning out a handful of events costs
/// more than it saves.  Depends only on the round size, so the cutover is
/// deterministic.
const MIN_PARALLEL_EVENTS: usize = 256;

/// The node state as shared atomic bit patterns, so lanes on several workers
/// can update disjoint nodes of one vector without locks or `unsafe`.
pub(crate) struct SharedValues {
    bits: Vec<AtomicU64>,
}

impl SharedValues {
    pub(crate) fn from_values(values: &NodeValues) -> Self {
        SharedValues {
            bits: values
                .as_slice()
                .iter()
                .map(|v| AtomicU64::new(v.to_bits()))
                .collect(),
        }
    }

    /// Reads one node.  `pub(crate)` so the engine can classify and apply
    /// adversary-involved contacts serially between parallel batches.
    #[inline]
    pub(crate) fn get(&self, node: usize) -> f64 {
        f64::from_bits(self.bits[node].load(Ordering::Relaxed))
    }

    /// Writes one node (see [`Self::get`] for the `pub(crate)` rationale).
    #[inline]
    pub(crate) fn set(&self, node: usize, value: f64) {
        self.bits[node].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Snapshots the current values into `out` (cleared first).
    pub(crate) fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.bits
                .iter()
                .map(|b| f64::from_bits(b.load(Ordering::Relaxed))),
        );
    }
}

/// Reusable per-run planner: computes wavefront rounds for a batch of
/// delivered events and applies them lane-parallel.
pub(crate) struct BatchPlanner {
    /// Delivered events of the current batch as `(u, v)` node indices, in
    /// draw order.
    events: Vec<(u32, u32)>,
    /// Wavefront round of each event (parallel to `events`; rounds start
    /// at 1).
    rounds: Vec<u32>,
    /// Highest round assigned in the current batch.
    max_round: usize,
    /// Epoch stamp per node: `node_round` is valid only where the stamp
    /// matches the current batch epoch, making `clear` O(1) in `n`.
    node_epoch: Vec<u64>,
    node_round: Vec<u32>,
    epoch: u64,
    /// Events regrouped by round (draw order preserved within a round).
    ordered: Vec<(u32, u32)>,
    /// `ordered[offsets[r]..offsets[r + 1]]` is round `r`.
    offsets: Vec<usize>,
    /// Counting-sort workspace (counts, then scatter cursors).
    cursors: Vec<usize>,
}

impl BatchPlanner {
    pub(crate) fn new(nodes: usize) -> Self {
        BatchPlanner {
            events: Vec::new(),
            rounds: Vec::new(),
            max_round: 0,
            node_epoch: vec![0; nodes],
            node_round: vec![0; nodes],
            epoch: 0,
            ordered: Vec::new(),
            offsets: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// Starts a new batch, forgetting all per-node round state.
    pub(crate) fn clear(&mut self) {
        self.epoch += 1;
        self.events.clear();
        self.rounds.clear();
        self.max_round = 0;
    }

    /// Records a delivered event and assigns its wavefront round.
    pub(crate) fn push(&mut self, u: usize, v: usize) {
        let round_u = if self.node_epoch[u] == self.epoch {
            self.node_round[u]
        } else {
            0
        };
        let round_v = if self.node_epoch[v] == self.epoch {
            self.node_round[v]
        } else {
            0
        };
        let round = 1 + round_u.max(round_v);
        self.node_epoch[u] = self.epoch;
        self.node_round[u] = round;
        self.node_epoch[v] = self.epoch;
        self.node_round[v] = round;
        self.events.push((u as u32, v as u32));
        self.rounds.push(round);
        self.max_round = self.max_round.max(round as usize);
    }

    /// Number of delivered events recorded since the last [`Self::clear`].
    #[cfg(test)]
    fn len(&self) -> usize {
        self.events.len()
    }

    /// Applies the batch round by round, each round lane-parallel over
    /// `executor`, and returns the accumulated `(Δsum, Δsum²)` relative to
    /// `shift` — merged in (round, lane, event) order, so the result is
    /// bit-identical for every worker count.
    pub(crate) fn apply(
        &mut self,
        executor: &Executor,
        values: &SharedValues,
        kernel: fn(f64, f64) -> (f64, f64),
        shift: f64,
    ) -> (f64, f64) {
        // Counting sort by round, stable in draw order.
        self.cursors.clear();
        self.cursors.resize(self.max_round + 1, 0);
        for &round in &self.rounds {
            self.cursors[round as usize] += 1;
        }
        self.offsets.clear();
        self.offsets.resize(self.max_round + 2, 0);
        for round in 1..=self.max_round {
            self.offsets[round + 1] = self.offsets[round] + self.cursors[round];
        }
        self.cursors[..].copy_from_slice(&self.offsets[..self.max_round + 1]);
        self.ordered.clear();
        self.ordered.resize(self.events.len(), (0, 0));
        for (index, &event) in self.events.iter().enumerate() {
            let round = self.rounds[index] as usize;
            self.ordered[self.cursors[round]] = event;
            self.cursors[round] += 1;
        }

        let mut d_sum = 0.0;
        let mut d_sum_sq = 0.0;
        for round in 1..=self.max_round {
            let span = &self.ordered[self.offsets[round]..self.offsets[round + 1]];
            let lanes = span.len().div_ceil(LANE_EVENTS);
            if span.len() < MIN_PARALLEL_EVENTS || executor.jobs() == 1 {
                for lane in 0..lanes {
                    let (a, b) = apply_lane(span, lane, values, kernel, shift);
                    d_sum += a;
                    d_sum_sq += b;
                }
            } else {
                for (a, b) in executor
                    .map_indexed(lanes, |lane| apply_lane(span, lane, values, kernel, shift))
                {
                    d_sum += a;
                    d_sum_sq += b;
                }
            }
        }
        (d_sum, d_sum_sq)
    }
}

/// Applies one lane of a round and returns its `(Δsum, Δsum²)` partial,
/// accumulated in event order with exactly `MomentTracker::record_update`'s
/// per-entry arithmetic.
fn apply_lane(
    span: &[(u32, u32)],
    lane: usize,
    values: &SharedValues,
    kernel: fn(f64, f64) -> (f64, f64),
    shift: f64,
) -> (f64, f64) {
    let start = lane * LANE_EVENTS;
    let end = (start + LANE_EVENTS).min(span.len());
    let mut d_sum = 0.0;
    let mut d_sum_sq = 0.0;
    for &(u, v) in &span[start..end] {
        let (u, v) = (u as usize, v as usize);
        let xu = values.get(u);
        let xv = values.get(v);
        let (nu, nv) = kernel(xu, xv);
        values.set(u, nu);
        values.set(v, nv);
        let d_old = xu - shift;
        let d_new = nu - shift;
        d_sum += d_new - d_old;
        d_sum_sq += d_new * d_new - d_old * d_old;
        let d_old = xv - shift;
        let d_new = nv - shift;
        d_sum += d_new - d_old;
        d_sum_sq += d_new * d_new - d_old * d_old;
    }
    (d_sum, d_sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn average_kernel() -> fn(f64, f64) -> (f64, f64) {
        |xu, xv| {
            let avg = 0.5 * (xu + xv);
            (avg, avg)
        }
    }

    #[test]
    fn wavefront_rounds_chain_on_shared_nodes() {
        let mut planner = BatchPlanner::new(6);
        planner.clear();
        planner.push(0, 1); // round 1
        planner.push(2, 3); // round 1 (disjoint)
        planner.push(1, 2); // round 2 (touches both chains)
        planner.push(4, 5); // round 1
        planner.push(1, 4); // round 3 (1 is at round 2, 4 at round 1)
        assert_eq!(planner.rounds, vec![1, 1, 2, 1, 3]);
        assert_eq!(planner.max_round, 3);
        // A new batch forgets all node rounds in O(1).
        planner.clear();
        assert_eq!(planner.len(), 0);
        planner.push(1, 2);
        assert_eq!(planner.rounds, vec![1]);
    }

    #[test]
    fn apply_matches_a_serial_replay_bitwise_at_any_job_count() {
        // A deterministic pseudo-random event sequence over 32 nodes, long
        // enough to span several rounds and lanes; the sharded application
        // must produce the exact same values and moment deltas as replaying
        // the planner's (round, lane, event) schedule by hand — at every
        // worker count.
        let nodes = 32;
        let initial: Vec<f64> = (0..nodes).map(|i| (i as f64 * 0.73).sin()).collect();
        let events: Vec<(usize, usize)> = (0..1500usize)
            .map(|i| {
                let u = (i * 7 + i * i * 3) % nodes;
                let v = (u + 1 + (i * 5) % (nodes - 1)) % nodes;
                (u.min(v), u.max(v))
            })
            .filter(|(u, v)| u != v)
            .collect();
        let shift = 0.1875;

        let run = |jobs: usize| {
            let executor = Executor::new(jobs);
            let state = NodeValues::from_values(initial.clone()).unwrap();
            let shared = SharedValues::from_values(&state);
            let mut planner = BatchPlanner::new(nodes);
            planner.clear();
            for &(u, v) in &events {
                planner.push(u, v);
            }
            let delta = planner.apply(&executor, &shared, average_kernel(), shift);
            let mut out = Vec::new();
            shared.snapshot_into(&mut out);
            (delta, out)
        };

        let (delta_1, values_1) = run(1);
        for jobs in [2, 4] {
            let (delta_n, values_n) = run(jobs);
            assert_eq!(delta_1.0.to_bits(), delta_n.0.to_bits(), "jobs = {jobs}");
            assert_eq!(delta_1.1.to_bits(), delta_n.1.to_bits(), "jobs = {jobs}");
            for (a, b) in values_1.iter().zip(values_n.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs = {jobs}");
            }
        }

        // Reference replay: same schedule, applied serially by hand.
        let mut reference = initial.clone();
        let mut planner = BatchPlanner::new(nodes);
        planner.clear();
        for &(u, v) in &events {
            planner.push(u, v);
        }
        // Regroup by round exactly as the planner does.
        let mut by_round: Vec<Vec<(usize, usize)>> = vec![Vec::new(); planner.max_round + 1];
        for (i, &(u, v)) in planner.events.iter().enumerate() {
            by_round[planner.rounds[i] as usize].push((u as usize, v as usize));
        }
        let kernel = average_kernel();
        let (mut d_sum, mut d_sq) = (0.0, 0.0);
        for round in by_round.iter().skip(1) {
            // Within a round, lanes of 128 accumulate locally, merged in
            // lane order.
            for lane in round.chunks(LANE_EVENTS) {
                let (mut lane_sum, mut lane_sq) = (0.0, 0.0);
                for &(u, v) in lane {
                    let (xu, xv) = (reference[u], reference[v]);
                    let (nu, nv) = kernel(xu, xv);
                    reference[u] = nu;
                    reference[v] = nv;
                    for (old, new) in [(xu, nu), (xv, nv)] {
                        let d_old = old - shift;
                        let d_new = new - shift;
                        lane_sum += d_new - d_old;
                        lane_sq += d_new * d_new - d_old * d_old;
                    }
                }
                d_sum += lane_sum;
                d_sq += lane_sq;
            }
        }
        assert_eq!(delta_1.0.to_bits(), d_sum.to_bits());
        assert_eq!(delta_1.1.to_bits(), d_sq.to_bits());
        for (a, b) in values_1.iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rounds_within_a_batch_are_node_disjoint() {
        let nodes = 16;
        let mut planner = BatchPlanner::new(nodes);
        planner.clear();
        for i in 0..400usize {
            let u = (i * 11) % nodes;
            let v = (i * 11 + 1 + i % (nodes - 1)) % nodes;
            if u != v {
                planner.push(u, v);
            }
        }
        let mut seen_in_round = vec![std::collections::HashSet::new(); planner.max_round + 1];
        for (i, &(u, v)) in planner.events.iter().enumerate() {
            let round = planner.rounds[i] as usize;
            assert!(seen_in_round[round].insert(u), "node {u} twice in {round}");
            assert!(seen_in_round[round].insert(v), "node {v} twice in {round}");
        }
    }
}
