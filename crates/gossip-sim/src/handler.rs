//! The algorithm interface: what happens when an edge clock ticks.
//!
//! A gossip algorithm, in the paper's sense, is a rule that — at the tick of
//! edge `e = (v, w)` — updates the values of the incident vertices based on
//! present (and possibly past) values of `v`, `w`, and their neighbours.
//! [`EdgeTickHandler::on_edge_tick`] receives the mutable state plus an
//! [`EdgeTickContext`] carrying everything the rule is allowed to look at:
//! the edge, the time, the per-edge tick counter (Algorithm A's schedule is
//! phrased in terms of "the `k`-th tick of `e_c`"), and the graph for
//! neighbourhood queries.

use crate::values::NodeValues;
use gossip_graph::{Edge, EdgeId, Graph};

/// A pure endpoint update `(x_u, x_v) → (x_u', x_v')`.
///
/// See [`EdgeTickHandler::pairwise_kernel`] for the contract a handler takes
/// on by exposing one.
pub type PairwiseKernel = fn(f64, f64) -> (f64, f64);

/// Everything an update rule may consult when an edge ticks.
#[derive(Debug, Clone, Copy)]
pub struct EdgeTickContext<'a> {
    /// The graph being averaged over.
    pub graph: &'a Graph,
    /// The edge whose clock ticked.
    pub edge: Edge,
    /// Identifier of the ticking edge.
    pub edge_id: EdgeId,
    /// Absolute (continuous) time of the tick.
    pub time: f64,
    /// How many times this edge has ticked so far, including this tick
    /// (the paper's `k`).
    pub edge_tick_count: u64,
    /// How many edge ticks have occurred in total, including this one.
    pub global_tick_count: u64,
}

/// An asynchronous gossip update rule.
///
/// Implementations mutate `values` in place.  Linear, mass-conserving rules
/// (everything studied in the paper) keep `values.sum()` exactly constant;
/// the simulator's tests verify this for all bundled algorithms.
pub trait EdgeTickHandler {
    /// Applies the update for one tick of `ctx.edge`.
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>);

    /// A short human-readable name used in traces and experiment tables.
    fn name(&self) -> &str {
        "unnamed"
    }

    /// The update as a pure endpoint function `(x_u, x_v) → (x_u', x_v')`,
    /// when the rule has one.
    ///
    /// Returning `Some` asserts the handler is **stateless and memoryless**:
    /// the tick's effect depends only on the two incident values — not on
    /// the context, internal handler state, or other nodes — and applying
    /// the kernel is observably identical to calling
    /// [`Self::on_edge_tick`].  The sharded engine
    /// (`SimulationConfig::shards`) applies conflict-free event batches
    /// through this kernel; handlers that return `None` (the default) make
    /// the engine fall back to the serial per-tick loop.
    fn pairwise_kernel(&self) -> Option<PairwiseKernel> {
        None
    }
}

impl<T: EdgeTickHandler + ?Sized> EdgeTickHandler for &mut T {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        (**self).on_edge_tick(values, ctx);
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn pairwise_kernel(&self) -> Option<PairwiseKernel> {
        (**self).pairwise_kernel()
    }
}

impl<T: EdgeTickHandler + ?Sized> EdgeTickHandler for Box<T> {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        (**self).on_edge_tick(values, ctx);
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn pairwise_kernel(&self) -> Option<PairwiseKernel> {
        (**self).pairwise_kernel()
    }
}

/// A handler that does nothing.  Useful as a baseline and in tests of the
/// driver machinery itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpHandler;

impl EdgeTickHandler for NoOpHandler {
    fn on_edge_tick(&mut self, _values: &mut NodeValues, _ctx: &EdgeTickContext<'_>) {}

    fn name(&self) -> &str {
        "no-op"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::path;
    use gossip_graph::NodeId;

    struct Recorder {
        seen: Vec<(EdgeId, u64)>,
    }

    impl EdgeTickHandler for Recorder {
        fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
            self.seen.push((ctx.edge_id, ctx.edge_tick_count));
            let (u, v) = ctx.edge.endpoints();
            values.average_pair(u, v);
        }

        fn name(&self) -> &str {
            "recorder"
        }
    }

    #[test]
    fn context_fields_are_passed_through() {
        let graph = path(3).unwrap();
        let mut values = NodeValues::from_values(vec![2.0, 0.0, 0.0]).unwrap();
        let edge_id = EdgeId(0);
        let edge = graph.edge(edge_id).unwrap();
        let ctx = EdgeTickContext {
            graph: &graph,
            edge,
            edge_id,
            time: 1.5,
            edge_tick_count: 3,
            global_tick_count: 10,
        };
        let mut recorder = Recorder { seen: Vec::new() };
        recorder.on_edge_tick(&mut values, &ctx);
        assert_eq!(recorder.seen, vec![(edge_id, 3)]);
        assert_eq!(values.get(NodeId(0)), 1.0);
        assert_eq!(values.get(NodeId(1)), 1.0);
        assert_eq!(recorder.name(), "recorder");
    }

    #[test]
    fn noop_handler_leaves_state_unchanged() {
        let graph = path(2).unwrap();
        let mut values = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        let ctx = EdgeTickContext {
            graph: &graph,
            edge: graph.edge(EdgeId(0)).unwrap(),
            edge_id: EdgeId(0),
            time: 0.1,
            edge_tick_count: 1,
            global_tick_count: 1,
        };
        let mut handler = NoOpHandler;
        handler.on_edge_tick(&mut values, &ctx);
        assert_eq!(values.as_slice(), &[1.0, -1.0]);
        assert_eq!(handler.name(), "no-op");
    }

    #[test]
    fn blanket_impls_delegate() {
        let graph = path(2).unwrap();
        let mut values = NodeValues::from_values(vec![3.0, 1.0]).unwrap();
        let ctx = EdgeTickContext {
            graph: &graph,
            edge: graph.edge(EdgeId(0)).unwrap(),
            edge_id: EdgeId(0),
            time: 0.2,
            edge_tick_count: 1,
            global_tick_count: 1,
        };
        let mut inner = Recorder { seen: Vec::new() };
        {
            let mut by_ref: &mut Recorder = &mut inner;
            <&mut Recorder as EdgeTickHandler>::on_edge_tick(&mut by_ref, &mut values, &ctx);
            assert_eq!(
                <&mut Recorder as EdgeTickHandler>::name(&by_ref),
                "recorder"
            );
        }
        assert_eq!(inner.seen.len(), 1);

        let mut boxed: Box<dyn EdgeTickHandler> = Box::new(NoOpHandler);
        boxed.on_edge_tick(&mut values, &ctx);
        assert_eq!(boxed.name(), "no-op");
        assert_eq!(values.as_slice(), &[2.0, 2.0]);
    }
}
