//! Crash-consistent mid-run checkpoints of the asynchronous engine.
//!
//! An [`EngineCheckpoint`] captures, at a deterministic tick boundary, every
//! piece of state a resumed run needs to be **bit-identical** to the
//! uninterrupted one: the value vector, the moment tracker's shifted running
//! sums (drift and all), the keystream positions of the clock / fault /
//! adversary ChaCha8 streams together with their unconsumed batch buffers,
//! the edge-clock queue, the injector counters and stale-replay histories,
//! and the engine-side stop/settling bookkeeping.  The stopping rule itself
//! is pure (see [`crate::stopping`]) and is reconstructed from the
//! [`SimulationConfig`] on restore.
//!
//! Capture is driven by [`SimulationConfig::checkpoint_every_ticks`] through
//! [`AsyncSimulator::run_with_checkpoints`]; restore goes through
//! [`AsyncSimulator::restore`], which validates that the checkpoint matches
//! the graph and configuration before installing any state.
//!
//! Serialization is explicit and lossless: [`EngineCheckpoint::to_value`]
//! renders a JSON document in which every `f64` is stored as the hex of its
//! bit pattern and every 64/128-bit integer as a decimal string (the JSON
//! number type cannot carry either exactly), and
//! [`EngineCheckpoint::from_value`] parses it back, rejecting anything
//! malformed with [`SimError::CheckpointInvalid`] — a torn or corrupt blob
//! is detected, never silently half-applied.
//!
//! [`AsyncSimulator`]: crate::engine::AsyncSimulator
//! [`AsyncSimulator::run_with_checkpoints`]: crate::engine::AsyncSimulator::run_with_checkpoints
//! [`AsyncSimulator::restore`]: crate::engine::AsyncSimulator::restore
//! [`SimulationConfig`]: crate::engine::SimulationConfig
//! [`SimulationConfig::checkpoint_every_ticks`]: crate::engine::SimulationConfig::checkpoint_every_ticks

use crate::adversary::{AdversaryInjectorState, AdversaryStats};
use crate::clock::{EdgeClockQueueState, GlobalTickProcessState};
use crate::engine::ClockModel;
use crate::fault::{FaultInjectorState, FaultStats};
use crate::{Result, SimError};
use serde::json::Value;

/// Version stamp of the checkpoint document layout.  Bumped on any change to
/// the field set or encodings; a blob with a different version is rejected
/// (a checkpoint is a bit-exact machine state, not a migratable record).
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Checkpointed state of one tick sampler (mirrors
/// [`crate::engine`]'s internal sampler dispatch).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SamplerState {
    /// Per-edge exponential clock queue.
    Queue(EdgeClockQueueState),
    /// Global rate-`|E|` process.
    Global(GlobalTickProcessState),
}

/// A crash-consistent snapshot of a mid-flight [`AsyncSimulator`] run.
///
/// Opaque outside the crate: consumers treat it as a blob keyed by
/// [`Self::tick`], moving it to and from storage via [`Self::to_value`] /
/// [`Self::from_value`] and handing it back to
/// [`AsyncSimulator::restore`].
///
/// Handler state is **not** captured: checkpointing targets the stateless /
/// pairwise-kernel handlers the bench tiers run (the same restriction the
/// sharded and flat engines already impose).  Restoring a run whose handler
/// carries evolving internal state resumes that handler from its initial
/// state.
///
/// [`AsyncSimulator`]: crate::engine::AsyncSimulator
/// [`AsyncSimulator::restore`]: crate::engine::AsyncSimulator::restore
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Global tick count at capture (the checkpoint boundary).
    pub(crate) ticks: u64,
    /// Simulated time of the last delivered tick.
    pub(crate) time: f64,
    /// Seed the run was configured with (identity check on restore).
    pub(crate) seed: u64,
    /// Clock model of the run (identity check on restore).
    pub(crate) clock_model: ClockModel,
    /// Node count of the graph (identity check on restore).
    pub(crate) node_count: usize,
    /// Edge count of the graph (identity check on restore).
    pub(crate) edge_count: usize,
    /// The value vector, bit-exact.
    pub(crate) values: Vec<f64>,
    /// Moment tracker raw parts `(len, shift, sum, sum_sq, refreshes)` —
    /// the *drifted* running sums, not a rebuild.
    pub(crate) moments: (usize, f64, f64, f64, u64),
    /// Variance of the initial state (denominator of every ratio check).
    pub(crate) initial_variance: f64,
    /// Engine-side settling bookkeeping.
    pub(crate) last_settle: f64,
    /// Exact O(n) refreshes performed so far.
    pub(crate) moment_refreshes: u64,
    /// Whether the tracker was in the squared-deviation-overflow regime.
    pub(crate) moments_overflowed: bool,
    /// The tick sampler's full resumable state.
    pub(crate) sampler: SamplerState,
    /// Fault injector stream position and counters, when a plan is active.
    pub(crate) faults: Option<FaultInjectorState>,
    /// Adversary stream position, counters and replay histories, when a
    /// plan is active.
    pub(crate) adversary: Option<AdversaryInjectorState>,
}

impl EngineCheckpoint {
    /// The global tick count at which this checkpoint was captured.
    pub fn tick(&self) -> u64 {
        self.ticks
    }

    /// The simulated time at which this checkpoint was captured.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The seed of the run this checkpoint belongs to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Renders the checkpoint as a JSON document (see the module docs for
    /// the encoding rules).
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            (
                "version".into(),
                Value::Number(CHECKPOINT_SCHEMA_VERSION as f64),
            ),
            ("ticks".into(), u64_value(self.ticks)),
            ("time".into(), f64_value(self.time)),
            ("seed".into(), u64_value(self.seed)),
            (
                "clock_model".into(),
                Value::String(
                    match self.clock_model {
                        ClockModel::PerEdgeQueue => "per_edge_queue",
                        ClockModel::GlobalUniform => "global_uniform",
                    }
                    .into(),
                ),
            ),
            ("node_count".into(), Value::Number(self.node_count as f64)),
            ("edge_count".into(), Value::Number(self.edge_count as f64)),
            (
                "values".into(),
                Value::Array(self.values.iter().map(|&v| f64_value(v)).collect()),
            ),
            (
                "moments".into(),
                Value::Object(vec![
                    ("len".into(), Value::Number(self.moments.0 as f64)),
                    ("shift".into(), f64_value(self.moments.1)),
                    ("sum".into(), f64_value(self.moments.2)),
                    ("sum_sq".into(), f64_value(self.moments.3)),
                    ("refreshes".into(), u64_value(self.moments.4)),
                ]),
            ),
            ("initial_variance".into(), f64_value(self.initial_variance)),
            ("last_settle".into(), f64_value(self.last_settle)),
            ("moment_refreshes".into(), u64_value(self.moment_refreshes)),
            (
                "moments_overflowed".into(),
                Value::Bool(self.moments_overflowed),
            ),
            ("sampler".into(), sampler_value(&self.sampler)),
        ];
        fields.push((
            "faults".into(),
            match &self.faults {
                Some(state) => fault_state_value(state),
                None => Value::Null,
            },
        ));
        fields.push((
            "adversary".into(),
            match &self.adversary {
                Some(state) => adversary_state_value(state),
                None => Value::Null,
            },
        ));
        Value::Object(fields)
    }

    /// Parses a checkpoint back out of a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointInvalid`] for any structural problem:
    /// wrong schema version, missing or mistyped fields, or unparseable
    /// encodings.  Inconsistencies with the *target run* (seed, graph shape,
    /// clock model, plans) are caught later by
    /// [`AsyncSimulator::restore`](crate::engine::AsyncSimulator::restore).
    pub fn from_value(value: &Value) -> Result<Self> {
        let obj = as_object(value, "checkpoint")?;
        let version = get_usize(obj, "version")?;
        if version != CHECKPOINT_SCHEMA_VERSION as usize {
            return Err(invalid(format!(
                "unsupported checkpoint schema version {version} (expected {CHECKPOINT_SCHEMA_VERSION})"
            )));
        }
        let clock_model = match get_str(obj, "clock_model")? {
            "per_edge_queue" => ClockModel::PerEdgeQueue,
            "global_uniform" => ClockModel::GlobalUniform,
            other => return Err(invalid(format!("unknown clock model {other:?}"))),
        };
        let values = as_array(get(obj, "values")?, "values")?
            .iter()
            .map(|v| value_f64(v, "values entry"))
            .collect::<Result<Vec<f64>>>()?;
        let moments_obj = as_object(get(obj, "moments")?, "moments")?;
        let moments = (
            get_usize(moments_obj, "len")?,
            get_f64(moments_obj, "shift")?,
            get_f64(moments_obj, "sum")?,
            get_f64(moments_obj, "sum_sq")?,
            get_u64(moments_obj, "refreshes")?,
        );
        let sampler = parse_sampler(get(obj, "sampler")?)?;
        let faults = match get(obj, "faults")? {
            Value::Null => None,
            other => Some(parse_fault_state(other)?),
        };
        let adversary = match get(obj, "adversary")? {
            Value::Null => None,
            other => Some(parse_adversary_state(other)?),
        };
        Ok(EngineCheckpoint {
            ticks: get_u64(obj, "ticks")?,
            time: get_f64(obj, "time")?,
            seed: get_u64(obj, "seed")?,
            clock_model,
            node_count: get_usize(obj, "node_count")?,
            edge_count: get_usize(obj, "edge_count")?,
            values,
            moments,
            initial_variance: get_f64(obj, "initial_variance")?,
            last_settle: get_f64(obj, "last_settle")?,
            moment_refreshes: get_u64(obj, "moment_refreshes")?,
            moments_overflowed: get_bool(obj, "moments_overflowed")?,
            sampler,
            faults,
            adversary,
        })
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers.  f64s carry their exact bit pattern as 16 hex digits;
// u64/u128 are decimal strings (JSON numbers are f64 in the vendored parser
// and would silently round anything above 2^53).

fn f64_value(v: f64) -> Value {
    Value::String(format!("{:016x}", v.to_bits()))
}

fn u64_value(v: u64) -> Value {
    Value::String(v.to_string())
}

fn u128_value(v: u128) -> Value {
    Value::String(v.to_string())
}

fn invalid(reason: String) -> SimError {
    SimError::CheckpointInvalid { reason }
}

fn as_object<'v>(value: &'v Value, ctx: &str) -> Result<&'v [(String, Value)]> {
    match value {
        Value::Object(fields) => Ok(fields),
        _ => Err(invalid(format!("{ctx} is not an object"))),
    }
}

fn as_array<'v>(value: &'v Value, ctx: &str) -> Result<&'v [Value]> {
    match value {
        Value::Array(items) => Ok(items),
        _ => Err(invalid(format!("{ctx} is not an array"))),
    }
}

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| invalid(format!("missing field {key:?}")))
}

fn get_str<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v str> {
    match get(obj, key)? {
        Value::String(s) => Ok(s),
        _ => Err(invalid(format!("field {key:?} is not a string"))),
    }
}

fn value_f64(value: &Value, ctx: &str) -> Result<f64> {
    match value {
        Value::String(s) => u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| invalid(format!("{ctx} is not a 16-hex f64 bit pattern"))),
        _ => Err(invalid(format!("{ctx} is not a string"))),
    }
}

fn value_u64(value: &Value, ctx: &str) -> Result<u64> {
    match value {
        Value::String(s) => s
            .parse::<u64>()
            .map_err(|_| invalid(format!("{ctx} is not a decimal u64"))),
        _ => Err(invalid(format!("{ctx} is not a string"))),
    }
}

fn value_usize(value: &Value, ctx: &str) -> Result<usize> {
    match value {
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Ok(*n as usize),
        _ => Err(invalid(format!("{ctx} is not a non-negative integer"))),
    }
}

fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64> {
    value_f64(get(obj, key)?, key)
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64> {
    value_u64(get(obj, key)?, key)
}

fn get_u128(obj: &[(String, Value)], key: &str) -> Result<u128> {
    match get(obj, key)? {
        Value::String(s) => s
            .parse::<u128>()
            .map_err(|_| invalid(format!("field {key:?} is not a decimal u128"))),
        _ => Err(invalid(format!("field {key:?} is not a string"))),
    }
}

fn get_usize(obj: &[(String, Value)], key: &str) -> Result<usize> {
    value_usize(get(obj, key)?, key)
}

fn get_bool(obj: &[(String, Value)], key: &str) -> Result<bool> {
    match get(obj, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(invalid(format!("field {key:?} is not a bool"))),
    }
}

fn counts_value(counts: &[u64]) -> Value {
    Value::Array(counts.iter().map(|&c| u64_value(c)).collect())
}

fn parse_counts(value: &Value, ctx: &str) -> Result<Vec<u64>> {
    as_array(value, ctx)?
        .iter()
        .map(|v| value_u64(v, ctx))
        .collect()
}

/// `(f64, usize)` pairs — queue entries and global-batch draws share the
/// shape.
fn pairs_value(pairs: &[(f64, usize)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(x, i)| Value::Array(vec![f64_value(x), Value::Number(i as f64)]))
            .collect(),
    )
}

fn parse_pairs(value: &Value, ctx: &str) -> Result<Vec<(f64, usize)>> {
    as_array(value, ctx)?
        .iter()
        .map(|entry| {
            let pair = as_array(entry, ctx)?;
            if pair.len() != 2 {
                return Err(invalid(format!("{ctx} entry is not a 2-element array")));
            }
            Ok((value_f64(&pair[0], ctx)?, value_usize(&pair[1], ctx)?))
        })
        .collect()
}

fn sampler_value(state: &SamplerState) -> Value {
    match state {
        SamplerState::Queue(q) => Value::Object(vec![
            ("kind".into(), Value::String("queue".into())),
            ("entries".into(), pairs_value(&q.entries)),
            ("rng_word_pos".into(), u128_value(q.rng_word_pos)),
            ("edge_tick_counts".into(), counts_value(&q.edge_tick_counts)),
            ("global_tick_count".into(), u64_value(q.global_tick_count)),
            ("now".into(), f64_value(q.now)),
            ("rate".into(), f64_value(q.rate)),
        ]),
        SamplerState::Global(g) => Value::Object(vec![
            ("kind".into(), Value::String("global".into())),
            ("rng_word_pos".into(), u128_value(g.rng_word_pos)),
            ("edge_count".into(), Value::Number(g.edge_count as f64)),
            ("edge_tick_counts".into(), counts_value(&g.edge_tick_counts)),
            ("global_tick_count".into(), u64_value(g.global_tick_count)),
            ("now".into(), f64_value(g.now)),
            ("batch_tail".into(), pairs_value(&g.batch_tail)),
            (
                "batch_capacity".into(),
                Value::Number(g.batch_capacity as f64),
            ),
        ]),
    }
}

fn parse_sampler(value: &Value) -> Result<SamplerState> {
    let obj = as_object(value, "sampler")?;
    match get_str(obj, "kind")? {
        "queue" => Ok(SamplerState::Queue(EdgeClockQueueState {
            entries: parse_pairs(get(obj, "entries")?, "sampler entries")?,
            rng_word_pos: get_u128(obj, "rng_word_pos")?,
            edge_tick_counts: parse_counts(get(obj, "edge_tick_counts")?, "edge_tick_counts")?,
            global_tick_count: get_u64(obj, "global_tick_count")?,
            now: get_f64(obj, "now")?,
            rate: get_f64(obj, "rate")?,
        })),
        "global" => Ok(SamplerState::Global(GlobalTickProcessState {
            rng_word_pos: get_u128(obj, "rng_word_pos")?,
            edge_count: get_usize(obj, "edge_count")?,
            edge_tick_counts: parse_counts(get(obj, "edge_tick_counts")?, "edge_tick_counts")?,
            global_tick_count: get_u64(obj, "global_tick_count")?,
            now: get_f64(obj, "now")?,
            batch_tail: parse_pairs(get(obj, "batch_tail")?, "batch_tail")?,
            batch_capacity: get_usize(obj, "batch_capacity")?,
        })),
        other => Err(invalid(format!("unknown sampler kind {other:?}"))),
    }
}

fn fault_state_value(state: &FaultInjectorState) -> Value {
    Value::Object(vec![
        ("rng_word_pos".into(), u128_value(state.rng_word_pos)),
        (
            "stats".into(),
            Value::Object(vec![
                ("delivered".into(), u64_value(state.stats.delivered)),
                (
                    "edge_down_skips".into(),
                    u64_value(state.stats.edge_down_skips),
                ),
                (
                    "node_pause_skips".into(),
                    u64_value(state.stats.node_pause_skips),
                ),
                ("dropped".into(), u64_value(state.stats.dropped)),
            ]),
        ),
    ])
}

fn parse_fault_state(value: &Value) -> Result<FaultInjectorState> {
    let obj = as_object(value, "faults")?;
    let stats_obj = as_object(get(obj, "stats")?, "fault stats")?;
    Ok(FaultInjectorState {
        rng_word_pos: get_u128(obj, "rng_word_pos")?,
        stats: FaultStats {
            delivered: get_u64(stats_obj, "delivered")?,
            edge_down_skips: get_u64(stats_obj, "edge_down_skips")?,
            node_pause_skips: get_u64(stats_obj, "node_pause_skips")?,
            dropped: get_u64(stats_obj, "dropped")?,
        },
    })
}

fn adversary_state_value(state: &AdversaryInjectorState) -> Value {
    let stats = &state.stats;
    Value::Object(vec![
        ("rng_word_pos".into(), u128_value(state.rng_word_pos)),
        (
            "stats".into(),
            Value::Object(vec![
                ("honest_contacts".into(), u64_value(stats.honest_contacts)),
                (
                    "falsified_contacts".into(),
                    u64_value(stats.falsified_contacts),
                ),
                (
                    "censored_contacts".into(),
                    u64_value(stats.censored_contacts),
                ),
                ("biased_reports".into(), u64_value(stats.biased_reports)),
                ("extreme_reports".into(), u64_value(stats.extreme_reports)),
                ("stale_reports".into(), u64_value(stats.stale_reports)),
                ("flagged_reports".into(), u64_value(stats.flagged_reports)),
                ("falsification_l1".into(), f64_value(stats.falsification_l1)),
                (
                    "max_falsification".into(),
                    f64_value(stats.max_falsification),
                ),
                ("report_min".into(), f64_value(stats.report_min)),
                ("report_max".into(), f64_value(stats.report_max)),
            ]),
        ),
        (
            "stale_histories".into(),
            Value::Array(
                state
                    .stale_histories
                    .iter()
                    .map(|(node, history)| {
                        Value::Array(vec![
                            Value::Number(*node as f64),
                            Value::Array(
                                history
                                    .iter()
                                    .map(|&(tick, value)| {
                                        Value::Array(vec![u64_value(tick), f64_value(value)])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_adversary_state(value: &Value) -> Result<AdversaryInjectorState> {
    let obj = as_object(value, "adversary")?;
    let stats_obj = as_object(get(obj, "stats")?, "adversary stats")?;
    let stale_histories = as_array(get(obj, "stale_histories")?, "stale_histories")?
        .iter()
        .map(|entry| {
            let pair = as_array(entry, "stale_histories entry")?;
            if pair.len() != 2 {
                return Err(invalid(
                    "stale_histories entry is not a 2-element array".into(),
                ));
            }
            let node = value_usize(&pair[0], "stale history node")?;
            let history = as_array(&pair[1], "stale history")?
                .iter()
                .map(|point| {
                    let point = as_array(point, "stale history point")?;
                    if point.len() != 2 {
                        return Err(invalid(
                            "stale history point is not a 2-element array".into(),
                        ));
                    }
                    Ok((
                        value_u64(&point[0], "stale history tick")?,
                        value_f64(&point[1], "stale history value")?,
                    ))
                })
                .collect::<Result<Vec<(u64, f64)>>>()?;
            Ok((node, history))
        })
        .collect::<Result<Vec<(usize, Vec<(u64, f64)>)>>>()?;
    Ok(AdversaryInjectorState {
        rng_word_pos: get_u128(obj, "rng_word_pos")?,
        stats: AdversaryStats {
            honest_contacts: get_u64(stats_obj, "honest_contacts")?,
            falsified_contacts: get_u64(stats_obj, "falsified_contacts")?,
            censored_contacts: get_u64(stats_obj, "censored_contacts")?,
            biased_reports: get_u64(stats_obj, "biased_reports")?,
            extreme_reports: get_u64(stats_obj, "extreme_reports")?,
            stale_reports: get_u64(stats_obj, "stale_reports")?,
            flagged_reports: get_u64(stats_obj, "flagged_reports")?,
            falsification_l1: get_f64(stats_obj, "falsification_l1")?,
            max_falsification: get_f64(stats_obj, "max_falsification")?,
            report_min: get_f64(stats_obj, "report_min")?,
            report_max: get_f64(stats_obj, "report_max")?,
        },
        stale_histories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The vendored `serde_json::to_string` wants a `Serialize` impl; this
    /// newtype hands it an already-built [`Value`] verbatim, the same idiom
    /// the store's journal uses.
    struct Direct(Value);

    impl serde::Serialize for Direct {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }

    fn render(value: Value) -> String {
        serde_json::to_string(&Direct(value)).expect("vendored serialization is infallible")
    }

    fn sample_checkpoint(sampler: SamplerState) -> EngineCheckpoint {
        EngineCheckpoint {
            ticks: 1 << 40,
            time: 1234.5678e-3,
            seed: u64::MAX - 7,
            clock_model: match sampler {
                SamplerState::Queue(_) => ClockModel::PerEdgeQueue,
                SamplerState::Global(_) => ClockModel::GlobalUniform,
            },
            node_count: 5,
            edge_count: 4,
            values: vec![0.1, -0.2, f64::MIN_POSITIVE, 3.0e300, -0.0],
            moments: (5, 0.58, 2.9000000000000004, 9.04e300, 3),
            initial_variance: 1.64,
            last_settle: 0.25,
            moment_refreshes: 3,
            moments_overflowed: true,
            sampler,
            faults: Some(FaultInjectorState {
                rng_word_pos: (1u128 << 70) + 17,
                stats: FaultStats {
                    delivered: u64::MAX / 3,
                    edge_down_skips: 2,
                    node_pause_skips: 3,
                    dropped: 4,
                },
            }),
            adversary: Some(AdversaryInjectorState {
                rng_word_pos: 99,
                stats: AdversaryStats {
                    honest_contacts: 10,
                    falsified_contacts: 11,
                    censored_contacts: 12,
                    biased_reports: 13,
                    extreme_reports: 14,
                    stale_reports: 15,
                    flagged_reports: 16,
                    falsification_l1: 17.5,
                    max_falsification: 18.25,
                    report_min: f64::INFINITY,
                    report_max: f64::NEG_INFINITY,
                },
                stale_histories: vec![(2, vec![(7, 0.5), (9, -1.5)]), (4, vec![])],
            }),
        }
    }

    fn queue_sampler() -> SamplerState {
        SamplerState::Queue(EdgeClockQueueState {
            entries: vec![(0.125, 3), (0.25, 0), (0.25, 1), (9.75, 2)],
            rng_word_pos: (3u128 << 80) + 5,
            edge_tick_counts: vec![1, 0, 2, u64::MAX],
            global_tick_count: 1 << 40,
            now: 0.0625,
            rate: 1.0,
        })
    }

    fn global_sampler() -> SamplerState {
        SamplerState::Global(GlobalTickProcessState {
            rng_word_pos: 12345,
            edge_count: 4,
            edge_tick_counts: vec![5, 6, 7, 8],
            global_tick_count: 26,
            now: 3.5,
            batch_tail: vec![(0.001, 2), (0.002, 0)],
            batch_capacity: 1024,
        })
    }

    #[test]
    fn json_round_trip_is_lossless_for_both_samplers() {
        for sampler in [queue_sampler(), global_sampler()] {
            let original = sample_checkpoint(sampler);
            let rendered = render(original.to_value());
            let parsed = serde_json::from_str(&rendered).unwrap();
            let restored = EngineCheckpoint::from_value(&parsed).unwrap();
            assert_eq!(original, restored);
            // Bit-level spot checks PartialEq on f64 can't distinguish.
            assert_eq!(
                original.values[4].to_bits(),
                restored.values[4].to_bits(),
                "-0.0 must survive the round trip"
            );
            assert!(restored.adversary.as_ref().unwrap().stats.report_min == f64::INFINITY);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render(sample_checkpoint(queue_sampler()).to_value());
        let b = render(sample_checkpoint(queue_sampler()).to_value());
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_documents_are_rejected_not_half_applied() {
        let value = sample_checkpoint(queue_sampler()).to_value();
        // Wrong version.
        let mut wrong_version = value.clone();
        if let Value::Object(fields) = &mut wrong_version {
            fields[0].1 = Value::Number(99.0);
        }
        assert!(matches!(
            EngineCheckpoint::from_value(&wrong_version),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // A truncated ("torn") document: drop the trailing fields.
        let mut torn = value.clone();
        if let Value::Object(fields) = &mut torn {
            fields.truncate(5);
        }
        assert!(matches!(
            EngineCheckpoint::from_value(&torn),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // A mistyped float encoding.
        let mut mistyped = value;
        if let Value::Object(fields) = &mut mistyped {
            for (key, field) in fields.iter_mut() {
                if key == "time" {
                    *field = Value::Number(1.5);
                }
            }
        }
        assert!(matches!(
            EngineCheckpoint::from_value(&mistyped),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // Not an object at all.
        assert!(EngineCheckpoint::from_value(&Value::Null).is_err());
    }
}
