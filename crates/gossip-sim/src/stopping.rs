//! Stopping rules for simulations.
//!
//! Definition 1 of the paper measures convergence through the normalized
//! variance `var X(T) / var X(0)`; the canonical stopping rule is therefore
//! "the variance ratio dropped below a threshold" (the paper uses `1/e²`),
//! combined with safety limits on simulated time and tick count so that runs
//! of slow algorithms (the whole point of Theorem 1) still terminate.

use serde::{Deserialize, Serialize};

/// The threshold `1/e²` from Definition 1.
pub const DEFINITION1_THRESHOLD: f64 = 0.135_335_283_236_612_7;

/// A snapshot of the quantities stopping rules may look at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationStatus {
    /// Current simulated time.
    pub time: f64,
    /// Number of edge ticks processed so far.
    pub ticks: u64,
    /// Current variance of the node values.
    pub variance: f64,
    /// Variance of the initial node values.
    pub initial_variance: f64,
}

impl SimulationStatus {
    /// The normalized variance `var X(t) / var X(0)`; `0.0` if the initial
    /// variance was zero (already averaged).
    ///
    /// The ratio is clamped at zero so a tiny negative `variance` (possible
    /// float drift of the incremental moment tracker between its exact
    /// refreshes) can never be reported, and a NaN ratio is mapped to `+∞`
    /// ("not converged") so a poisoned variance can never satisfy a
    /// below-threshold rule.
    pub fn variance_ratio(&self) -> f64 {
        if self.initial_variance <= 0.0 {
            return 0.0;
        }
        let ratio = self.variance / self.initial_variance;
        if ratio.is_nan() {
            f64::INFINITY
        } else {
            ratio.max(0.0)
        }
    }
}

/// Why a simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The variance-ratio threshold was reached.
    Converged,
    /// The maximum simulated time was reached.
    TimeLimit,
    /// The maximum number of ticks was reached.
    TickLimit,
}

/// A composable stopping rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Stop (as [`StopReason::Converged`]) once
    /// `var X(t) / var X(0) < threshold`.
    VarianceRatioBelow {
        /// Threshold on the normalized variance.
        threshold: f64,
    },
    /// Stop (as [`StopReason::TimeLimit`]) once simulated time reaches the
    /// limit.
    MaxTime {
        /// Time limit.
        limit: f64,
    },
    /// Stop (as [`StopReason::TickLimit`]) once this many ticks have been
    /// processed.
    MaxTicks {
        /// Tick limit.
        limit: u64,
    },
    /// Stop as soon as any of the sub-rules fires (reporting the first
    /// matching reason in order).
    Any(Vec<StoppingRule>),
}

impl StoppingRule {
    /// Rule: stop when the variance ratio drops below `threshold`.
    pub fn variance_ratio_below(threshold: f64) -> Self {
        StoppingRule::VarianceRatioBelow { threshold }
    }

    /// Rule: stop when the variance ratio drops below the paper's `1/e²`.
    pub fn definition1() -> Self {
        Self::variance_ratio_below(DEFINITION1_THRESHOLD)
    }

    /// Rule: stop when simulated time reaches `limit`.
    pub fn max_time(limit: f64) -> Self {
        StoppingRule::MaxTime { limit }
    }

    /// Rule: stop after `limit` ticks.
    pub fn max_ticks(limit: u64) -> Self {
        StoppingRule::MaxTicks { limit }
    }

    /// Combines this rule with a time limit (whichever fires first).
    pub fn or_max_time(self, limit: f64) -> Self {
        self.or(StoppingRule::max_time(limit))
    }

    /// Combines this rule with a tick limit (whichever fires first).
    pub fn or_max_ticks(self, limit: u64) -> Self {
        self.or(StoppingRule::max_ticks(limit))
    }

    /// Combines two rules: stop when either fires.
    pub fn or(self, other: StoppingRule) -> Self {
        match self {
            StoppingRule::Any(mut rules) => {
                rules.push(other);
                StoppingRule::Any(rules)
            }
            rule => StoppingRule::Any(vec![rule, other]),
        }
    }

    /// Evaluates the rule; returns the reason to stop, or `None` to continue.
    pub fn evaluate(&self, status: &SimulationStatus) -> Option<StopReason> {
        match self {
            StoppingRule::VarianceRatioBelow { threshold } => {
                if status.variance_ratio() < *threshold {
                    Some(StopReason::Converged)
                } else {
                    None
                }
            }
            StoppingRule::MaxTime { limit } => {
                if status.time >= *limit {
                    Some(StopReason::TimeLimit)
                } else {
                    None
                }
            }
            StoppingRule::MaxTicks { limit } => {
                if status.ticks >= *limit {
                    Some(StopReason::TickLimit)
                } else {
                    None
                }
            }
            StoppingRule::Any(rules) => rules.iter().find_map(|r| r.evaluate(status)),
        }
    }
}

impl Default for StoppingRule {
    /// The default rule is Definition 1's threshold guarded by a generous
    /// tick limit.
    fn default() -> Self {
        StoppingRule::definition1().or_max_ticks(50_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(time: f64, ticks: u64, variance: f64, initial: f64) -> SimulationStatus {
        SimulationStatus {
            time,
            ticks,
            variance,
            initial_variance: initial,
        }
    }

    #[test]
    fn variance_ratio_handles_zero_initial_variance() {
        let s = status(0.0, 0, 0.0, 0.0);
        assert_eq!(s.variance_ratio(), 0.0);
        let rule = StoppingRule::definition1();
        assert_eq!(rule.evaluate(&s), Some(StopReason::Converged));
    }

    #[test]
    fn variance_ratio_clamps_drift_and_rejects_nan() {
        // Tiny negative variance (incremental drift): clamped, converged.
        let s = status(1.0, 5, -1e-15, 1.0);
        assert_eq!(s.variance_ratio(), 0.0);
        assert_eq!(
            StoppingRule::definition1().evaluate(&s),
            Some(StopReason::Converged)
        );
        // NaN variance: mapped to +∞, never "converged".
        let s = status(1.0, 5, f64::NAN, 1.0);
        assert_eq!(s.variance_ratio(), f64::INFINITY);
        assert_eq!(StoppingRule::definition1().evaluate(&s), None);
    }

    #[test]
    fn variance_ratio_maps_infinities_and_degenerate_initials() {
        // +∞ variance (finite values whose squared deviations overflow f64,
        // the engine's "overflowed" episode): never converged.
        let s = status(1.0, 5, f64::INFINITY, 1.0);
        assert_eq!(s.variance_ratio(), f64::INFINITY);
        assert_eq!(StoppingRule::definition1().evaluate(&s), None);
        // ∞/∞ forms a NaN ratio, which must also map to +∞, not converge.
        let s = status(1.0, 5, f64::INFINITY, f64::INFINITY);
        assert_eq!(s.variance_ratio(), f64::INFINITY);
        assert_eq!(StoppingRule::definition1().evaluate(&s), None);
        // A (nonsensical) negative initial variance is treated like zero:
        // already averaged.
        let s = status(1.0, 5, 1.0, -1.0);
        assert_eq!(s.variance_ratio(), 0.0);
        // NaN initial variance: `initial <= 0.0` is false for NaN, so the
        // ratio path runs and the NaN maps to +∞ — a poisoned baseline can
        // never read as converged.
        let s = status(1.0, 5, 1.0, f64::NAN);
        assert_eq!(s.variance_ratio(), f64::INFINITY);
        assert_eq!(StoppingRule::definition1().evaluate(&s), None);
    }

    #[test]
    fn variance_rule_fires_only_below_threshold() {
        let rule = StoppingRule::variance_ratio_below(0.1);
        assert_eq!(rule.evaluate(&status(1.0, 5, 0.5, 1.0)), None);
        assert_eq!(
            rule.evaluate(&status(1.0, 5, 0.05, 1.0)),
            Some(StopReason::Converged)
        );
        // Exactly at threshold: not yet below.
        assert_eq!(rule.evaluate(&status(1.0, 5, 0.1, 1.0)), None);
    }

    #[test]
    fn time_and_tick_limits() {
        assert_eq!(
            StoppingRule::max_time(10.0).evaluate(&status(10.0, 0, 1.0, 1.0)),
            Some(StopReason::TimeLimit)
        );
        assert_eq!(
            StoppingRule::max_time(10.0).evaluate(&status(9.9, 0, 1.0, 1.0)),
            None
        );
        assert_eq!(
            StoppingRule::max_ticks(100).evaluate(&status(0.0, 100, 1.0, 1.0)),
            Some(StopReason::TickLimit)
        );
        assert_eq!(
            StoppingRule::max_ticks(100).evaluate(&status(0.0, 99, 1.0, 1.0)),
            None
        );
    }

    #[test]
    fn combined_rules_report_first_matching_reason() {
        let rule = StoppingRule::definition1()
            .or_max_time(50.0)
            .or_max_ticks(1000);
        // Nothing fires.
        assert_eq!(rule.evaluate(&status(1.0, 1, 1.0, 1.0)), None);
        // Convergence wins when it applies, regardless of later rules.
        assert_eq!(
            rule.evaluate(&status(100.0, 5000, 0.0, 1.0)),
            Some(StopReason::Converged)
        );
        // Otherwise the time limit is checked next.
        assert_eq!(
            rule.evaluate(&status(100.0, 5000, 1.0, 1.0)),
            Some(StopReason::TimeLimit)
        );
        // And finally the tick limit.
        assert_eq!(
            rule.evaluate(&status(1.0, 5000, 1.0, 1.0)),
            Some(StopReason::TickLimit)
        );
    }

    #[test]
    fn or_flattens_any() {
        let rule = StoppingRule::definition1()
            .or(StoppingRule::max_time(1.0))
            .or(StoppingRule::max_ticks(10));
        if let StoppingRule::Any(rules) = &rule {
            assert_eq!(rules.len(), 3);
        } else {
            panic!("expected Any");
        }
    }

    #[test]
    fn default_rule_contains_definition1() {
        let rule = StoppingRule::default();
        assert_eq!(
            rule.evaluate(&status(0.0, 0, 0.1, 1.0)),
            Some(StopReason::Converged)
        );
        // The guard tick limit also fires eventually.
        assert_eq!(
            rule.evaluate(&status(0.0, 100_000_000, 1.0, 1.0)),
            Some(StopReason::TickLimit)
        );
    }

    #[test]
    fn definition1_threshold_value() {
        assert!((DEFINITION1_THRESHOLD - (-2.0f64).exp()).abs() < 1e-15);
    }
}
