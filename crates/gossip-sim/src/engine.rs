//! The asynchronous discrete-event driver.
//!
//! [`AsyncSimulator`] owns the state vector, a tick sampler, and a handler;
//! [`AsyncSimulator::run`] repeatedly draws the next edge tick, invokes the
//! handler, updates the trace, and evaluates the stopping rule.

use crate::adversary::{AdversaryAction, AdversaryInjector, AdversaryPlan, AdversaryStats};
use crate::checkpoint::{EngineCheckpoint, SamplerState};
use crate::clock::{ClockScratch, EdgeClockQueue, GlobalTickProcess, TickProcess};
use crate::fault::{ContactFate, FaultInjector, FaultPlan, FaultStats};
use crate::handler::{EdgeTickContext, EdgeTickHandler};
use crate::shard::{BatchPlanner, SharedValues, BATCH_TICKS};
use crate::stopping::{SimulationStatus, StopReason, StoppingRule};
use crate::trace::{Trace, TraceConfig, TraceRecorder};
use crate::values::NodeValues;
use crate::{Result, SimError};
use gossip_graph::{Edge, Graph, Partition};
use gossip_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which tick sampler the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockModel {
    /// Explicit per-edge exponential clocks ([`EdgeClockQueue`]).
    PerEdgeQueue,
    /// Global rate-`|E|` process with uniform edge choice
    /// ([`GlobalTickProcess`]).
    GlobalUniform,
}

/// Which in-memory data layout the serial engine's hot loop runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemoryLayout {
    /// The historical layout: ticks are dispatched through the
    /// [`EdgeTickHandler`] with an [`EdgeTickContext`], and endpoints come
    /// from the array-of-structs [`Edge`] slice.  Byte-stable with every
    /// earlier release.
    #[default]
    Legacy,
    /// Flat struct-of-arrays layout built for ~10⁶-node runs: endpoints come
    /// from the packed CSR-companion table
    /// ([`gossip_graph::Graph::packed_edge_endpoints`], 8 bytes per edge in
    /// edge-id order — the order the samplers draw, so tick processing walks
    /// it cache-consciously), values are mutated through the raw
    /// struct-of-arrays slice with the moment tracker's shifted sums updated
    /// alongside, and the handler is replaced by its
    /// [`pairwise_kernel`].  **Bit-identical to [`Self::Legacy`]**: every
    /// value read, kernel application, and `record_update` happens in the
    /// same order with the same operands (see `tests/memscale_differential.rs`).
    ///
    /// Requires a handler with a kernel, [`VarianceMode::Incremental`], no
    /// trace, and at most `u32::MAX + 1` nodes; otherwise the engine
    /// silently falls back to the legacy loop, exactly like
    /// [`SimulationConfig::shards`] does.  When both `shards` and this are
    /// set, sharding wins (it is its own deterministic mode).
    ///
    /// [`pairwise_kernel`]: crate::handler::EdgeTickHandler::pairwise_kernel
    FlatSoA,
}

/// How the variance fed to the stopping rule is obtained at each check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarianceMode {
    /// O(1) running moments (see [`crate::moments::MomentTracker`]) with the
    /// deterministic exact-refresh schedule
    /// [`SimulationConfig::moment_refresh_every_ticks`].  The default: makes
    /// per-tick Definition 1 checks affordable at any `n`.
    Incremental,
    /// Exact O(n) recompute (and O(n) finiteness scan) at every check — the
    /// legacy reference path, kept for the incremental-vs-full differential
    /// oracle and for callers that insist on exact per-check variances.
    ExactEveryCheck,
}

/// Default exact-refresh period of the incremental moments, in ticks.
///
/// `2¹⁶` updates of unit-scale values accumulate drift far below the `1e-9`
/// oracle margin while amortizing the O(n) pass to `n/65 536` work per tick.
pub const DEFAULT_MOMENT_REFRESH_TICKS: u64 = 65_536;

/// Configuration of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// RNG seed; every run is a deterministic function of the seed.
    pub seed: u64,
    /// When to stop.
    pub stopping_rule: StoppingRule,
    /// Which tick sampler to use.
    pub clock_model: ClockModel,
    /// Optional trace recording.
    pub trace: Option<TraceConfig>,
    /// Optional partition, used for block statistics in traces and available
    /// to analyses of the outcome.
    pub partition: Option<Partition>,
    /// Hard safety cap on the number of processed events, independent of the
    /// stopping rule.
    pub max_events: u64,
    /// How often (in ticks) the stopping rule is evaluated.  With the
    /// default [`VarianceMode::Incremental`] a check is O(1), so the default
    /// of 1 (per-tick checking, no stopping latency) is affordable at any
    /// graph size.
    pub check_every_ticks: u64,
    /// How the per-check variance is obtained.
    pub variance_mode: VarianceMode,
    /// Period (in ticks) of the deterministic exact recompute of the running
    /// moments under [`VarianceMode::Incremental`]; bounds float drift.
    pub moment_refresh_every_ticks: u64,
    /// When set, the engine tracks the **settling time**: the last checked
    /// time at which `var X(t)/var X(0)` was still at or above this
    /// threshold.  O(1) per check, reported in
    /// [`SimulationOutcome::settling_time`] and via
    /// [`AsyncSimulator::settling_time`] (the latter remains readable even
    /// when `run` fails, e.g. on budget exhaustion, so callers can censor).
    pub settling_threshold: Option<f64>,
    /// Optional deterministic fault environment (edge outages, node pauses,
    /// message drops — see [`crate::fault`]).  `None`, and a `Some` plan for
    /// which [`FaultPlan::is_empty`] holds, are byte-identical to the
    /// fault-free engine.
    pub fault_plan: Option<FaultPlan>,
    /// Optional deterministic Byzantine environment (biased/extreme/stale
    /// reporters, censoring bridges — see [`crate::adversary`]), classified
    /// after fault delivery and before the pairwise update.  `None`, and a
    /// `Some` plan for which [`AdversaryPlan::is_empty`] holds, are
    /// byte-identical to the adversary-free engine.
    pub adversary_plan: Option<AdversaryPlan>,
    /// Intra-run sharding.  `None` (the default) runs the legacy serial
    /// per-tick loop, byte-stable with earlier releases.  `Some(k)` switches
    /// to the **sharded** engine: events are drawn serially (the RNG stream
    /// is sequential by nature) but applied in conflict-free wavefront
    /// rounds fanned out over up to `k` worker lanes, with a deterministic
    /// (round, lane, event) merge order — so the outcome is bit-identical
    /// for *every* shard count, `Some(1)` included, though it is a distinct
    /// deterministic mode from `None` (stopping checks move to batch
    /// granularity and the moment tracker sums lane partials in a different
    /// float order).  Sharding requires a handler with a
    /// [`pairwise_kernel`], [`VarianceMode::Incremental`], and no trace;
    /// otherwise the engine silently falls back to the legacy loop.
    ///
    /// [`pairwise_kernel`]: crate::handler::EdgeTickHandler::pairwise_kernel
    pub shards: Option<usize>,
    /// Which data layout the serial hot loop runs on (see [`MemoryLayout`]).
    /// [`MemoryLayout::FlatSoA`] is bit-identical to the default
    /// [`MemoryLayout::Legacy`] and exists purely for memory locality at
    /// large `n`.
    pub memory_layout: MemoryLayout,
    /// Cadence (in ticks) at which [`AsyncSimulator::run_with_checkpoints`]
    /// hands an [`EngineCheckpoint`] to its sink; `0` (the default)
    /// disables capture.  Captures land at the same deterministic
    /// tick-boundary style as [`Self::moment_refresh_every_ticks`] (after
    /// the tick's update, refresh, and stopping check), and capture itself
    /// never touches any RNG stream, so a checkpointing run is bit-identical
    /// to a non-checkpointing one.  Supported by the legacy and
    /// [`MemoryLayout::FlatSoA`] serial loops; requesting capture on a
    /// traced or sharded run is an [`SimError::InvalidConfig`] error.
    pub checkpoint_every_ticks: u64,
    /// Optional wall-clock budget for a single [`AsyncSimulator::run`]
    /// call.  Checked every [`DEADLINE_CHECK_TICKS`] ticks (and once per
    /// batch in the sharded engine); when it fires, `run` returns
    /// [`SimError::DeadlineExceeded`] with the partial state left
    /// observable on the simulator, so supervisors can censor the trial
    /// instead of hanging a sweep.  Does not affect determinism: the tick
    /// stream up to the cut-off is the same as in an unbudgeted run.
    pub wall_clock_deadline: Option<Duration>,
}

impl SimulationConfig {
    /// Creates a configuration with the given seed and defaults: Definition 1
    /// stopping with a generous tick guard, per-edge clocks, no trace.
    pub fn new(seed: u64) -> Self {
        SimulationConfig {
            seed,
            stopping_rule: StoppingRule::default(),
            clock_model: ClockModel::PerEdgeQueue,
            trace: None,
            partition: None,
            max_events: 200_000_000,
            check_every_ticks: 1,
            variance_mode: VarianceMode::Incremental,
            moment_refresh_every_ticks: DEFAULT_MOMENT_REFRESH_TICKS,
            settling_threshold: None,
            fault_plan: None,
            adversary_plan: None,
            shards: None,
            memory_layout: MemoryLayout::default(),
            checkpoint_every_ticks: 0,
            wall_clock_deadline: None,
        }
    }

    /// Sets the stopping rule.
    pub fn with_stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.stopping_rule = rule;
        self
    }

    /// Selects the tick sampler.
    pub fn with_clock_model(mut self, model: ClockModel) -> Self {
        self.clock_model = model;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a partition (for block statistics and downstream analysis).
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the hard event cap.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets how often the stopping rule is evaluated.
    pub fn with_check_every_ticks(mut self, ticks: u64) -> Self {
        self.check_every_ticks = ticks.max(1);
        self
    }

    /// Selects how the per-check variance is obtained.
    pub fn with_variance_mode(mut self, mode: VarianceMode) -> Self {
        self.variance_mode = mode;
        self
    }

    /// Sets the exact-refresh period of the running moments (clamped to at
    /// least 1).
    pub fn with_moment_refresh_every_ticks(mut self, ticks: u64) -> Self {
        self.moment_refresh_every_ticks = ticks.max(1);
        self
    }

    /// Enables settling-time tracking against `threshold` (see
    /// [`Self::settling_threshold`]).
    pub fn with_settling_threshold(mut self, threshold: f64) -> Self {
        self.settling_threshold = Some(threshold);
        self
    }

    /// Attaches a deterministic fault plan (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a deterministic adversary plan (see [`crate::adversary`]).
    pub fn with_adversary_plan(mut self, plan: AdversaryPlan) -> Self {
        self.adversary_plan = Some(plan);
        self
    }

    /// Enables intra-run sharding with up to `shards` worker lanes (clamped
    /// to at least 1; see [`Self::shards`] for the exact semantics and the
    /// fallback conditions).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Selects the in-memory layout of the serial hot loop.
    pub fn with_memory_layout(mut self, layout: MemoryLayout) -> Self {
        self.memory_layout = layout;
        self
    }

    /// Shorthand for `with_memory_layout(MemoryLayout::FlatSoA)` — the
    /// million-node struct-of-arrays path (see [`MemoryLayout::FlatSoA`] for
    /// the eligibility conditions and the bit-identity guarantee).
    pub fn with_flat_layout(self) -> Self {
        self.with_memory_layout(MemoryLayout::FlatSoA)
    }

    /// Sets the checkpoint-capture cadence in ticks (see
    /// [`Self::checkpoint_every_ticks`]; `0` disables capture).
    pub fn with_checkpoint_every_ticks(mut self, ticks: u64) -> Self {
        self.checkpoint_every_ticks = ticks;
        self
    }

    /// Sets a wall-clock budget for each `run` call (see
    /// [`Self::wall_clock_deadline`]).
    pub fn with_wall_clock_deadline(mut self, deadline: Duration) -> Self {
        self.wall_clock_deadline = Some(deadline);
        self
    }
}

/// How often (in ticks) the engine loops compare elapsed wall-clock time
/// against [`SimulationConfig::wall_clock_deadline`].  Coarse enough that
/// the `Instant::now` call never shows up in profiles, fine enough that an
/// overrunning trial is cut within a fraction of a second.
pub const DEADLINE_CHECK_TICKS: u64 = 65_536;

/// Result of an asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// The node values when the run stopped.
    pub final_values: NodeValues,
    /// Variance of the initial values.
    pub initial_variance: f64,
    /// Variance of the final values.
    pub final_variance: f64,
    /// Simulated time at which the run stopped.
    pub elapsed_time: f64,
    /// Number of edge ticks processed.
    pub total_ticks: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// The recorded trace, if tracing was enabled.
    pub trace: Option<Trace>,
    /// The last checked time at which the variance ratio was still at or
    /// above [`SimulationConfig::settling_threshold`]; `None` when no
    /// settling threshold was configured.
    pub settling_time: Option<f64>,
    /// Number of exact O(n) moment refreshes performed during the run (the
    /// scheduled drift bound; zero under [`VarianceMode::ExactEveryCheck`]).
    pub moment_refreshes: u64,
    /// What the fault injector did during the run; all zeros when no fault
    /// plan was configured.
    pub fault_stats: FaultStats,
    /// What the adversary did during the run; all zeros (with an empty
    /// report range) when no adversary plan was configured.
    pub adversary_stats: AdversaryStats,
}

impl SimulationOutcome {
    /// The normalized final variance `var X(T) / var X(0)`.
    pub fn variance_ratio(&self) -> f64 {
        if self.initial_variance <= 0.0 {
            0.0
        } else {
            self.final_variance / self.initial_variance
        }
    }

    /// `true` if the run stopped because it converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

pub(crate) enum Sampler {
    Queue(EdgeClockQueue),
    Global(GlobalTickProcess),
}

impl Sampler {
    /// Builds the sampler a [`SimulationConfig`] with this clock model and
    /// seed would use (shared with the f32 tier in [`crate::flat`], which
    /// has no `AsyncSimulator` of its own).
    pub(crate) fn from_model(model: ClockModel, graph: &Graph, seed: u64) -> Result<Self> {
        Ok(match model {
            ClockModel::PerEdgeQueue => Sampler::Queue(EdgeClockQueue::new(graph, seed)?),
            ClockModel::GlobalUniform => Sampler::Global(GlobalTickProcess::new(graph, seed)?),
        })
    }

    #[inline]
    pub(crate) fn next_tick(&mut self) -> crate::clock::TickEvent {
        match self {
            Sampler::Queue(q) => q.next_tick(),
            Sampler::Global(g) => g.next_tick(),
        }
    }
}

/// Asynchronous gossip simulator.
///
/// See the crate-level documentation for an end-to-end example.
pub struct AsyncSimulator<'g, H> {
    graph: &'g Graph,
    /// Prevalidated edge table: the samplers only emit identifiers below the
    /// edge count they were constructed with, so the hot loop indexes this
    /// slice directly instead of going through the `Result`-returning
    /// [`Graph::edge`] lookup on every tick.
    edges: &'g [Edge],
    values: NodeValues,
    handler: H,
    config: SimulationConfig,
    sampler: Sampler,
    initial_variance: f64,
    last_settle: f64,
    moment_refreshes: u64,
    /// Set when an exact refresh left the tracker non-finite even though
    /// every node value is finite (squared deviations beyond f64 range);
    /// suppresses repeated O(n) salvage attempts until the tracker recovers.
    moments_overflowed: bool,
    /// Compiled fault plan, if one was configured.
    faults: Option<FaultInjector>,
    /// Compiled adversary plan, if one was configured.
    adversary: Option<AdversaryInjector>,
    /// Set by [`Self::restore`]: the next `run` call continues a checkpointed
    /// run, so the pre-event stopping check (and its settling note, both
    /// already performed by the original run at tick 0) must be skipped to
    /// keep the resumed run bit-identical to the uninterrupted one.
    resumed: bool,
}

impl<'g, H: EdgeTickHandler> AsyncSimulator<'g, H> {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateSizeMismatch`] if `initial` does not have one
    /// value per node, [`SimError::NoEdges`] for an edgeless graph, and
    /// [`SimError::NonFiniteValue`] for non-finite initial values.
    pub fn new(
        graph: &'g Graph,
        initial: NodeValues,
        handler: H,
        config: SimulationConfig,
    ) -> Result<Self> {
        Self::new_with_scratch(
            graph,
            initial,
            handler,
            config,
            &mut ClockScratch::default(),
        )
    }

    /// Like [`Self::new`], building the tick sampler from recycled buffers
    /// (see [`ClockScratch`]); pair with [`Self::into_parts_with_scratch`]
    /// to run many simulators with zero sampler allocation churn.  Buffer
    /// reuse is bit-neutral: every seeded output is identical to
    /// [`Self::new`]'s.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_with_scratch(
        graph: &'g Graph,
        initial: NodeValues,
        handler: H,
        config: SimulationConfig,
        scratch: &mut ClockScratch,
    ) -> Result<Self> {
        if initial.len() != graph.node_count() {
            return Err(SimError::StateSizeMismatch {
                nodes: graph.node_count(),
                values: initial.len(),
            });
        }
        initial.check_finite()?;
        let faults = match &config.fault_plan {
            Some(plan) => Some(FaultInjector::new(plan, graph)?),
            None => None,
        };
        let adversary = match &config.adversary_plan {
            Some(plan) => Some(AdversaryInjector::new(plan, graph)?),
            None => None,
        };
        let sampler = match config.clock_model {
            ClockModel::PerEdgeQueue => Sampler::Queue(EdgeClockQueue::new_with_scratch(
                graph,
                config.seed,
                scratch,
            )?),
            ClockModel::GlobalUniform => Sampler::Global(GlobalTickProcess::new_with_scratch(
                graph,
                config.seed,
                scratch,
            )?),
        };
        let initial_variance = initial.variance();
        Ok(AsyncSimulator {
            graph,
            edges: graph.edges(),
            values: initial,
            handler,
            config,
            sampler,
            initial_variance,
            last_settle: 0.0,
            moment_refreshes: 0,
            moments_overflowed: false,
            faults,
            adversary,
            resumed: false,
        })
    }

    /// Rebuilds a simulator mid-run from a checkpoint captured by
    /// [`Self::run_with_checkpoints`], so that a subsequent [`Self::run`]
    /// continues the original run **bit-identically**: same stop tick, stop
    /// time, stop reason, refresh count, fault/adversary counters, and final
    /// state bits as the uninterrupted run, for both [`MemoryLayout`]s and
    /// both [`ClockModel`]s.
    ///
    /// `graph`, `handler`, and `config` must be the ones the original run
    /// was constructed with (the same pure inputs a cold start would use);
    /// the checkpoint carries the evolved state.  Handler-internal state is
    /// not checkpointed — see [`EngineCheckpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointInvalid`] when the checkpoint does not
    /// match `config`/`graph` (seed, clock model, node/edge counts, or
    /// fault/adversary plan presence), and [`SimError::InvalidConfig`] for
    /// configurations checkpointing does not support (tracing, sharding).
    pub fn restore(
        graph: &'g Graph,
        handler: H,
        config: SimulationConfig,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Self> {
        if config.trace.is_some() {
            return Err(SimError::InvalidConfig {
                reason: "checkpoint restore does not support trace recording".into(),
            });
        }
        if config.shards.is_some() {
            return Err(SimError::InvalidConfig {
                reason: "checkpoint restore does not support the sharded engine".into(),
            });
        }
        if checkpoint.seed != config.seed {
            return Err(SimError::CheckpointInvalid {
                reason: format!(
                    "checkpoint was captured with seed {} but the run is configured with seed {}",
                    checkpoint.seed, config.seed
                ),
            });
        }
        if checkpoint.clock_model != config.clock_model {
            return Err(SimError::CheckpointInvalid {
                reason: format!(
                    "checkpoint clock model {:?} does not match configured {:?}",
                    checkpoint.clock_model, config.clock_model
                ),
            });
        }
        if checkpoint.node_count != graph.node_count()
            || checkpoint.edge_count != graph.edge_count()
        {
            return Err(SimError::CheckpointInvalid {
                reason: format!(
                    "checkpoint graph shape ({} nodes, {} edges) does not match ({} nodes, {} edges)",
                    checkpoint.node_count,
                    checkpoint.edge_count,
                    graph.node_count(),
                    graph.edge_count()
                ),
            });
        }
        if checkpoint.values.len() != graph.node_count() {
            return Err(SimError::CheckpointInvalid {
                reason: format!(
                    "checkpoint holds {} values for a {}-node graph",
                    checkpoint.values.len(),
                    graph.node_count()
                ),
            });
        }
        if checkpoint.faults.is_some() != config.fault_plan.is_some() {
            return Err(SimError::CheckpointInvalid {
                reason: "checkpoint and configuration disagree on whether a fault plan is active"
                    .into(),
            });
        }
        if checkpoint.adversary.is_some() != config.adversary_plan.is_some() {
            return Err(SimError::CheckpointInvalid {
                reason:
                    "checkpoint and configuration disagree on whether an adversary plan is active"
                        .into(),
            });
        }
        // Recompile the pure parts (window indexes, behavior tables) from
        // the plans, then reinstall the evolved stream positions, counters,
        // and histories on top.
        let mut faults = match &config.fault_plan {
            Some(plan) => Some(FaultInjector::new(plan, graph)?),
            None => None,
        };
        if let (Some(injector), Some(state)) = (faults.as_mut(), checkpoint.faults.as_ref()) {
            injector.restore_state(state);
        }
        let mut adversary = match &config.adversary_plan {
            Some(plan) => Some(AdversaryInjector::new(plan, graph)?),
            None => None,
        };
        if let (Some(injector), Some(state)) = (adversary.as_mut(), checkpoint.adversary.as_ref()) {
            injector.restore_state(state);
        }
        let sampler = match &checkpoint.sampler {
            SamplerState::Queue(state) => {
                Sampler::Queue(EdgeClockQueue::restore_state(config.seed, state))
            }
            SamplerState::Global(state) => {
                Sampler::Global(GlobalTickProcess::restore_state(config.seed, state))
            }
        };
        let (len, shift, sum, sum_sq, refreshes) = checkpoint.moments;
        let moments =
            crate::moments::MomentTracker::from_raw_parts(len, shift, sum, sum_sq, refreshes);
        let values = NodeValues::from_parts(Vector::from(checkpoint.values.clone()), moments);
        Ok(AsyncSimulator {
            graph,
            edges: graph.edges(),
            values,
            handler,
            config,
            sampler,
            initial_variance: checkpoint.initial_variance,
            last_settle: checkpoint.last_settle,
            moment_refreshes: checkpoint.moment_refreshes,
            moments_overflowed: checkpoint.moments_overflowed,
            faults,
            adversary,
            resumed: true,
        })
    }

    /// The current node values.
    pub fn values(&self) -> &NodeValues {
        &self.values
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Borrows the handler (useful for instrumented handlers that accumulate
    /// measurements during the run).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Consumes the simulator and returns the handler together with the final
    /// node values.
    pub fn into_parts(self) -> (H, NodeValues) {
        (self.handler, self.values)
    }

    /// Like [`Self::into_parts`], additionally returning the sampler's
    /// buffers to `scratch` so the next [`Self::new_with_scratch`] can reuse
    /// them.
    pub fn into_parts_with_scratch(self, scratch: &mut ClockScratch) -> (H, NodeValues) {
        match self.sampler {
            Sampler::Queue(queue) => queue.reclaim_scratch(scratch),
            Sampler::Global(global) => global.reclaim_scratch(scratch),
        }
        (self.handler, self.values)
    }

    /// The last checked time at which the variance ratio was still at or
    /// above the configured [`SimulationConfig::settling_threshold`] (`0.0`
    /// before any such check, or when no threshold is configured).
    ///
    /// Unlike [`SimulationOutcome::settling_time`] this stays readable after
    /// [`Self::run`] returns an error, so estimators can censor runs that
    /// exhaust the event budget instead of discarding them.
    pub fn settling_time(&self) -> f64 {
        self.last_settle
    }

    fn note_settling(&mut self, status: &SimulationStatus) {
        if let Some(threshold) = self.config.settling_threshold {
            if status.variance_ratio() >= threshold {
                self.last_settle = status.time;
            }
        }
    }

    /// Runs until the stopping rule fires.
    ///
    /// The per-tick loop is monomorphized over whether faults and tracing
    /// are configured: the common fault-free, trace-free path carries no
    /// `Option` branches for either concern, and each variant is compiled
    /// separately (see [`Self::run_loop`]).  The trace configuration and
    /// partition are **taken** out of the config by the first call (they are
    /// consumed by the recorder), not cloned on every call.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if the hard event cap is hit
    /// before any stopping rule fires, and [`SimError::NonFiniteValue`] if the
    /// handler produces NaN or infinite values.
    pub fn run(&mut self) -> Result<SimulationOutcome> {
        self.run_with_checkpoints(&mut |_| Ok(()))
    }

    /// Like [`Self::run`], additionally handing an [`EngineCheckpoint`] to
    /// `sink` every [`SimulationConfig::checkpoint_every_ticks`] ticks (when
    /// that cadence is non-zero).  Capture reads the engine state without
    /// touching any RNG stream, so the run itself is bit-identical to
    /// [`Self::run`]'s; a `sink` error aborts the run and is returned as-is.
    ///
    /// Capture is supported by the serial loops (legacy and
    /// [`MemoryLayout::FlatSoA`]); a non-zero cadence on a traced or sharded
    /// run is rejected with [`SimError::InvalidConfig`] rather than silently
    /// producing no checkpoints.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`], plus any error returned by `sink`.
    pub fn run_with_checkpoints(
        &mut self,
        sink: &mut dyn FnMut(EngineCheckpoint) -> Result<()>,
    ) -> Result<SimulationOutcome> {
        if self.config.checkpoint_every_ticks > 0 && self.config.trace.is_some() {
            return Err(SimError::InvalidConfig {
                reason: "checkpoint capture does not support trace recording".into(),
            });
        }
        let mut recorder = self
            .config
            .trace
            .take()
            .map(|cfg| TraceRecorder::new(cfg, self.config.partition.take()));

        // A run may be asked to stop before any event (e.g. zero initial
        // variance).  A restored run skips this: the original run performed
        // the tick-0 check before the first checkpoint was ever captured.
        if !self.resumed {
            let initial_status = SimulationStatus {
                time: 0.0,
                ticks: 0,
                variance: self.initial_variance,
                initial_variance: self.initial_variance,
            };
            self.note_settling(&initial_status);
            if let Some(reason) = self.config.stopping_rule.evaluate(&initial_status) {
                return Ok(self.finish(0.0, 0, reason, recorder));
            }
        }

        if let Some(shards) = self.config.shards {
            // Sharding needs a pure pairwise kernel, the incremental moment
            // tracker, and no trace; anything else falls through to the
            // legacy loop below (`shards` is then ignored, not an error).
            if recorder.is_none()
                && self.config.variance_mode == VarianceMode::Incremental
                && self.handler.pairwise_kernel().is_some()
            {
                if self.config.checkpoint_every_ticks > 0 {
                    return Err(SimError::InvalidConfig {
                        reason: "checkpoint capture does not support the sharded engine".into(),
                    });
                }
                let (time, ticks, reason) = self.run_sharded(shards)?;
                return Ok(self.finish(time, ticks, reason, None));
            }
        }

        if self.config.memory_layout == MemoryLayout::FlatSoA
            && recorder.is_none()
            && self.config.variance_mode == VarianceMode::Incremental
            && self.handler.pairwise_kernel().is_some()
        {
            // Same silent-fallback contract as sharding: an ineligible
            // configuration (trace, exact variance, kernel-less handler, or
            // a graph too large to pack) runs the legacy loop below.  The
            // topology packs every endpoint pair into one u64 in edge-id
            // order — the order the samplers draw — so the hot loop touches
            // 8 contiguous bytes per tick instead of a 3-word `Edge`.
            if let Some(topology) = crate::flat::FlatTopology::new(self.graph) {
                let stopped = match (self.faults.is_some(), self.adversary.is_some()) {
                    (false, false) => self.run_flat::<false, false>(&topology, sink),
                    (false, true) => self.run_flat::<false, true>(&topology, sink),
                    (true, false) => self.run_flat::<true, false>(&topology, sink),
                    (true, true) => self.run_flat::<true, true>(&topology, sink),
                };
                let (time, ticks, reason) = stopped?;
                return Ok(self.finish(time, ticks, reason, None));
            }
        }

        let stopped = match (
            self.faults.is_some(),
            self.adversary.is_some(),
            recorder.is_some(),
        ) {
            (false, false, false) => self.run_loop::<false, false, false>(&mut recorder, sink),
            (false, false, true) => self.run_loop::<false, false, true>(&mut recorder, sink),
            (false, true, false) => self.run_loop::<false, true, false>(&mut recorder, sink),
            (false, true, true) => self.run_loop::<false, true, true>(&mut recorder, sink),
            (true, false, false) => self.run_loop::<true, false, false>(&mut recorder, sink),
            (true, false, true) => self.run_loop::<true, false, true>(&mut recorder, sink),
            (true, true, false) => self.run_loop::<true, true, false>(&mut recorder, sink),
            (true, true, true) => self.run_loop::<true, true, true>(&mut recorder, sink),
        };
        let (time, ticks, reason) = match stopped {
            Ok(stopped) => stopped,
            Err(error) => {
                // Hand the moved-in trace configuration and partition back
                // so a later `run` on this simulator still traces.
                if let Some(rec) = recorder {
                    let (_, cfg, partition) = rec.finish_with_parts();
                    self.config.trace = Some(cfg);
                    self.config.partition = partition;
                }
                return Err(error);
            }
        };
        Ok(self.finish(time, ticks, reason, recorder))
    }

    /// The per-tick loop, compiled once per `(FAULTS, ADVERSARY, TRACE)`
    /// combination so the fault-free path has no injector branch, the
    /// honest path no adversary classification, and the untraced path no
    /// recorder check.  The const parameters mirror `self.faults.is_some()`,
    /// `self.adversary.is_some()`, and `recorder.is_some()` — [`Self::run`]
    /// is the only caller and keeps them in sync.
    fn run_loop<const FAULTS: bool, const ADVERSARY: bool, const TRACE: bool>(
        &mut self,
        recorder: &mut Option<TraceRecorder>,
        sink: &mut dyn FnMut(EngineCheckpoint) -> Result<()>,
    ) -> Result<(f64, u64, StopReason)> {
        let deadline = self.config.wall_clock_deadline.map(|d| (Instant::now(), d));
        let cadence = self.config.checkpoint_every_ticks;
        let mut ticks = 0u64;
        let mut time;
        loop {
            if ticks >= self.config.max_events {
                return Err(SimError::EventBudgetExhausted { events: ticks });
            }
            let event = self.sampler.next_tick();
            ticks = event.global_tick_count;
            time = event.time;
            let edge = self.edges[event.edge.index()];
            let ctx = EdgeTickContext {
                graph: self.graph,
                edge,
                edge_id: event.edge,
                time,
                edge_tick_count: event.edge_tick_count,
                global_tick_count: event.global_tick_count,
            };
            // Fault classification happens before the handler runs: a
            // suppressed contact skips the pairwise update atomically (never
            // half-applied), leaving the moment tracker untouched, while the
            // clock and time still advance — a down link loses messages, it
            // does not slow the network.
            let delivered = if FAULTS {
                let injector = self
                    .faults
                    .as_mut()
                    .expect("FAULTS is only instantiated with an injector present");
                injector.classify(event.edge, edge, event.global_tick_count)
                    == ContactFate::Delivered
            } else {
                true
            };
            if ADVERSARY {
                // Adversary classification runs only on fault-delivered
                // contacts (a dropped message cannot be falsified), and
                // before the pairwise update, so honest-subset mass
                // accounting is exact: a censored contact skips the handler
                // atomically, and a falsified contact substitutes the
                // adversary's report into the state for the duration of the
                // handler call, restoring frozen-state behaviors afterwards.
                if delivered {
                    let (u, v) = edge.endpoints();
                    let injector = self
                        .adversary
                        .as_mut()
                        .expect("ADVERSARY is only instantiated with an injector present");
                    let action = injector.classify(
                        event.edge,
                        edge,
                        event.global_tick_count,
                        self.values.get(u),
                        self.values.get(v),
                    );
                    match action {
                        AdversaryAction::Honest => {
                            self.handler.on_edge_tick(&mut self.values, &ctx);
                        }
                        AdversaryAction::Censored => {}
                        AdversaryAction::Falsified(contact) => {
                            let before_u = self.values.get(u);
                            let before_v = self.values.get(v);
                            if let Some(report) = contact.u {
                                self.values.set(u, report.value);
                            }
                            if let Some(report) = contact.v {
                                self.values.set(v, report.value);
                            }
                            self.handler.on_edge_tick(&mut self.values, &ctx);
                            if contact.u.is_some_and(|r| r.restore) {
                                self.values.set(u, before_u);
                            }
                            if contact.v.is_some_and(|r| r.restore) {
                                self.values.set(v, before_v);
                            }
                        }
                    }
                }
            } else if delivered {
                self.handler.on_edge_tick(&mut self.values, &ctx);
            }

            if TRACE {
                recorder
                    .as_mut()
                    .expect("TRACE is only instantiated with a recorder present")
                    .record(time, ticks, &self.values, false);
            }

            if self.config.variance_mode == VarianceMode::Incremental
                && ticks.is_multiple_of(self.config.moment_refresh_every_ticks)
            {
                self.values.refresh_moments();
                self.moment_refreshes += 1;
                if !self.values.moments_finite() {
                    // A freshly rebuilt tracker is still non-finite: either a
                    // node value is genuinely NaN/∞ (error out with the node
                    // index) or finite values have squared deviations beyond
                    // f64 range; the latter keeps running with an infinite
                    // variance, which can never read as "converged".
                    self.values.check_finite()?;
                    self.moments_overflowed = true;
                }
            }

            if ticks.is_multiple_of(self.config.check_every_ticks) {
                let variance = match self.config.variance_mode {
                    VarianceMode::Incremental => {
                        if self.values.moments_finite() {
                            self.moments_overflowed = false;
                            if self.values.moments_need_recenter() {
                                // A handler re-baselined the state through
                                // `set` (pairwise updates conserve the sum,
                                // so this never fires for the paper's
                                // algorithms): re-centre immediately rather
                                // than letting cancellation around the stale
                                // shift masquerade as convergence until the
                                // next scheduled refresh.
                                self.values.refresh_moments();
                                self.moment_refreshes += 1;
                            }
                        } else if !self.moments_overflowed {
                            // A poisoned running sum means a genuinely
                            // non-finite node value (surface it with the node
                            // index), a transient that has since been
                            // overwritten (NaN is sticky in the tracker), or
                            // finite values whose squared deviations overflow
                            // f64; the exact refresh tells them apart.  The
                            // overflow flag makes the salvage run once per
                            // episode, keeping the hot path O(1) instead of
                            // retrying two O(n) passes at every check.
                            self.values.check_finite()?;
                            self.values.refresh_moments();
                            self.moment_refreshes += 1;
                            if !self.values.moments_finite() {
                                self.moments_overflowed = true;
                            }
                        }
                        self.values.incremental_variance()
                    }
                    VarianceMode::ExactEveryCheck => {
                        self.values.check_finite()?;
                        self.values.variance()
                    }
                };
                let status = SimulationStatus {
                    time,
                    ticks,
                    variance,
                    initial_variance: self.initial_variance,
                };
                self.note_settling(&status);
                if let Some(reason) = self.config.stopping_rule.evaluate(&status) {
                    if self.moments_overflowed {
                        // The overflow flag suppressed per-check finiteness
                        // scans; make the terminal state honor `run`'s error
                        // contract (a NaN/∞ introduced after the overflow
                        // must still surface, not leak into the outcome).
                        self.values.check_finite()?;
                    }
                    return Ok((time, ticks, reason));
                }
            }

            if let Some((started, budget)) = deadline {
                if ticks.is_multiple_of(DEADLINE_CHECK_TICKS) && started.elapsed() >= budget {
                    return Err(SimError::DeadlineExceeded { ticks });
                }
            }

            // Capture after the tick's update, refresh, and stopping check
            // so a restored run re-enters the loop exactly at the next
            // event; capture reads state only (no RNG draws), keeping the
            // run bit-identical to a non-checkpointing one.
            if cadence != 0 && ticks.is_multiple_of(cadence) {
                sink(self.capture_checkpoint(time, ticks))?;
            }
        }
    }

    /// The flat struct-of-arrays loop (see [`MemoryLayout::FlatSoA`]):
    /// operation-for-operation the same run as [`Self::run_loop`] — every
    /// tick draws the same event, classifies faults and adversaries with the
    /// same injector calls, applies the same kernel to the same operands,
    /// and mirrors every value write into the moment tracker with the exact
    /// `record_update` sequence [`NodeValues::set`] would have made — but
    /// endpoints come from the packed topology and values are written
    /// through the raw slice, so the per-tick working set is 8 bytes of
    /// topology plus two value lanes.  Bit-identity is pinned by
    /// `tests/memscale_differential.rs`.
    ///
    /// Tracing is not supported (the dispatch in [`Self::run`] requires
    /// `recorder.is_none()`), so there is no `TRACE` parameter; the variance
    /// mode is guaranteed [`VarianceMode::Incremental`] by the same
    /// dispatch.
    fn run_flat<const FAULTS: bool, const ADVERSARY: bool>(
        &mut self,
        topology: &crate::flat::FlatTopology,
        sink: &mut dyn FnMut(EngineCheckpoint) -> Result<()>,
    ) -> Result<(f64, u64, StopReason)> {
        let kernel = self
            .handler
            .pairwise_kernel()
            .expect("run() only dispatches here with a kernel present");
        let deadline = self.config.wall_clock_deadline.map(|d| (Instant::now(), d));
        let cadence = self.config.checkpoint_every_ticks;
        let mut ticks = 0u64;
        let mut time;
        loop {
            if ticks >= self.config.max_events {
                return Err(SimError::EventBudgetExhausted { events: ticks });
            }
            let event = self.sampler.next_tick();
            ticks = event.global_tick_count;
            time = event.time;
            let edge_index = event.edge.index();
            let delivered = if FAULTS {
                let edge = self.edges[edge_index];
                let injector = self
                    .faults
                    .as_mut()
                    .expect("FAULTS is only instantiated with an injector present");
                injector.classify(event.edge, edge, event.global_tick_count)
                    == ContactFate::Delivered
            } else {
                true
            };
            if ADVERSARY {
                if delivered {
                    let edge = self.edges[edge_index];
                    let (u, v) = topology.endpoints(edge_index);
                    let (xs, tracker) = self.values.as_mut_parts();
                    let xu = xs[u];
                    let xv = xs[v];
                    let injector = self
                        .adversary
                        .as_mut()
                        .expect("ADVERSARY is only instantiated with an injector present");
                    let action =
                        injector.classify(event.edge, edge, event.global_tick_count, xu, xv);
                    match action {
                        AdversaryAction::Honest => {
                            let (new_u, new_v) = kernel(xu, xv);
                            xs[u] = new_u;
                            tracker.record_update(xu, new_u);
                            xs[v] = new_v;
                            tracker.record_update(xv, new_v);
                        }
                        AdversaryAction::Censored => {}
                        AdversaryAction::Falsified(contact) => {
                            // The same substitute → update → restore value
                            // and tracker sequence as the legacy loop's
                            // literal `set` calls (six `record_update`s at
                            // most, in the same order with the same
                            // operands) — *not* the sharded engine's
                            // net-effect collapse.
                            let mut cur_u = xu;
                            let mut cur_v = xv;
                            if let Some(report) = contact.u {
                                xs[u] = report.value;
                                tracker.record_update(cur_u, report.value);
                                cur_u = report.value;
                            }
                            if let Some(report) = contact.v {
                                xs[v] = report.value;
                                tracker.record_update(cur_v, report.value);
                                cur_v = report.value;
                            }
                            let (new_u, new_v) = kernel(cur_u, cur_v);
                            xs[u] = new_u;
                            tracker.record_update(cur_u, new_u);
                            xs[v] = new_v;
                            tracker.record_update(cur_v, new_v);
                            if contact.u.is_some_and(|r| r.restore) {
                                xs[u] = xu;
                                tracker.record_update(new_u, xu);
                            }
                            if contact.v.is_some_and(|r| r.restore) {
                                xs[v] = xv;
                                tracker.record_update(new_v, xv);
                            }
                        }
                    }
                }
            } else if delivered {
                let (u, v) = topology.endpoints(edge_index);
                let (xs, tracker) = self.values.as_mut_parts();
                let xu = xs[u];
                let xv = xs[v];
                let (new_u, new_v) = kernel(xu, xv);
                xs[u] = new_u;
                tracker.record_update(xu, new_u);
                xs[v] = new_v;
                tracker.record_update(xv, new_v);
            }

            // From here down this is the legacy loop's Incremental
            // refresh/check logic verbatim (the dispatch guarantees the
            // mode), so refresh ticks, salvage decisions, and stop checks
            // land on identical ticks with identical float state.
            if ticks.is_multiple_of(self.config.moment_refresh_every_ticks) {
                self.values.refresh_moments();
                self.moment_refreshes += 1;
                if !self.values.moments_finite() {
                    self.values.check_finite()?;
                    self.moments_overflowed = true;
                }
            }

            if ticks.is_multiple_of(self.config.check_every_ticks) {
                if self.values.moments_finite() {
                    self.moments_overflowed = false;
                    if self.values.moments_need_recenter() {
                        self.values.refresh_moments();
                        self.moment_refreshes += 1;
                    }
                } else if !self.moments_overflowed {
                    self.values.check_finite()?;
                    self.values.refresh_moments();
                    self.moment_refreshes += 1;
                    if !self.values.moments_finite() {
                        self.moments_overflowed = true;
                    }
                }
                let status = SimulationStatus {
                    time,
                    ticks,
                    variance: self.values.incremental_variance(),
                    initial_variance: self.initial_variance,
                };
                self.note_settling(&status);
                if let Some(reason) = self.config.stopping_rule.evaluate(&status) {
                    if self.moments_overflowed {
                        self.values.check_finite()?;
                    }
                    return Ok((time, ticks, reason));
                }
            }

            if let Some((started, budget)) = deadline {
                if ticks.is_multiple_of(DEADLINE_CHECK_TICKS) && started.elapsed() >= budget {
                    return Err(SimError::DeadlineExceeded { ticks });
                }
            }

            // Same capture point as the legacy loop (after update, refresh,
            // and stopping check), so checkpoints from either layout are
            // interchangeable.
            if cadence != 0 && ticks.is_multiple_of(cadence) {
                sink(self.capture_checkpoint(time, ticks))?;
            }
        }
    }

    /// The sharded engine (see [`SimulationConfig::shards`]): events are
    /// drawn and fault-classified serially in tick order — keeping both the
    /// clock and drop RNG streams identical to the legacy loop's — then the
    /// delivered events of each batch are applied in conflict-free wavefront
    /// rounds fanned out over up to `shards` lanes with a deterministic
    /// merge order ([`crate::shard`]).  Adversary-involved contacts flush
    /// the pending parallel batch and run serially against the
    /// fully-applied state, so classification reads and falsified updates
    /// are shard-count-invariant.  Stopping, settling, recentring, and
    /// overflow salvage run at **batch** granularity (batches are cut at
    /// exact moment-refresh boundaries and the event cap), mirroring the
    /// legacy per-check logic; every decision depends only on the event
    /// sequence, so the run is bit-identical for every shard count.
    fn run_sharded(&mut self, shards: usize) -> Result<(f64, u64, StopReason)> {
        let kernel = self
            .handler
            .pairwise_kernel()
            .expect("run() only dispatches here with a kernel present");
        let executor = gossip_exec::Executor::new(shards);
        let shared = SharedValues::from_values(&self.values);
        let mut tracker = *self.values.moments();
        let mut planner = BatchPlanner::new(self.values.len());
        let mut snapshot: Vec<f64> = Vec::new();
        let refresh_every = self.config.moment_refresh_every_ticks;
        let deadline = self.config.wall_clock_deadline.map(|d| (Instant::now(), d));
        let mut time = 0.0_f64;
        let mut ticks = 0_u64;
        let stopped = loop {
            if ticks >= self.config.max_events {
                break Err(SimError::EventBudgetExhausted { events: ticks });
            }
            // Batch granularity is coarse enough that one `Instant::now`
            // per iteration is free.
            if let Some((started, budget)) = deadline {
                if started.elapsed() >= budget {
                    break Err(SimError::DeadlineExceeded { ticks });
                }
            }
            // Cut the batch at the next exact-refresh boundary and the event
            // cap, so refreshes land on the exact same ticks as in a run
            // with any other shard count.
            let until_refresh = refresh_every - (ticks % refresh_every);
            let batch = BATCH_TICKS
                .min(until_refresh)
                .min(self.config.max_events - ticks);
            planner.clear();
            for _ in 0..batch {
                let event = self.sampler.next_tick();
                time = event.time;
                let edge = self.edges[event.edge.index()];
                let delivered = match self.faults.as_mut() {
                    Some(injector) => {
                        injector.classify(event.edge, edge, event.global_tick_count)
                            == ContactFate::Delivered
                    }
                    None => true,
                };
                if !delivered {
                    continue;
                }
                let (u, v) = edge.endpoints();
                let adversarial = match self.adversary.as_mut() {
                    None => false,
                    Some(injector) => {
                        if injector.touches(event.edge, edge) {
                            true
                        } else {
                            injector.note_honest();
                            false
                        }
                    }
                };
                if !adversarial {
                    planner.push(u.index(), v.index());
                    continue;
                }
                // Adversary-involved contact: flush the pending parallel
                // batch first, so the classification (which may read the
                // endpoints' values) and the serial application below both
                // observe the fully-applied state.  Every flush point and
                // every value read depends only on the event sequence, so
                // the run stays bit-identical for every shard count.
                let (d_sum, d_sum_sq) = planner.apply(&executor, &shared, kernel, tracker.shift());
                tracker.apply_delta(d_sum, d_sum_sq);
                planner.clear();
                let injector = self
                    .adversary
                    .as_mut()
                    .expect("adversarial contacts only arise with an injector present");
                let value_u = shared.get(u.index());
                let value_v = shared.get(v.index());
                let action =
                    injector.classify(event.edge, edge, event.global_tick_count, value_u, value_v);
                match action {
                    AdversaryAction::Honest => planner.push(u.index(), v.index()),
                    AdversaryAction::Censored => {}
                    AdversaryAction::Falsified(contact) => {
                        // Substitute-run-restore collapsed to its net effect,
                        // applied with the same kernel and the same per-entry
                        // moment arithmetic as a parallel lane.
                        let in_u = contact.u.map_or(value_u, |r| r.value);
                        let in_v = contact.v.map_or(value_v, |r| r.value);
                        let (out_u, out_v) = kernel(in_u, in_v);
                        let new_u = if contact.u.is_some_and(|r| r.restore) {
                            value_u
                        } else {
                            out_u
                        };
                        let new_v = if contact.v.is_some_and(|r| r.restore) {
                            value_v
                        } else {
                            out_v
                        };
                        shared.set(u.index(), new_u);
                        shared.set(v.index(), new_v);
                        let shift = tracker.shift();
                        let (mut d_sum, mut d_sum_sq) = (0.0, 0.0);
                        for (old, new) in [(value_u, new_u), (value_v, new_v)] {
                            let d_old = old - shift;
                            let d_new = new - shift;
                            d_sum += d_new - d_old;
                            d_sum_sq += d_new * d_new - d_old * d_old;
                        }
                        tracker.apply_delta(d_sum, d_sum_sq);
                    }
                }
            }
            ticks += batch;
            let (d_sum, d_sum_sq) = planner.apply(&executor, &shared, kernel, tracker.shift());
            tracker.apply_delta(d_sum, d_sum_sq);

            if ticks.is_multiple_of(refresh_every) {
                shared.snapshot_into(&mut snapshot);
                tracker.refresh(&snapshot);
                self.moment_refreshes += 1;
                if !tracker.is_finite() {
                    // Same split as the legacy loop: a genuinely non-finite
                    // value errors out; finite values whose squared
                    // deviations overflow keep running as "not converged".
                    check_finite_slice(&snapshot)?;
                    self.moments_overflowed = true;
                }
            }

            // Batch-granularity stopping check, mirroring the legacy loop's
            // per-check recentring and one-shot overflow salvage.
            if tracker.is_finite() {
                self.moments_overflowed = false;
                if tracker.needs_recenter() {
                    shared.snapshot_into(&mut snapshot);
                    tracker.refresh(&snapshot);
                    self.moment_refreshes += 1;
                }
            } else if !self.moments_overflowed {
                shared.snapshot_into(&mut snapshot);
                check_finite_slice(&snapshot)?;
                tracker.refresh(&snapshot);
                self.moment_refreshes += 1;
                if !tracker.is_finite() {
                    self.moments_overflowed = true;
                }
            }
            let status = SimulationStatus {
                time,
                ticks,
                variance: tracker.variance(),
                initial_variance: self.initial_variance,
            };
            self.note_settling(&status);
            if let Some(reason) = self.config.stopping_rule.evaluate(&status) {
                break Ok((time, ticks, reason));
            }
        };
        // Install the evolved state back into `self.values` regardless of
        // how the loop ended, so `values()` (and the terminal finiteness
        // scan below) observe it just as they would after the legacy loop.
        shared.snapshot_into(&mut snapshot);
        self.values.overwrite_from_slice(&snapshot);
        let (time, ticks, reason) = stopped?;
        if self.moments_overflowed {
            // The overflow flag suppressed per-batch finiteness scans; honor
            // `run`'s error contract for the terminal state.
            self.values.check_finite()?;
        }
        Ok((time, ticks, reason))
    }

    /// Snapshots the full resumable state at a checkpoint boundary.  Pure
    /// read: no RNG stream advances, so capture never perturbs the run.
    fn capture_checkpoint(&self, time: f64, ticks: u64) -> EngineCheckpoint {
        EngineCheckpoint {
            ticks,
            time,
            seed: self.config.seed,
            clock_model: self.config.clock_model,
            node_count: self.graph.node_count(),
            edge_count: self.edges.len(),
            values: self.values.as_slice().to_vec(),
            moments: self.values.moments().to_raw_parts(),
            initial_variance: self.initial_variance,
            last_settle: self.last_settle,
            moment_refreshes: self.moment_refreshes,
            moments_overflowed: self.moments_overflowed,
            sampler: match &self.sampler {
                Sampler::Queue(queue) => SamplerState::Queue(queue.checkpoint_state()),
                Sampler::Global(global) => SamplerState::Global(global.checkpoint_state()),
            },
            faults: self.faults.as_ref().map(|i| i.checkpoint_state()),
            adversary: self.adversary.as_ref().map(|i| i.checkpoint_state()),
        }
    }

    fn finish(
        &mut self,
        time: f64,
        ticks: u64,
        reason: StopReason,
        recorder: Option<TraceRecorder>,
    ) -> SimulationOutcome {
        let trace = recorder.map(|mut rec| {
            rec.record(time, ticks.max(1), &self.values, true);
            // Restore the moved-in trace configuration and partition so a
            // later `run` on this simulator records again (they are taken,
            // not cloned, at the top of `run`).
            let (trace, cfg, partition) = rec.finish_with_parts();
            self.config.trace = Some(cfg);
            self.config.partition = partition;
            trace
        });
        SimulationOutcome {
            final_variance: self.values.variance(),
            final_values: self.values.clone(),
            initial_variance: self.initial_variance,
            elapsed_time: time,
            total_ticks: ticks,
            stop_reason: reason,
            trace,
            settling_time: self.config.settling_threshold.map(|_| self.last_settle),
            moment_refreshes: self.moment_refreshes,
            fault_stats: self.fault_stats(),
            adversary_stats: self.adversary_stats(),
        }
    }

    /// The fault-injection counters accumulated so far (all zeros when no
    /// fault plan is configured).  Like [`Self::settling_time`] this stays
    /// readable after [`Self::run`] returns an error, so callers can report
    /// how much of a censored run was suppressed.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|i| i.stats()).unwrap_or_default()
    }

    /// The adversary counters accumulated so far (all zeros when no
    /// adversary plan is configured); readable after errors like
    /// [`Self::fault_stats`].
    pub fn adversary_stats(&self) -> AdversaryStats {
        self.adversary
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }
}

/// `NodeValues::check_finite`, for a raw snapshot slice.
fn check_finite_slice(values: &[f64]) -> Result<()> {
    if let Some(node) = values.iter().position(|v| !v.is_finite()) {
        return Err(SimError::NonFiniteValue { node });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::NoOpHandler;
    use gossip_graph::generators::{complete, dumbbell, path};
    use gossip_graph::NodeId;

    struct Vanilla;

    impl EdgeTickHandler for Vanilla {
        fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
            let (u, v) = ctx.edge.endpoints();
            values.average_pair(u, v);
        }

        fn name(&self) -> &str {
            "vanilla"
        }

        fn pairwise_kernel(&self) -> Option<fn(f64, f64) -> (f64, f64)> {
            Some(|xu, xv| {
                let avg = 0.5 * (xu + xv);
                (avg, avg)
            })
        }
    }

    struct Poison;

    impl EdgeTickHandler for Poison {
        fn on_edge_tick(&mut self, values: &mut NodeValues, _ctx: &EdgeTickContext<'_>) {
            values.set(NodeId(0), f64::NAN);
        }
    }

    fn spike(n: usize) -> NodeValues {
        let mut v = vec![0.0; n];
        v[0] = n as f64;
        NodeValues::from_values(v).unwrap()
    }

    #[test]
    fn validates_state_size_and_edges() {
        let g = complete(3).unwrap();
        let bad = NodeValues::constant(4, 0.0);
        assert!(matches!(
            AsyncSimulator::new(&g, bad, NoOpHandler, SimulationConfig::new(1)),
            Err(SimError::StateSizeMismatch { .. })
        ));
        let edgeless = gossip_graph::Graph::from_edges(3, &[]).unwrap();
        assert!(matches!(
            AsyncSimulator::new(
                &edgeless,
                NodeValues::constant(3, 0.0),
                NoOpHandler,
                SimulationConfig::new(1)
            ),
            Err(SimError::NoEdges)
        ));
    }

    #[test]
    fn zero_initial_variance_stops_immediately() {
        let g = complete(3).unwrap();
        let values = NodeValues::constant(3, 5.0);
        let mut sim = AsyncSimulator::new(&g, values, Vanilla, SimulationConfig::new(1)).unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.total_ticks, 0);
        assert!(outcome.converged());
        assert_eq!(outcome.variance_ratio(), 0.0);
    }

    #[test]
    fn vanilla_gossip_converges_on_complete_graph() {
        let g = complete(8).unwrap();
        let initial = spike(8);
        let mean = initial.mean();
        let config = SimulationConfig::new(3)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-8).or_max_ticks(1_000_000));
        let mut sim = AsyncSimulator::new(&g, initial, Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!(outcome.variance_ratio() < 1e-8);
        // Mass conservation: mean preserved to numerical precision.
        assert!((outcome.final_values.mean() - mean).abs() < 1e-9);
        assert!(outcome.elapsed_time > 0.0);
        assert!(outcome.total_ticks > 0);
    }

    #[test]
    fn noop_handler_hits_time_limit() {
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(3.0));
        let mut sim = AsyncSimulator::new(&g, spike(4), NoOpHandler, config).unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.stop_reason, StopReason::TimeLimit);
        assert!(outcome.elapsed_time >= 3.0);
        assert!((outcome.variance_ratio() - 1.0).abs() < 1e-12);
        assert!(!outcome.converged());
    }

    #[test]
    fn event_budget_guard_fires() {
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_max_events(100);
        let mut sim = AsyncSimulator::new(&g, spike(4), NoOpHandler, config).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }

    #[test]
    fn non_finite_values_detected() {
        let g = complete(3).unwrap();
        let config = SimulationConfig::new(5);
        let mut sim = AsyncSimulator::new(&g, spike(3), Poison, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::NonFiniteValue { .. })));
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let g = dumbbell(4).unwrap().0;
        let run = |seed: u64| {
            let config = SimulationConfig::new(seed)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(100_000));
            let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.total_ticks, b.total_ticks);
        assert_eq!(a.final_values, b.final_values);
        let c = run(12);
        assert!(a.total_ticks != c.total_ticks || a.final_values != c.final_values);
    }

    #[test]
    fn both_clock_models_converge() {
        let g = complete(6).unwrap();
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            let config = SimulationConfig::new(9)
                .with_clock_model(model)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000));
            let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
            let outcome = sim.run().unwrap();
            assert!(outcome.converged(), "model {model:?} did not converge");
        }
    }

    #[test]
    fn trace_recording_and_block_statistics() {
        let (g, partition) = dumbbell(3).unwrap();
        let initial = NodeValues::from_values(vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0]).unwrap();
        let config = SimulationConfig::new(2)
            .with_partition(partition)
            .with_trace(TraceConfig::every_ticks(1).with_block_statistics())
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200_000));
        let mut sim = AsyncSimulator::new(&g, initial, Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        let trace = outcome.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
        // The first recorded point must carry block statistics.
        assert!(trace.points()[0].block_mean_one.is_some());
        // Variance at the last point matches the outcome.
        let last = trace.last().unwrap();
        assert!((last.variance - outcome.final_variance).abs() < 1e-12);
        // The mean column is constant (mass conservation) across the trace.
        for p in trace.points() {
            assert!(p.mean.abs() < 1e-9);
        }
    }

    #[test]
    fn tracing_survives_repeated_runs() {
        // The trace configuration and partition are moved into the recorder
        // (not cloned per run) and restored when the run finishes, so a
        // second `run` on the same simulator must still record a trace with
        // block statistics.
        let (g, partition) = dumbbell(3).unwrap();
        let config = SimulationConfig::new(2)
            .with_partition(partition)
            .with_trace(TraceConfig::every_ticks(1).with_block_statistics())
            .with_stopping_rule(StoppingRule::max_ticks(25));
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        let first = sim.run().unwrap();
        let second = sim.run().unwrap();
        for outcome in [&first, &second] {
            let trace = outcome.trace.as_ref().expect("trace requested");
            assert!(!trace.is_empty());
            assert!(trace.points()[0].block_mean_one.is_some());
        }
    }

    #[test]
    fn check_every_ticks_reduces_evaluations_but_still_stops() {
        let g = path(10).unwrap();
        let config = SimulationConfig::new(4)
            .with_check_every_ticks(50)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000));
        let mut sim = AsyncSimulator::new(&g, spike(10), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert_eq!(outcome.total_ticks % 50, 0);
    }

    #[test]
    fn config_builder_round_trip() {
        let (_, partition) = dumbbell(2).unwrap();
        let c = SimulationConfig::new(7)
            .with_stopping_rule(StoppingRule::max_ticks(10))
            .with_clock_model(ClockModel::GlobalUniform)
            .with_trace(TraceConfig::every_ticks(2))
            .with_partition(partition.clone())
            .with_max_events(123)
            .with_check_every_ticks(0)
            .with_variance_mode(VarianceMode::ExactEveryCheck)
            .with_moment_refresh_every_ticks(0)
            .with_settling_threshold(0.25)
            .with_fault_plan(FaultPlan::new(3).with_drop_probability(0.1))
            .with_adversary_plan(AdversaryPlan::new(4).with_biased_injector(NodeId(0), 1.0))
            .with_shards(0)
            .with_checkpoint_every_ticks(4096)
            .with_wall_clock_deadline(Duration::from_secs(5));
        assert_eq!(c.seed, 7);
        assert_eq!(c.checkpoint_every_ticks, 4096);
        assert_eq!(c.wall_clock_deadline, Some(Duration::from_secs(5)));
        assert_eq!(c.shards, Some(1), "with_shards clamps to at least 1");
        assert_eq!(
            c.fault_plan,
            Some(FaultPlan::new(3).with_drop_probability(0.1))
        );
        assert_eq!(
            c.adversary_plan,
            Some(AdversaryPlan::new(4).with_biased_injector(NodeId(0), 1.0))
        );
        assert_eq!(c.clock_model, ClockModel::GlobalUniform);
        assert_eq!(c.max_events, 123);
        assert_eq!(c.check_every_ticks, 1);
        assert_eq!(c.variance_mode, VarianceMode::ExactEveryCheck);
        assert_eq!(c.moment_refresh_every_ticks, 1);
        assert_eq!(c.settling_threshold, Some(0.25));
        assert_eq!(c.partition, Some(partition));
        assert!(c.trace.is_some());
        let d = SimulationConfig::new(1);
        assert_eq!(d.variance_mode, VarianceMode::Incremental);
        assert_eq!(d.moment_refresh_every_ticks, DEFAULT_MOMENT_REFRESH_TICKS);
        assert_eq!(d.settling_threshold, None);
        assert_eq!(d.fault_plan, None);
        assert_eq!(d.adversary_plan, None);
        assert_eq!(d.shards, None);
        assert_eq!(d.checkpoint_every_ticks, 0);
        assert_eq!(d.wall_clock_deadline, None);
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_shard_counts() {
        // shards ∈ {1, 2, 4} must agree on everything observable — stop
        // tick, final bits, refresh count, fault stats — under both clock
        // models and with a fault plan in play.
        let g = dumbbell(8).unwrap().0;
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            let run = |shards: usize| {
                let config = SimulationConfig::new(23)
                    .with_clock_model(model)
                    .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000))
                    .with_moment_refresh_every_ticks(512)
                    .with_settling_threshold(0.5)
                    .with_fault_plan(FaultPlan::new(7).with_drop_probability(0.2))
                    .with_shards(shards);
                let mut sim = AsyncSimulator::new(&g, spike(16), Vanilla, config).unwrap();
                sim.run().unwrap()
            };
            let one = run(1);
            assert!(one.converged(), "{model:?}");
            assert!(one.fault_stats.dropped > 0);
            for shards in [2usize, 4] {
                let many = run(shards);
                assert_eq!(one.total_ticks, many.total_ticks, "{model:?} x{shards}");
                assert_eq!(one.stop_reason, many.stop_reason);
                assert_eq!(one.moment_refreshes, many.moment_refreshes);
                assert_eq!(one.fault_stats, many.fault_stats);
                assert_eq!(
                    one.elapsed_time.to_bits(),
                    many.elapsed_time.to_bits(),
                    "{model:?} x{shards}"
                );
                assert_eq!(
                    one.settling_time.unwrap().to_bits(),
                    many.settling_time.unwrap().to_bits()
                );
                for (a, b) in one
                    .final_values
                    .as_slice()
                    .iter()
                    .zip(many.final_values.as_slice())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "{model:?} x{shards}");
                }
            }
        }
    }

    #[test]
    fn sharded_run_conserves_mass_and_converges_like_serial() {
        // The sharded mode is a different float schedule than the legacy
        // loop, but it simulates the same process: same tick stream, same
        // updates, sum conserved, and a genuine Definition 1 stop.
        let g = complete(12).unwrap();
        let initial = spike(12);
        let mean = initial.mean();
        let config = SimulationConfig::new(31)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000))
            .with_shards(4);
        let mut sim = AsyncSimulator::new(&g, initial, Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!((outcome.final_values.mean() - mean).abs() < 1e-9);
        assert!(outcome.variance_ratio() < crate::stopping::DEFINITION1_THRESHOLD);
    }

    #[test]
    fn sharding_without_a_kernel_falls_back_to_the_legacy_loop() {
        // `NoOpHandler` has no pairwise kernel: `shards` must be ignored and
        // the run must match the unsharded one byte for byte.
        let g = complete(4).unwrap();
        let run = |shards: Option<usize>| {
            let mut config = SimulationConfig::new(5)
                .with_stopping_rule(StoppingRule::definition1().or_max_time(3.0));
            config.shards = shards;
            let mut sim = AsyncSimulator::new(&g, spike(4), NoOpHandler, config).unwrap();
            sim.run().unwrap()
        };
        let legacy = run(None);
        let fallback = run(Some(4));
        assert_eq!(legacy.total_ticks, fallback.total_ticks);
        assert_eq!(
            legacy.elapsed_time.to_bits(),
            fallback.elapsed_time.to_bits()
        );
        assert_eq!(legacy.stop_reason, fallback.stop_reason);
    }

    #[test]
    fn sharding_with_a_trace_falls_back_and_still_records() {
        let (g, partition) = dumbbell(3).unwrap();
        let config = SimulationConfig::new(2)
            .with_partition(partition)
            .with_trace(TraceConfig::every_ticks(1).with_block_statistics())
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200_000))
            .with_shards(4);
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        let trace = outcome.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
    }

    #[test]
    fn sharded_event_budget_guard_fires() {
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_max_events(10_000)
            .with_shards(2);
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { events: 10_000 })
        ));
    }

    #[test]
    fn flat_layout_is_bit_identical_to_legacy() {
        // The SoA/CSR loop must reproduce the legacy loop byte for byte —
        // stop tick/time/reason, refresh count, injector stats, final state
        // bits — under both clock models, fault-free and with faults and an
        // adversary in play.  `tests/memscale_differential.rs` repeats this
        // at bench scale; this is the in-crate smoke version.
        let g = dumbbell(8).unwrap().0;
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            for hostile in [false, true] {
                let run = |layout: MemoryLayout| {
                    let mut config = SimulationConfig::new(29)
                        .with_clock_model(model)
                        .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000))
                        .with_moment_refresh_every_ticks(512)
                        .with_settling_threshold(0.5)
                        .with_memory_layout(layout);
                    if hostile {
                        config = config
                            .with_fault_plan(
                                FaultPlan::new(7)
                                    .with_drop_probability(0.1)
                                    .with_node_pause(NodeId(0), 100, 400),
                            )
                            .with_adversary_plan(
                                crate::adversary::AdversaryPlan::new(13)
                                    .with_biased_injector(NodeId(1), 0.4)
                                    .with_extreme_value_node(NodeId(9), 50.0),
                            );
                    }
                    let mut sim = AsyncSimulator::new(&g, spike(16), Vanilla, config).unwrap();
                    sim.run().unwrap()
                };
                let legacy = run(MemoryLayout::Legacy);
                let flat = run(MemoryLayout::FlatSoA);
                assert!(legacy.total_ticks > 0);
                assert_eq!(legacy.total_ticks, flat.total_ticks, "{model:?}");
                assert_eq!(legacy.stop_reason, flat.stop_reason);
                assert_eq!(legacy.moment_refreshes, flat.moment_refreshes);
                assert_eq!(legacy.fault_stats, flat.fault_stats);
                assert_eq!(legacy.adversary_stats, flat.adversary_stats);
                assert_eq!(
                    legacy.elapsed_time.to_bits(),
                    flat.elapsed_time.to_bits(),
                    "{model:?} hostile={hostile}"
                );
                assert_eq!(
                    legacy.final_variance.to_bits(),
                    flat.final_variance.to_bits()
                );
                assert_eq!(
                    legacy.settling_time.unwrap().to_bits(),
                    flat.settling_time.unwrap().to_bits()
                );
                for (a, b) in legacy
                    .final_values
                    .as_slice()
                    .iter()
                    .zip(flat.final_values.as_slice())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "{model:?} hostile={hostile}");
                }
            }
        }
    }

    #[test]
    fn flat_layout_without_a_kernel_falls_back_to_the_legacy_loop() {
        // `NoOpHandler` has no pairwise kernel, so the flat dispatch must
        // silently run the legacy loop — same contract as sharding.
        let g = complete(4).unwrap();
        let run = |layout: MemoryLayout| {
            let config = SimulationConfig::new(5)
                .with_stopping_rule(StoppingRule::definition1().or_max_time(3.0))
                .with_memory_layout(layout);
            let mut sim = AsyncSimulator::new(&g, spike(4), NoOpHandler, config).unwrap();
            sim.run().unwrap()
        };
        let legacy = run(MemoryLayout::Legacy);
        let fallback = run(MemoryLayout::FlatSoA);
        assert_eq!(legacy.total_ticks, fallback.total_ticks);
        assert_eq!(
            legacy.elapsed_time.to_bits(),
            fallback.elapsed_time.to_bits()
        );
        assert_eq!(legacy.stop_reason, fallback.stop_reason);
    }

    #[test]
    fn flat_layout_with_a_trace_falls_back_and_still_records() {
        let (g, partition) = dumbbell(3).unwrap();
        let config = SimulationConfig::new(2)
            .with_partition(partition)
            .with_trace(TraceConfig::every_ticks(1).with_block_statistics())
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200_000))
            .with_flat_layout();
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        let trace = outcome.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
    }

    #[test]
    fn flat_event_budget_guard_fires() {
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_max_events(10_000)
            .with_flat_layout();
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { events: 10_000 })
        ));
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_construction() {
        let g = dumbbell(6).unwrap().0;
        let config = SimulationConfig::new(17)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000));
        let mut fresh = AsyncSimulator::new(&g, spike(12), Vanilla, config.clone()).unwrap();
        let baseline = fresh.run().unwrap();

        let mut scratch = ClockScratch::default();
        // Dirty the scratch on an unrelated run first.
        let small = complete(3).unwrap();
        let sim = AsyncSimulator::new_with_scratch(
            &small,
            spike(3),
            NoOpHandler,
            SimulationConfig::new(1).with_stopping_rule(StoppingRule::max_ticks(64)),
            &mut scratch,
        )
        .unwrap();
        sim.into_parts_with_scratch(&mut scratch);

        let mut recycled =
            AsyncSimulator::new_with_scratch(&g, spike(12), Vanilla, config, &mut scratch).unwrap();
        let outcome = recycled.run().unwrap();
        assert_eq!(baseline.total_ticks, outcome.total_ticks);
        assert_eq!(
            baseline.elapsed_time.to_bits(),
            outcome.elapsed_time.to_bits()
        );
        for (a, b) in baseline
            .final_values
            .as_slice()
            .iter()
            .zip(outcome.final_values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        recycled.into_parts_with_scratch(&mut scratch);
    }

    #[test]
    fn incremental_and_exact_modes_stop_at_the_same_tick() {
        let g = dumbbell(6).unwrap().0;
        let run = |mode: VarianceMode| {
            let config = SimulationConfig::new(17)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000))
                .with_variance_mode(mode)
                .with_moment_refresh_every_ticks(64);
            let mut sim = AsyncSimulator::new(&g, spike(12), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let incremental = run(VarianceMode::Incremental);
        let exact = run(VarianceMode::ExactEveryCheck);
        assert!(incremental.converged());
        assert_eq!(incremental.total_ticks, exact.total_ticks);
        assert_eq!(incremental.stop_reason, exact.stop_reason);
        assert_eq!(incremental.final_values, exact.final_values);
        assert_eq!(exact.moment_refreshes, 0);
        assert!(incremental.moment_refreshes >= incremental.total_ticks / 64);
    }

    #[test]
    fn moment_refreshes_follow_the_deterministic_schedule() {
        let g = complete(8).unwrap();
        let config = SimulationConfig::new(3)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_ticks(1_000_000))
            .with_moment_refresh_every_ticks(32);
        let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        // One scheduled refresh per full 32-tick window, and no unscheduled
        // O(n) passes (the values stay finite throughout).
        assert_eq!(outcome.moment_refreshes, outcome.total_ticks / 32);
    }

    #[test]
    fn large_offset_states_converge_and_never_false_stop() {
        // A spike riding on a 1e8 common offset: the uncentred moment
        // formula would lose every digit to cancellation, clamp to zero, and
        // "converge" at the first check.  The shifted tracker must make the
        // run behave exactly like the offset-free one.
        let g = complete(8).unwrap();
        let offset: Vec<f64> = spike(8).as_slice().iter().map(|x| 1e8 + x).collect();
        let config = SimulationConfig::new(3)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000));
        let mut sim = AsyncSimulator::new(
            &g,
            NodeValues::from_values(offset).unwrap(),
            Vanilla,
            config.clone(),
        )
        .unwrap();
        let with_offset = sim.run().unwrap();
        let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
        let without_offset = sim.run().unwrap();
        assert!(with_offset.converged());
        assert_eq!(with_offset.total_ticks, without_offset.total_ticks);
        assert!(with_offset.total_ticks > 1, "stopped suspiciously early");
    }

    #[test]
    fn mid_run_rebaseline_recenters_instead_of_false_converging() {
        // A handler that re-baselines the whole state by +1e8 on its first
        // tick (legal through the public `set` API, but sum-violating): the
        // stale shift would make the O(1) variance cancel to ~0 and stop the
        // run instantly; the re-centre guard must instead refresh and let
        // the run converge at the genuine mixing time.
        struct Rebaseline;
        impl EdgeTickHandler for Rebaseline {
            fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
                if ctx.global_tick_count == 1 {
                    for i in 0..values.len() {
                        let v = values.get(NodeId(i));
                        values.set(NodeId(i), v + 1e8);
                    }
                }
                let (u, v) = ctx.edge.endpoints();
                values.average_pair(u, v);
            }
        }
        let g = complete(8).unwrap();
        let config = SimulationConfig::new(3)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000));
        let mut sim = AsyncSimulator::new(&g, spike(8), Rebaseline, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!(outcome.total_ticks > 5, "false convergence on stale shift");
        // The exact final variance confirms the stop was genuine.
        assert!(outcome.variance_ratio() < crate::stopping::DEFINITION1_THRESHOLD);
        // The rebaseline triggered at least one unscheduled re-centre.
        assert!(outcome.moment_refreshes >= 1);
    }

    #[test]
    fn out_of_range_finite_values_run_to_the_guard_without_error() {
        // |x| ≈ 1e200 is finite but its squared deviation overflows f64: the
        // variance is genuinely unrepresentable.  The run must neither error
        // (no value is NaN/∞) nor converge (∞ ratio), and the one-shot
        // salvage must not degrade every check to O(n) — it runs to the tick
        // guard like the exact reference mode would.
        struct Blowup;
        impl EdgeTickHandler for Blowup {
            fn on_edge_tick(&mut self, values: &mut NodeValues, _ctx: &EdgeTickContext<'_>) {
                values.set(NodeId(0), 1e200);
            }
        }
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200));
        let mut sim = AsyncSimulator::new(&g, spike(4), Blowup, config).unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.stop_reason, StopReason::TickLimit);
        assert!(!outcome.converged());
        // One salvage refresh for the whole episode, not one per check.
        assert_eq!(outcome.moment_refreshes, 1);
    }

    #[test]
    fn nan_after_overflow_still_surfaces_as_an_error() {
        // First drive a value out of f64 square range (sets the overflow
        // flag, which suppresses per-check finiteness scans), then poison
        // the state with a genuine NaN: the terminal scan must still honor
        // `run`'s error contract instead of returning Ok with a NaN outcome.
        struct BlowupThenNan;
        impl EdgeTickHandler for BlowupThenNan {
            fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
                if ctx.global_tick_count == 1 {
                    values.set(NodeId(0), 1e200);
                }
                if ctx.global_tick_count == 50 {
                    values.set(NodeId(1), f64::NAN);
                }
            }
        }
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(200));
        let mut sim = AsyncSimulator::new(&g, spike(4), BlowupThenNan, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::NonFiniteValue { .. })));
    }

    #[test]
    fn noop_fault_plan_is_byte_identical_to_no_plan() {
        let g = dumbbell(5).unwrap().0;
        let run = |plan: Option<FaultPlan>| {
            let mut config = SimulationConfig::new(21)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000));
            config.fault_plan = plan;
            let mut sim = AsyncSimulator::new(&g, spike(10), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let baseline = run(None);
        let noop = run(Some(FaultPlan::none()));
        assert_eq!(baseline.total_ticks, noop.total_ticks);
        assert_eq!(baseline.stop_reason, noop.stop_reason);
        assert_eq!(baseline.moment_refreshes, noop.moment_refreshes);
        for (a, b) in baseline
            .final_values
            .as_slice()
            .iter()
            .zip(noop.final_values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(noop.fault_stats.total_suppressed(), 0);
        assert_eq!(noop.fault_stats.delivered, noop.total_ticks);
        assert_eq!(baseline.fault_stats, FaultStats::default());
    }

    #[test]
    fn message_drops_conserve_mass_and_delay_convergence() {
        let g = complete(8).unwrap();
        let initial = spike(8);
        let mean = initial.mean();
        let run = |p: f64| {
            let config = SimulationConfig::new(13)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000))
                .with_fault_plan(FaultPlan::new(99).with_drop_probability(p));
            let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let clean = run(0.0);
        let lossy = run(0.5);
        assert!(clean.converged());
        assert!(lossy.converged());
        // Dropped contacts are skipped atomically, so the sum is conserved
        // exactly as in the clean run.
        assert!((lossy.final_values.mean() - mean).abs() < 1e-9);
        // Half the contacts do nothing, so more ticks are needed.
        assert!(lossy.total_ticks > clean.total_ticks);
        assert!(lossy.fault_stats.dropped > 0);
        assert_eq!(
            lossy.fault_stats.total_contacts(),
            lossy.total_ticks,
            "every tick is classified exactly once"
        );
    }

    #[test]
    fn edge_outage_suppresses_only_the_window() {
        // A complete graph with one edge down for the first 1000 ticks: the
        // run still converges (the other 14 edges keep mixing), and only the
        // in-window ticks of that edge are suppressed.
        let g = complete(6).unwrap();
        let config = SimulationConfig::new(17)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-9).or_max_ticks(1_000_000))
            .with_fault_plan(FaultPlan::new(1).with_edge_outage(gossip_graph::EdgeId(0), 0, 1000));
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!(outcome.fault_stats.edge_down_skips > 0);
        assert_eq!(outcome.fault_stats.dropped, 0);
        assert_eq!(outcome.fault_stats.node_pause_skips, 0);
    }

    #[test]
    fn pausing_every_node_censors_at_the_guard_instead_of_spinning() {
        // With every node paused forever, no contact is ever delivered: the
        // variance never moves, Definition 1 can never fire, and the engine
        // must run to its tick guard (censoring) rather than spin or error.
        let g = complete(4).unwrap();
        let mut plan = FaultPlan::new(5);
        for i in 0..4 {
            plan = plan.with_node_pause(NodeId(i), 0, u64::MAX);
        }
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500))
            .with_fault_plan(plan);
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.stop_reason, StopReason::TickLimit);
        assert!(!outcome.converged());
        assert!((outcome.variance_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(outcome.fault_stats.delivered, 0);
        assert_eq!(outcome.fault_stats.node_pause_skips, outcome.total_ticks);
        // The counters stay readable on the simulator itself.
        assert_eq!(sim.fault_stats(), outcome.fault_stats);
    }

    #[test]
    fn invalid_fault_plans_are_rejected_at_construction() {
        let g = complete(3).unwrap();
        let config =
            SimulationConfig::new(1).with_fault_plan(FaultPlan::new(0).with_drop_probability(2.0));
        assert!(matches!(
            AsyncSimulator::new(&g, spike(3), Vanilla, config),
            Err(SimError::InvalidConfig { .. })
        ));
        let config = SimulationConfig::new(1).with_fault_plan(FaultPlan::new(0).with_node_pause(
            NodeId(9),
            0,
            1,
        ));
        assert!(matches!(
            AsyncSimulator::new(&g, spike(3), Vanilla, config),
            Err(SimError::Graph(_))
        ));
    }

    #[test]
    fn noop_adversary_plan_is_byte_identical_to_no_plan() {
        let g = dumbbell(5).unwrap().0;
        let run = |plan: Option<AdversaryPlan>| {
            let mut config = SimulationConfig::new(21)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000));
            config.adversary_plan = plan;
            let mut sim = AsyncSimulator::new(&g, spike(10), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let baseline = run(None);
        let noop = run(Some(AdversaryPlan::none()));
        assert_eq!(baseline.total_ticks, noop.total_ticks);
        assert_eq!(baseline.stop_reason, noop.stop_reason);
        assert_eq!(baseline.moment_refreshes, noop.moment_refreshes);
        for (a, b) in baseline
            .final_values
            .as_slice()
            .iter()
            .zip(noop.final_values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(noop.adversary_stats.honest_contacts, noop.total_ticks);
        assert_eq!(noop.adversary_stats.falsified_contacts, 0);
        assert_eq!(noop.adversary_stats.censored_contacts, 0);
        assert_eq!(baseline.adversary_stats, AdversaryStats::default());
    }

    #[test]
    fn biased_injector_drags_vanilla_toward_its_target() {
        // One frozen biased node reporting `initial + bias`: vanilla gossip
        // pulls every honest node toward that target, so the honest mean
        // drifts away from the clean consensus while staying within the
        // exact falsification budget `l1 / honest_count`.
        let g = complete(8).unwrap();
        let initial = spike(8);
        let clean_mean = initial.mean();
        let bias = 4.0;
        let config = SimulationConfig::new(13)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000))
            .with_adversary_plan(AdversaryPlan::new(3).with_biased_injector(NodeId(1), bias));
        let mut sim = AsyncSimulator::new(&g, initial, Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        let stats = outcome.adversary_stats;
        assert!(stats.falsified_contacts > 0);
        assert_eq!(stats.biased_reports, stats.total_reports());
        assert_eq!(
            stats.total_classified(),
            outcome.total_ticks,
            "every delivered tick is classified exactly once"
        );
        // Honest mean (all nodes but node 1) moved measurably off the clean
        // consensus, but never past the accumulated falsification budget.
        let honest: Vec<f64> = outcome
            .final_values
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, v)| *v)
            .collect();
        let honest_mean = honest.iter().sum::<f64>() / honest.len() as f64;
        let drift = (honest_mean - clean_mean).abs();
        assert!(drift > 1e-3, "bias had no effect (drift {drift})");
        assert!(
            drift <= stats.falsification_l1 / honest.len() as f64 + 1e-9,
            "drift {drift} exceeds the l1 oracle bound"
        );
        // The frozen liar's own value never changed.
        assert_eq!(outcome.final_values.get(NodeId(1)), 0.0);
    }

    #[test]
    fn censoring_every_edge_censors_at_the_guard_like_full_pauses() {
        let g = complete(4).unwrap();
        let all_edges: Vec<gossip_graph::EdgeId> =
            (0..g.edge_count()).map(gossip_graph::EdgeId).collect();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500))
            .with_adversary_plan(AdversaryPlan::new(2).with_censoring_bridge(all_edges, 1.0));
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.stop_reason, StopReason::TickLimit);
        assert!((outcome.variance_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(
            outcome.adversary_stats.censored_contacts,
            outcome.total_ticks
        );
        assert_eq!(sim.adversary_stats(), outcome.adversary_stats);
    }

    #[test]
    fn invalid_adversary_plans_are_rejected_at_construction() {
        let g = complete(3).unwrap();
        let config = SimulationConfig::new(1)
            .with_adversary_plan(AdversaryPlan::new(0).with_biased_injector(NodeId(0), f64::NAN));
        assert!(matches!(
            AsyncSimulator::new(&g, spike(3), Vanilla, config),
            Err(SimError::InvalidConfig { .. })
        ));
        let config = SimulationConfig::new(1)
            .with_adversary_plan(AdversaryPlan::new(0).with_stale_replay_node(NodeId(9), 5));
        assert!(matches!(
            AsyncSimulator::new(&g, spike(3), Vanilla, config),
            Err(SimError::Graph(_))
        ));
    }

    #[test]
    fn sharded_adversary_runs_are_bit_identical_across_shard_counts() {
        // The full gauntlet — faults, a mixed adversary plan (frozen liar,
        // extreme outliers, stale replay, censored edge), both clock models
        // — must agree bit-for-bit at every shard count.
        let g = dumbbell(8).unwrap().0;
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            let run = |shards: usize| {
                let plan = AdversaryPlan::new(41)
                    .with_biased_injector(NodeId(2), 3.0)
                    .with_extreme_value_node(NodeId(11), 25.0)
                    .with_stale_replay_node(NodeId(5), 200)
                    .with_censoring_bridge(vec![gossip_graph::EdgeId(0)], 0.5)
                    .with_detection_threshold(5.0);
                let config = SimulationConfig::new(23)
                    .with_clock_model(model)
                    .with_stopping_rule(StoppingRule::max_ticks(60_000))
                    .with_moment_refresh_every_ticks(512)
                    .with_fault_plan(FaultPlan::new(7).with_drop_probability(0.2))
                    .with_adversary_plan(plan)
                    .with_shards(shards);
                let mut sim = AsyncSimulator::new(&g, spike(16), Vanilla, config).unwrap();
                sim.run().unwrap()
            };
            let one = run(1);
            assert!(one.adversary_stats.falsified_contacts > 0, "{model:?}");
            assert!(one.adversary_stats.censored_contacts > 0, "{model:?}");
            for shards in [2usize, 4] {
                let many = run(shards);
                assert_eq!(one.total_ticks, many.total_ticks, "{model:?} x{shards}");
                assert_eq!(one.stop_reason, many.stop_reason);
                assert_eq!(one.moment_refreshes, many.moment_refreshes);
                assert_eq!(one.fault_stats, many.fault_stats);
                assert_eq!(one.adversary_stats, many.adversary_stats);
                assert_eq!(
                    one.elapsed_time.to_bits(),
                    many.elapsed_time.to_bits(),
                    "{model:?} x{shards}"
                );
                for (a, b) in one
                    .final_values
                    .as_slice()
                    .iter()
                    .zip(many.final_values.as_slice())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "{model:?} x{shards}");
                }
            }
        }
    }

    #[test]
    fn sharded_noop_adversary_plan_is_bit_identical_to_no_plan() {
        let g = dumbbell(8).unwrap().0;
        let run = |plan: Option<AdversaryPlan>| {
            let mut config = SimulationConfig::new(23)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(500_000))
                .with_shards(4);
            config.adversary_plan = plan;
            let mut sim = AsyncSimulator::new(&g, spike(16), Vanilla, config).unwrap();
            sim.run().unwrap()
        };
        let baseline = run(None);
        let noop = run(Some(AdversaryPlan::none()));
        assert_eq!(baseline.total_ticks, noop.total_ticks);
        assert_eq!(baseline.stop_reason, noop.stop_reason);
        assert_eq!(baseline.moment_refreshes, noop.moment_refreshes);
        for (a, b) in baseline
            .final_values
            .as_slice()
            .iter()
            .zip(noop.final_values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(noop.adversary_stats.honest_contacts, noop.total_ticks);
    }

    #[test]
    fn settling_time_is_tracked_when_requested() {
        let g = complete(8).unwrap();
        let config = SimulationConfig::new(9)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.01).or_max_ticks(1_000_000))
            .with_settling_threshold(crate::stopping::DEFINITION1_THRESHOLD);
        let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
        let outcome = sim.run().unwrap();
        let settle = outcome.settling_time.expect("threshold was configured");
        assert!(settle > 0.0);
        assert!(settle <= outcome.elapsed_time);
        assert_eq!(settle, sim.settling_time());
        // Without a threshold the field stays empty.
        let config = SimulationConfig::new(9).with_stopping_rule(StoppingRule::max_ticks(10));
        let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config).unwrap();
        assert_eq!(sim.run().unwrap().settling_time, None);
    }

    /// Shared oracle for the checkpoint tests: everything observable must
    /// agree bit-for-bit between two outcomes.
    fn assert_outcomes_bit_identical(a: &SimulationOutcome, b: &SimulationOutcome, ctx: &str) {
        assert_eq!(a.total_ticks, b.total_ticks, "{ctx}");
        assert_eq!(a.stop_reason, b.stop_reason, "{ctx}");
        assert_eq!(a.moment_refreshes, b.moment_refreshes, "{ctx}");
        assert_eq!(a.fault_stats, b.fault_stats, "{ctx}");
        assert_eq!(a.adversary_stats, b.adversary_stats, "{ctx}");
        assert_eq!(a.elapsed_time.to_bits(), b.elapsed_time.to_bits(), "{ctx}");
        assert_eq!(
            a.final_variance.to_bits(),
            b.final_variance.to_bits(),
            "{ctx}"
        );
        assert_eq!(
            a.settling_time.map(f64::to_bits),
            b.settling_time.map(f64::to_bits),
            "{ctx}"
        );
        for (x, y) in a
            .final_values
            .as_slice()
            .iter()
            .zip(b.final_values.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}");
        }
    }

    #[test]
    fn checkpoint_restore_is_bit_identical_to_uninterrupted() {
        // The in-crate smoke version of `tests/checkpoint_restore.rs`: for
        // both clock models, both layouts, and a hostile fault + adversary
        // environment, a run resumed from any committed mid-run checkpoint
        // (round-tripped through its JSON document, as the blob store would)
        // must match the uninterrupted run on every observable bit.
        let g = dumbbell(8).unwrap().0;
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            for layout in [MemoryLayout::Legacy, MemoryLayout::FlatSoA] {
                // `variance_ratio_below(0.0)` can never fire, so every combo
                // runs the full 20 000 ticks: plenty of refreshes (every 128)
                // and checkpoints (every 128) before the stop.
                let config = SimulationConfig::new(29)
                    .with_clock_model(model)
                    .with_stopping_rule(
                        StoppingRule::variance_ratio_below(0.0).or_max_ticks(20_000),
                    )
                    .with_moment_refresh_every_ticks(128)
                    .with_settling_threshold(0.5)
                    .with_memory_layout(layout)
                    .with_fault_plan(
                        FaultPlan::new(7)
                            .with_drop_probability(0.1)
                            .with_node_pause(NodeId(0), 100, 400),
                    )
                    .with_adversary_plan(
                        crate::adversary::AdversaryPlan::new(13)
                            .with_biased_injector(NodeId(1), 0.4)
                            .with_extreme_value_node(NodeId(9), 50.0)
                            .with_stale_replay_node(NodeId(5), 64),
                    )
                    .with_checkpoint_every_ticks(128);
                let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
                let mut sim = AsyncSimulator::new(&g, spike(16), Vanilla, config.clone()).unwrap();
                let baseline = sim
                    .run_with_checkpoints(&mut |cp| {
                        checkpoints.push(cp);
                        Ok(())
                    })
                    .unwrap();
                assert!(
                    checkpoints.len() >= 2,
                    "{model:?} {layout:?}: run too short to exercise restore"
                );
                assert!(baseline.fault_stats.total_suppressed() > 0);
                assert!(baseline.adversary_stats.falsified_contacts > 0);
                // Resume from the first and from a middle checkpoint; round
                // trip each through its serialized document first, exactly
                // like a store-loaded blob.
                for index in [0, checkpoints.len() / 2] {
                    let blob = checkpoints[index].to_value();
                    let reloaded = EngineCheckpoint::from_value(&blob).unwrap();
                    assert_eq!(reloaded, checkpoints[index]);
                    let mut resumed =
                        AsyncSimulator::restore(&g, Vanilla, config.clone(), &reloaded).unwrap();
                    let outcome = resumed.run().unwrap();
                    assert_outcomes_bit_identical(
                        &baseline,
                        &outcome,
                        &format!("{model:?} {layout:?} from checkpoint {index}"),
                    );
                }
            }
        }
    }

    #[test]
    fn resumed_runs_emit_the_remaining_checkpoints() {
        let g = dumbbell(6).unwrap().0;
        let config = SimulationConfig::new(11)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0).or_max_ticks(4096))
            .with_moment_refresh_every_ticks(256)
            .with_checkpoint_every_ticks(256);
        let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
        let mut sim = AsyncSimulator::new(&g, spike(12), Vanilla, config.clone()).unwrap();
        sim.run_with_checkpoints(&mut |cp| {
            checkpoints.push(cp);
            Ok(())
        })
        .unwrap();
        assert!(checkpoints.len() >= 2);
        let mut resumed = AsyncSimulator::restore(&g, Vanilla, config, &checkpoints[0]).unwrap();
        let mut tail: Vec<u64> = Vec::new();
        resumed
            .run_with_checkpoints(&mut |cp| {
                tail.push(cp.tick());
                Ok(())
            })
            .unwrap();
        let expected: Vec<u64> = checkpoints[1..].iter().map(|cp| cp.tick()).collect();
        assert_eq!(tail, expected, "resume recomputes only the remaining ticks");
    }

    #[test]
    fn checkpoint_capture_rejects_traced_and_sharded_runs() {
        let (g, partition) = dumbbell(3).unwrap();
        let config = SimulationConfig::new(2)
            .with_partition(partition)
            .with_trace(TraceConfig::every_ticks(1))
            .with_stopping_rule(StoppingRule::max_ticks(10))
            .with_checkpoint_every_ticks(4);
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::InvalidConfig { .. })));

        let config = SimulationConfig::new(2)
            .with_stopping_rule(StoppingRule::max_ticks(10))
            .with_shards(2)
            .with_checkpoint_every_ticks(4);
        let mut sim = AsyncSimulator::new(&g, spike(6), Vanilla, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn restore_rejects_mismatched_identities() {
        let g = dumbbell(4).unwrap().0;
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0).or_max_ticks(1024))
            .with_checkpoint_every_ticks(64)
            .with_moment_refresh_every_ticks(64);
        let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
        let mut sim = AsyncSimulator::new(&g, spike(8), Vanilla, config.clone()).unwrap();
        sim.run_with_checkpoints(&mut |cp| {
            checkpoints.push(cp);
            Ok(())
        })
        .unwrap();
        let checkpoint = checkpoints.first().expect("at least one checkpoint");

        // Wrong seed.
        let mut wrong = config.clone();
        wrong.seed = 6;
        assert!(matches!(
            AsyncSimulator::restore(&g, Vanilla, wrong, checkpoint),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // Wrong clock model.
        let wrong = config.clone().with_clock_model(ClockModel::GlobalUniform);
        assert!(matches!(
            AsyncSimulator::restore(&g, Vanilla, wrong, checkpoint),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // Wrong graph shape.
        let other = complete(5).unwrap();
        assert!(matches!(
            AsyncSimulator::restore(&other, Vanilla, config.clone(), checkpoint),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // A plan the checkpoint does not carry.
        let wrong = config
            .clone()
            .with_fault_plan(FaultPlan::new(1).with_drop_probability(0.5));
        assert!(matches!(
            AsyncSimulator::restore(&g, Vanilla, wrong, checkpoint),
            Err(SimError::CheckpointInvalid { .. })
        ));
        // Unsupported modes are rejected up front.
        let wrong = config.clone().with_shards(2);
        assert!(matches!(
            AsyncSimulator::restore(&g, Vanilla, wrong, checkpoint),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn wall_clock_deadline_censors_instead_of_hanging() {
        // A rule that can never fire plus a zero deadline: the serial loop
        // must cut the run at its first deadline check (tick 65 536) and
        // leave the partial state observable.
        let g = complete(4).unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_wall_clock_deadline(Duration::ZERO);
        let mut sim = AsyncSimulator::new(&g, spike(4), NoOpHandler, config).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::DeadlineExceeded {
                ticks: DEADLINE_CHECK_TICKS
            })
        ));
        assert_eq!(sim.values().len(), 4);

        // The flat loop shares the check.
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_flat_layout()
            .with_wall_clock_deadline(Duration::ZERO);
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::DeadlineExceeded { .. })));

        // The sharded engine checks at batch granularity.
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_shards(2)
            .with_wall_clock_deadline(Duration::ZERO);
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        assert!(matches!(sim.run(), Err(SimError::DeadlineExceeded { .. })));

        // A generous deadline never interferes.
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000))
            .with_wall_clock_deadline(Duration::from_secs(3600));
        let mut sim = AsyncSimulator::new(&g, spike(4), Vanilla, config).unwrap();
        assert!(sim.run().is_ok());
    }
}
