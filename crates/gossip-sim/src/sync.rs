//! Synchronous round-based driver.
//!
//! The related-work baselines the paper cites — first- and second-order
//! diffusive load balancing (Muthukrishnan–Ghosh–Schultz) and two-time-scale
//! averaging — are naturally described in *synchronous rounds*: in every round
//! all nodes update simultaneously from their neighbours' previous values.
//! [`SyncSimulator`] drives such algorithms and reports results in a form
//! comparable with the asynchronous engine: one synchronous round on a graph
//! with `|E|` edges is charged `|E|` edge activations, i.e. one unit of the
//! asynchronous model's absolute time.

use crate::stopping::{SimulationStatus, StopReason, StoppingRule};
use crate::trace::{Trace, TraceConfig, TraceRecorder};
use crate::values::NodeValues;
use crate::{Result, SimError};
use gossip_graph::{Graph, Partition};

/// A synchronous update rule: computes the next state from the current one.
pub trait RoundHandler {
    /// Applies one synchronous round, mutating `values` in place.
    fn on_round(&mut self, values: &mut NodeValues, round: u64, graph: &Graph);

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str {
        "unnamed"
    }
}

impl<T: RoundHandler + ?Sized> RoundHandler for &mut T {
    fn on_round(&mut self, values: &mut NodeValues, round: u64, graph: &Graph) {
        (**self).on_round(values, round, graph);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: RoundHandler + ?Sized> RoundHandler for Box<T> {
    fn on_round(&mut self, values: &mut NodeValues, round: u64, graph: &Graph) {
        (**self).on_round(values, round, graph);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Configuration of a synchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncConfig {
    /// When to stop.  Time is measured in *equivalent asynchronous absolute
    /// time*: round `r` maps to time `r` (each round activates every edge
    /// once, and the asynchronous model activates edges at aggregate rate
    /// `|E|`).
    pub stopping_rule: StoppingRule,
    /// Optional trace recording (one point per round).
    pub trace: Option<TraceConfig>,
    /// Optional partition for block statistics.
    pub partition: Option<Partition>,
    /// Hard cap on the number of rounds.
    pub max_rounds: u64,
}

impl SyncConfig {
    /// Default configuration: Definition 1 threshold with a round guard.
    pub fn new() -> Self {
        SyncConfig {
            stopping_rule: StoppingRule::default(),
            trace: None,
            partition: None,
            max_rounds: 10_000_000,
        }
    }

    /// Sets the stopping rule.
    pub fn with_stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.stopping_rule = rule;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the hard round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }
}

impl Default for SyncConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a synchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// The node values when the run stopped.
    pub final_values: NodeValues,
    /// Variance of the initial values.
    pub initial_variance: f64,
    /// Variance of the final values.
    pub final_variance: f64,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Equivalent asynchronous absolute time (`rounds` by the convention
    /// described on [`SyncConfig`]).
    pub equivalent_time: f64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// The recorded trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

impl SyncOutcome {
    /// The normalized final variance.
    pub fn variance_ratio(&self) -> f64 {
        if self.initial_variance <= 0.0 {
            0.0
        } else {
            self.final_variance / self.initial_variance
        }
    }

    /// `true` if the run stopped because it converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

/// Synchronous round-based simulator.
pub struct SyncSimulator<'g, H> {
    graph: &'g Graph,
    values: NodeValues,
    handler: H,
    config: SyncConfig,
    initial_variance: f64,
}

impl<'g, H: RoundHandler> SyncSimulator<'g, H> {
    /// Creates a synchronous simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateSizeMismatch`] or [`SimError::NonFiniteValue`]
    /// for invalid initial states.
    pub fn new(
        graph: &'g Graph,
        initial: NodeValues,
        handler: H,
        config: SyncConfig,
    ) -> Result<Self> {
        if initial.len() != graph.node_count() {
            return Err(SimError::StateSizeMismatch {
                nodes: graph.node_count(),
                values: initial.len(),
            });
        }
        initial.check_finite()?;
        let initial_variance = initial.variance();
        Ok(SyncSimulator {
            graph,
            values: initial,
            handler,
            config,
            initial_variance,
        })
    }

    /// The current node values.
    pub fn values(&self) -> &NodeValues {
        &self.values
    }

    /// Runs until the stopping rule fires or the round cap is reached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] when the round cap is
    /// reached without a stopping rule firing, and
    /// [`SimError::NonFiniteValue`] if the handler produces non-finite values.
    pub fn run(&mut self) -> Result<SyncOutcome> {
        let mut recorder = self
            .config
            .trace
            .clone()
            .map(|cfg| TraceRecorder::new(cfg, self.config.partition.clone()));

        let initial_status = SimulationStatus {
            time: 0.0,
            ticks: 0,
            variance: self.initial_variance,
            initial_variance: self.initial_variance,
        };
        if let Some(reason) = self.config.stopping_rule.evaluate(&initial_status) {
            return Ok(self.finish(0, reason, recorder));
        }

        let mut round = 0u64;
        loop {
            if round >= self.config.max_rounds {
                return Err(SimError::EventBudgetExhausted { events: round });
            }
            round += 1;
            self.handler.on_round(&mut self.values, round, self.graph);
            self.values.check_finite()?;
            if let Some(rec) = recorder.as_mut() {
                rec.record(round as f64, round, &self.values, false);
            }
            let status = SimulationStatus {
                time: round as f64,
                ticks: round,
                variance: self.values.variance(),
                initial_variance: self.initial_variance,
            };
            if let Some(reason) = self.config.stopping_rule.evaluate(&status) {
                return Ok(self.finish(round, reason, recorder));
            }
        }
    }

    fn finish(
        &mut self,
        rounds: u64,
        reason: StopReason,
        recorder: Option<TraceRecorder>,
    ) -> SyncOutcome {
        let trace = recorder.map(|mut rec| {
            rec.record(rounds as f64, rounds.max(1), &self.values, true);
            rec.finish()
        });
        SyncOutcome {
            final_variance: self.values.variance(),
            final_values: self.values.clone(),
            initial_variance: self.initial_variance,
            rounds,
            equivalent_time: rounds as f64,
            stop_reason: reason,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, path};
    use gossip_graph::NodeId;
    use gossip_linalg::Vector;

    /// Simple synchronous diffusion used only to exercise the driver:
    /// `x ← x − 0.4·L·x` (stable for graphs with max degree ≤ 2 here).
    struct Diffusion {
        step: f64,
    }

    impl RoundHandler for Diffusion {
        fn on_round(&mut self, values: &mut NodeValues, _round: u64, graph: &Graph) {
            let x = values.as_vector().clone();
            let mut next = x.clone();
            for v in graph.nodes() {
                let mut acc = 0.0;
                for (u, _) in graph.neighbors(v) {
                    acc += x[u.index()] - x[v.index()];
                }
                next[v.index()] += self.step * acc;
            }
            *values = NodeValues::from_vector(Vector::from(next.as_slice().to_vec())).unwrap();
        }

        fn name(&self) -> &str {
            "diffusion"
        }
    }

    struct Explode;

    impl RoundHandler for Explode {
        fn on_round(&mut self, values: &mut NodeValues, _round: u64, _graph: &Graph) {
            values.set(NodeId(0), f64::INFINITY);
        }
    }

    #[test]
    fn diffusion_converges_on_path() {
        let g = path(6).unwrap();
        let initial = NodeValues::from_values(vec![6.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let mean = initial.mean();
        let config = SyncConfig::new()
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_ticks(100_000));
        let mut sim = SyncSimulator::new(&g, initial, Diffusion { step: 0.3 }, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!((outcome.final_values.mean() - mean).abs() < 1e-9);
        assert!(outcome.rounds > 0);
        assert!((outcome.equivalent_time - outcome.rounds as f64).abs() < 1e-12);
    }

    #[test]
    fn validates_state_and_handles_zero_variance() {
        let g = complete(3).unwrap();
        assert!(SyncSimulator::new(
            &g,
            NodeValues::constant(2, 0.0),
            Diffusion { step: 0.1 },
            SyncConfig::new()
        )
        .is_err());
        let mut sim = SyncSimulator::new(
            &g,
            NodeValues::constant(3, 1.0),
            Diffusion { step: 0.1 },
            SyncConfig::new(),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.rounds, 0);
        assert!(outcome.converged());
        assert_eq!(outcome.variance_ratio(), 0.0);
    }

    #[test]
    fn round_cap_guard() {
        let g = path(3).unwrap();
        let config = SyncConfig::new()
            .with_stopping_rule(StoppingRule::variance_ratio_below(0.0))
            .with_max_rounds(5);
        let mut sim = SyncSimulator::new(
            &g,
            NodeValues::from_values(vec![1.0, 0.0, 0.0]).unwrap(),
            Diffusion { step: 0.0 },
            config,
        )
        .unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }

    #[test]
    fn non_finite_detection() {
        let g = path(3).unwrap();
        let mut sim = SyncSimulator::new(
            &g,
            NodeValues::from_values(vec![1.0, 0.0, 0.0]).unwrap(),
            Explode,
            SyncConfig::new(),
        )
        .unwrap();
        assert!(matches!(sim.run(), Err(SimError::NonFiniteValue { .. })));
    }

    #[test]
    fn trace_recorded_per_round() {
        let g = path(4).unwrap();
        let config = SyncConfig::new()
            .with_trace(TraceConfig::every_ticks(1))
            .with_stopping_rule(StoppingRule::max_ticks(10));
        let mut sim = SyncSimulator::new(
            &g,
            NodeValues::from_values(vec![4.0, 0.0, 0.0, 0.0]).unwrap(),
            Diffusion { step: 0.25 },
            config,
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        let trace = outcome.trace.unwrap();
        assert!(trace.len() >= 10);
        assert_eq!(outcome.stop_reason, StopReason::TickLimit);
        // Variance is non-increasing for this diffusion step size.
        let vars: Vec<f64> = trace.variance_series().map(|(_, v)| v).collect();
        for w in vars.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn config_builder() {
        let c = SyncConfig::default()
            .with_max_rounds(42)
            .with_trace(TraceConfig::every_ticks(3));
        assert_eq!(c.max_rounds, 42);
        assert!(c.trace.is_some());
        assert!(c.partition.is_none());
    }
}
