//! Samplers of the asynchronous edge-tick point process.
//!
//! The paper's model attaches an i.i.d. rate-1 Poisson clock to every edge.
//! Two standard, equivalent ways to sample the resulting sequence of
//! `(time, edge)` events are provided:
//!
//! * [`EdgeClockQueue`] — simulate every edge's clock explicitly: keep the
//!   next tick time of each edge in a priority queue and, after delivering an
//!   event, re-arm that edge with a fresh `Exp(1)` inter-arrival time.  This
//!   is the literal discrete-event view and also yields per-edge tick counts
//!   (which Algorithm A needs: its non-convex update fires on every `k`-th
//!   tick of the designated edge).
//! * [`GlobalTickProcess`] — use the superposition property: the union of
//!   `|E|` rate-1 processes is a rate-`|E|` Poisson process whose points are
//!   assigned to edges uniformly at random.  This is cheaper (`O(1)` per
//!   event) and is what large sweeps use.
//!
//! Both samplers are deterministic functions of their seed.

use crate::{Result, SimError};
use gossip_graph::{EdgeId, Graph};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single edge-clock tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickEvent {
    /// Absolute time of the tick.
    pub time: f64,
    /// The edge whose clock ticked.
    pub edge: EdgeId,
    /// How many times this particular edge has ticked so far, counting this
    /// tick (so the first tick of an edge has `edge_tick_count == 1`).
    pub edge_tick_count: u64,
    /// How many ticks of any edge have occurred so far, counting this one.
    pub global_tick_count: u64,
}

/// Common interface of the two tick samplers.
pub trait TickProcess {
    /// Produces the next tick event.
    fn next_tick(&mut self) -> TickEvent;

    /// The current simulated time (time of the last delivered event, `0.0`
    /// before any event).
    fn now(&self) -> f64;
}

/// Samples an `Exp(rate)` inter-arrival time.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
#[inline]
pub fn exponential_sample<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // Inverse-CDF sampling; `1 - u` avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

/// Recyclable sampler buffers: the per-edge tick counters, the clock queue's
/// heap storage, and the global sampler's draw batch.
///
/// Both samplers allocate O(|E|) at construction, which is pure churn for
/// callers that build one simulator per derived seed (the averaging-time
/// estimator runs 10–30 of them per estimate, per worker).  Constructing a
/// sampler through its `*_with_scratch` variant steals these buffers instead
/// of allocating, and `reclaim_scratch` hands them back when the simulator is
/// torn down.  Reuse is allocation-only: the buffers are cleared and refilled
/// exactly as a fresh construction would, so the delivered tick stream is
/// bit-identical either way (pinned by `scratch_round_trip_is_bit_identical`).
#[derive(Debug, Default)]
pub struct ClockScratch {
    tick_counts: Vec<u64>,
    entries: Vec<QueueEntry>,
    batch: Vec<(f64, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    time: f64,
    edge: EdgeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("tick times are finite")
            .then_with(|| other.edge.index().cmp(&self.edge.index()))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Literal per-edge Poisson clocks, delivered in time order.
#[derive(Debug, Clone)]
pub struct EdgeClockQueue {
    queue: BinaryHeap<QueueEntry>,
    rng: ChaCha8Rng,
    edge_tick_counts: Vec<u64>,
    global_tick_count: u64,
    now: f64,
    rate: f64,
}

impl EdgeClockQueue {
    /// Creates clocks for every edge of `graph`, each with rate 1, seeded
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoEdges`] if the graph has no edges.
    pub fn new(graph: &Graph, seed: u64) -> Result<Self> {
        Self::with_rate(graph, seed, 1.0)
    }

    /// Creates clocks with a custom common rate (useful in tests).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoEdges`] if the graph has no edges, or
    /// [`SimError::InvalidConfig`] for a non-positive rate.
    pub fn with_rate(graph: &Graph, seed: u64, rate: f64) -> Result<Self> {
        Self::with_rate_scratch(graph, seed, rate, &mut ClockScratch::default())
    }

    /// Like [`Self::new`], reusing buffers from `scratch` instead of
    /// allocating (see [`ClockScratch`]).
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_with_scratch(graph: &Graph, seed: u64, scratch: &mut ClockScratch) -> Result<Self> {
        Self::with_rate_scratch(graph, seed, 1.0, scratch)
    }

    /// Like [`Self::with_rate`], reusing buffers from `scratch`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::with_rate`].
    pub fn with_rate_scratch(
        graph: &Graph,
        seed: u64,
        rate: f64,
        scratch: &mut ClockScratch,
    ) -> Result<Self> {
        if graph.edge_count() == 0 {
            return Err(SimError::NoEdges);
        }
        if rate <= 0.0 || !rate.is_finite() {
            return Err(SimError::InvalidConfig {
                reason: format!("clock rate must be positive and finite, got {rate}"),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut entries = std::mem::take(&mut scratch.entries);
        entries.clear();
        entries.reserve(graph.edge_count());
        for edge in graph.edge_ids() {
            let t = exponential_sample(&mut rng, rate);
            entries.push(QueueEntry { time: t, edge });
        }
        // Heapify-in-place of the filled buffer.  The internal heap layout
        // may differ from an incremental build, but entries are totally
        // ordered (ties broken by edge index, no edge twice) so the *popped*
        // stream — the only thing the engine observes — is the sorted order
        // either way.
        let queue = BinaryHeap::from(entries);
        let mut edge_tick_counts = std::mem::take(&mut scratch.tick_counts);
        edge_tick_counts.clear();
        edge_tick_counts.resize(graph.edge_count(), 0);
        Ok(EdgeClockQueue {
            queue,
            rng,
            edge_tick_counts,
            global_tick_count: 0,
            now: 0.0,
            rate,
        })
    }

    /// Number of ticks edge `edge` has delivered so far.
    pub fn edge_tick_count(&self, edge: EdgeId) -> u64 {
        self.edge_tick_counts[edge.index()]
    }

    /// Tears the sampler down, returning its buffers to `scratch` for the
    /// next `*_with_scratch` construction.
    pub fn reclaim_scratch(self, scratch: &mut ClockScratch) {
        scratch.entries = self.queue.into_vec();
        scratch.tick_counts = self.edge_tick_counts;
    }

    /// Crate-internal: captures the full resumable state.  The heap is
    /// exported in canonical (time, edge) sorted order: entries are totally
    /// ordered and no edge appears twice, so the popped stream — the only
    /// thing the engine observes — is independent of the internal layout,
    /// and the canonical order makes the serialized bytes deterministic.
    pub(crate) fn checkpoint_state(&self) -> EdgeClockQueueState {
        let mut entries: Vec<(f64, usize)> = self
            .queue
            .iter()
            .map(|e| (e.time, e.edge.index()))
            .collect();
        entries.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("tick times are finite")
                .then_with(|| a.1.cmp(&b.1))
        });
        EdgeClockQueueState {
            entries,
            rng_word_pos: self.rng.get_word_pos(),
            edge_tick_counts: self.edge_tick_counts.clone(),
            global_tick_count: self.global_tick_count,
            now: self.now,
            rate: self.rate,
        }
    }

    /// Crate-internal: rebuilds the sampler from a checkpoint.  `seed` must
    /// be the seed the captured sampler was constructed with; the RNG is
    /// re-seeded and fast-forwarded to the captured keystream position, so
    /// every subsequent draw is bit-identical to the uninterrupted run.
    pub(crate) fn restore_state(seed: u64, state: &EdgeClockQueueState) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_word_pos(state.rng_word_pos);
        let entries: Vec<QueueEntry> = state
            .entries
            .iter()
            .map(|&(time, edge)| QueueEntry {
                time,
                edge: EdgeId(edge),
            })
            .collect();
        EdgeClockQueue {
            queue: BinaryHeap::from(entries),
            rng,
            edge_tick_counts: state.edge_tick_counts.clone(),
            global_tick_count: state.global_tick_count,
            now: state.now,
            rate: state.rate,
        }
    }
}

/// Checkpointed state of an [`EdgeClockQueue`] (crate-internal; serialized
/// by `crate::checkpoint`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeClockQueueState {
    /// `(next tick time, edge index)` per edge, in canonical sorted order.
    pub(crate) entries: Vec<(f64, usize)>,
    /// Keystream position of the re-arm RNG.
    pub(crate) rng_word_pos: u128,
    /// Ticks delivered per edge so far.
    pub(crate) edge_tick_counts: Vec<u64>,
    /// Ticks delivered overall so far.
    pub(crate) global_tick_count: u64,
    /// Time of the last delivered tick.
    pub(crate) now: f64,
    /// Common clock rate.
    pub(crate) rate: f64,
}

impl TickProcess for EdgeClockQueue {
    #[inline]
    fn next_tick(&mut self) -> TickEvent {
        // Re-arm in place through `peek_mut`: writing the fresh arrival time
        // into the root entry and letting the `PeekMut` guard sift it down
        // costs one sift instead of the two a pop + push pair would.  The
        // delivered stream is unchanged: entries are totally ordered (ties
        // broken by edge index, and no edge appears twice), so the pop order
        // is the sorted order no matter how the heap is arranged internally
        // — `queue_rearm_matches_reference_pop_push` pins this bit-for-bit.
        let (time, edge) = {
            let mut head = self
                .queue
                .peek_mut()
                .expect("queue always holds one entry per edge");
            let (time, edge) = (head.time, head.edge);
            head.time = time + exponential_sample(&mut self.rng, self.rate);
            (time, edge)
        };
        self.now = time;
        self.global_tick_count += 1;
        self.edge_tick_counts[edge.index()] += 1;
        TickEvent {
            time,
            edge,
            edge_tick_count: self.edge_tick_counts[edge.index()],
            global_tick_count: self.global_tick_count,
        }
    }

    fn now(&self) -> f64 {
        self.now
    }
}

/// How many `(Δt, edge)` draws [`GlobalTickProcess`] precomputes per batch.
///
/// Batching amortizes the sampler's per-call overhead (rate recomputation,
/// RNG dispatch) over the engine's hottest loop.  Draws inside a batch
/// happen in exactly the per-tick order (`Exp` gap, then edge index), so the
/// ChaCha stream — and therefore every seeded output — is bit-identical to
/// the unbatched sampler's **at every batch width**: widening the batch
/// changes only how many draws are prefetched per refill, never which draws
/// occur or in what order.  The width was raised from the historical 256 for
/// the million-node tier (fewer `#[cold]` refill entries per million events);
/// `widened_batch_matches_historical_256_batches` pins the stream against a
/// 256-wide sampler bit-for-bit, and `prop_batch_width_is_stream_invariant`
/// pins arbitrary widths against unbatched single draws.
pub const GLOBAL_TICK_BATCH: usize = 1024;

/// Superposition sampler: a global rate-`|E|` Poisson process with uniform
/// edge assignment.
#[derive(Debug, Clone)]
pub struct GlobalTickProcess {
    rng: ChaCha8Rng,
    edge_count: usize,
    edge_tick_counts: Vec<u64>,
    global_tick_count: u64,
    now: f64,
    rate_per_edge: f64,
    /// Precomputed `(inter-arrival gap, edge index)` pairs, in draw order.
    batch: Vec<(f64, usize)>,
    /// Next unconsumed entry of `batch`.
    batch_pos: usize,
    /// Draws prefetched per refill ([`GLOBAL_TICK_BATCH`] unless built
    /// through [`Self::with_batch_capacity`]); never affects the stream.
    batch_capacity: usize,
}

impl GlobalTickProcess {
    /// Creates the process for `graph` with rate 1 per edge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoEdges`] if the graph has no edges.
    pub fn new(graph: &Graph, seed: u64) -> Result<Self> {
        Self::new_with_scratch(graph, seed, &mut ClockScratch::default())
    }

    /// Like [`Self::new`], reusing buffers from `scratch` instead of
    /// allocating (see [`ClockScratch`]).
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_with_scratch(graph: &Graph, seed: u64, scratch: &mut ClockScratch) -> Result<Self> {
        Self::with_capacity_scratch(graph, seed, GLOBAL_TICK_BATCH, scratch)
    }

    /// Like [`Self::new`] with an explicit batch width instead of
    /// [`GLOBAL_TICK_BATCH`].  The width only controls how many draws are
    /// prefetched per refill — the delivered tick stream is bit-identical
    /// for every width (draws happen in per-event order); this constructor
    /// exists so tests can pin that invariance against the historical
    /// 256-wide batches and against unbatched single draws.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoEdges`] if the graph has no edges, or
    /// [`SimError::InvalidConfig`] for a zero width.
    pub fn with_batch_capacity(graph: &Graph, seed: u64, capacity: usize) -> Result<Self> {
        Self::with_capacity_scratch(graph, seed, capacity, &mut ClockScratch::default())
    }

    fn with_capacity_scratch(
        graph: &Graph,
        seed: u64,
        capacity: usize,
        scratch: &mut ClockScratch,
    ) -> Result<Self> {
        if graph.edge_count() == 0 {
            return Err(SimError::NoEdges);
        }
        if capacity == 0 {
            return Err(SimError::InvalidConfig {
                reason: "global tick batch capacity must be at least 1".to_string(),
            });
        }
        let mut edge_tick_counts = std::mem::take(&mut scratch.tick_counts);
        edge_tick_counts.clear();
        edge_tick_counts.resize(graph.edge_count(), 0);
        let mut batch = std::mem::take(&mut scratch.batch);
        batch.clear();
        batch.reserve(capacity);
        Ok(GlobalTickProcess {
            rng: ChaCha8Rng::seed_from_u64(seed),
            edge_count: graph.edge_count(),
            edge_tick_counts,
            global_tick_count: 0,
            now: 0.0,
            rate_per_edge: 1.0,
            batch,
            batch_pos: 0,
            batch_capacity: capacity,
        })
    }

    /// Number of ticks edge `edge` has delivered so far.
    pub fn edge_tick_count(&self, edge: EdgeId) -> u64 {
        self.edge_tick_counts[edge.index()]
    }

    /// Tears the sampler down, returning its buffers to `scratch` for the
    /// next `*_with_scratch` construction.
    pub fn reclaim_scratch(self, scratch: &mut ClockScratch) {
        scratch.tick_counts = self.edge_tick_counts;
        scratch.batch = self.batch;
    }

    /// Crate-internal: captures the full resumable state.  The RNG position
    /// is taken *after* the last refill, so the unconsumed tail of the
    /// current batch must be captured verbatim — on restore it is replayed
    /// before the next refill draws from the repositioned stream.
    pub(crate) fn checkpoint_state(&self) -> GlobalTickProcessState {
        GlobalTickProcessState {
            rng_word_pos: self.rng.get_word_pos(),
            edge_count: self.edge_count,
            edge_tick_counts: self.edge_tick_counts.clone(),
            global_tick_count: self.global_tick_count,
            now: self.now,
            batch_tail: self.batch[self.batch_pos..].to_vec(),
            batch_capacity: self.batch_capacity,
        }
    }

    /// Crate-internal: rebuilds the sampler from a checkpoint.  `seed` must
    /// be the seed the captured sampler was constructed with.
    pub(crate) fn restore_state(seed: u64, state: &GlobalTickProcessState) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_word_pos(state.rng_word_pos);
        GlobalTickProcess {
            rng,
            edge_count: state.edge_count,
            edge_tick_counts: state.edge_tick_counts.clone(),
            global_tick_count: state.global_tick_count,
            now: state.now,
            rate_per_edge: 1.0,
            batch: state.batch_tail.clone(),
            batch_pos: 0,
            batch_capacity: state.batch_capacity,
        }
    }

    #[cold]
    fn refill_batch(&mut self) {
        let total_rate = self.rate_per_edge * self.edge_count as f64;
        self.batch.clear();
        for _ in 0..self.batch_capacity {
            // Draw order per event — gap first, then edge — matches the
            // historical one-event-at-a-time sampler, keeping the stream
            // bit-identical for every seed.
            let gap = exponential_sample(&mut self.rng, total_rate);
            let edge = self.rng.gen_range(0..self.edge_count);
            self.batch.push((gap, edge));
        }
        self.batch_pos = 0;
    }
}

/// Checkpointed state of a [`GlobalTickProcess`] (crate-internal; serialized
/// by `crate::checkpoint`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GlobalTickProcessState {
    /// Keystream position of the draw RNG, after the last batch refill.
    pub(crate) rng_word_pos: u128,
    /// Number of edges (the uniform mark range).
    pub(crate) edge_count: usize,
    /// Ticks delivered per edge so far.
    pub(crate) edge_tick_counts: Vec<u64>,
    /// Ticks delivered overall so far.
    pub(crate) global_tick_count: u64,
    /// Time of the last delivered tick.
    pub(crate) now: f64,
    /// Prefetched but not yet delivered `(gap, edge index)` draws.
    pub(crate) batch_tail: Vec<(f64, usize)>,
    /// Draws prefetched per refill (never affects the stream).
    pub(crate) batch_capacity: usize,
}

impl TickProcess for GlobalTickProcess {
    #[inline]
    fn next_tick(&mut self) -> TickEvent {
        if self.batch_pos == self.batch.len() {
            self.refill_batch();
        }
        let (gap, edge_index) = self.batch[self.batch_pos];
        self.batch_pos += 1;
        let edge = EdgeId(edge_index);
        self.now += gap;
        self.global_tick_count += 1;
        self.edge_tick_counts[edge.index()] += 1;
        TickEvent {
            time: self.now,
            edge,
            edge_tick_count: self.edge_tick_counts[edge.index()],
            global_tick_count: self.global_tick_count,
        }
    }

    fn now(&self) -> f64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, path};
    use proptest::prelude::*;

    #[test]
    fn exponential_sample_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_sample(&mut rng, 2.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_sample_rejects_zero_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = exponential_sample(&mut rng, 0.0);
    }

    #[test]
    fn queue_requires_edges_and_valid_rate() {
        let empty = gossip_graph::Graph::from_edges(3, &[]).unwrap();
        assert!(matches!(
            EdgeClockQueue::new(&empty, 1),
            Err(SimError::NoEdges)
        ));
        let g = path(3).unwrap();
        assert!(EdgeClockQueue::with_rate(&g, 1, 0.0).is_err());
        assert!(EdgeClockQueue::with_rate(&g, 1, f64::NAN).is_err());
        assert!(matches!(
            GlobalTickProcess::new(&empty, 1),
            Err(SimError::NoEdges)
        ));
    }

    #[test]
    fn queue_events_are_time_ordered_and_counted() {
        let g = complete(5).unwrap();
        let mut clock = EdgeClockQueue::new(&g, 42).unwrap();
        let mut last = 0.0;
        let mut per_edge = vec![0u64; g.edge_count()];
        for i in 1..=500u64 {
            let ev = clock.next_tick();
            assert!(ev.time >= last);
            assert!(ev.edge.index() < g.edge_count());
            last = ev.time;
            per_edge[ev.edge.index()] += 1;
            assert_eq!(ev.global_tick_count, i);
            assert_eq!(ev.edge_tick_count, per_edge[ev.edge.index()]);
            assert_eq!(clock.edge_tick_count(ev.edge), ev.edge_tick_count);
            assert!((clock.now() - ev.time).abs() < 1e-15);
        }
    }

    #[test]
    fn queue_rearm_matches_reference_pop_push() {
        // The production queue re-arms through `peek_mut` (one sift); this
        // reference implementation is the historical pop + push (two sifts).
        // Entries are totally ordered, so both must deliver the exact same
        // tick stream — bit-for-bit, including re-arm draws.
        struct Reference {
            queue: BinaryHeap<QueueEntry>,
            rng: ChaCha8Rng,
            counts: Vec<u64>,
            global: u64,
        }
        impl Reference {
            fn new(graph: &Graph, seed: u64) -> Self {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut queue = BinaryHeap::new();
                for edge in graph.edge_ids() {
                    let t = exponential_sample(&mut rng, 1.0);
                    queue.push(QueueEntry { time: t, edge });
                }
                Reference {
                    queue,
                    rng,
                    counts: vec![0; graph.edge_count()],
                    global: 0,
                }
            }
            fn next_tick(&mut self) -> TickEvent {
                let entry = self.queue.pop().unwrap();
                self.global += 1;
                self.counts[entry.edge.index()] += 1;
                let next = entry.time + exponential_sample(&mut self.rng, 1.0);
                self.queue.push(QueueEntry {
                    time: next,
                    edge: entry.edge,
                });
                TickEvent {
                    time: entry.time,
                    edge: entry.edge,
                    edge_tick_count: self.counts[entry.edge.index()],
                    global_tick_count: self.global,
                }
            }
        }
        for seed in [0u64, 7, 42, 0xDEAD] {
            let g = complete(6).unwrap();
            let mut production = EdgeClockQueue::new(&g, seed).unwrap();
            let mut reference = Reference::new(&g, seed);
            for tick in 0..5_000 {
                let a = production.next_tick();
                let b = reference.next_tick();
                assert_eq!(a.edge, b.edge, "seed {seed} tick {tick}");
                assert_eq!(
                    a.time.to_bits(),
                    b.time.to_bits(),
                    "seed {seed} tick {tick}"
                );
                assert_eq!(a.edge_tick_count, b.edge_tick_count);
                assert_eq!(a.global_tick_count, b.global_tick_count);
            }
        }
    }

    #[test]
    fn global_batching_matches_reference_single_draws() {
        // The batched sampler must consume the ChaCha stream in the exact
        // per-event order (gap, then edge) of the historical unbatched
        // implementation, across several batch refills.
        let g = complete(5).unwrap();
        let seed = 99u64;
        let mut production = GlobalTickProcess::new(&g, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total_rate = g.edge_count() as f64;
        let mut now = 0.0;
        for tick in 0..(3 * GLOBAL_TICK_BATCH + 17) {
            now += exponential_sample(&mut rng, total_rate);
            let edge = EdgeId(rng.gen_range(0..g.edge_count()));
            let ev = production.next_tick();
            assert_eq!(ev.edge, edge, "tick {tick}");
            assert_eq!(ev.time.to_bits(), now.to_bits(), "tick {tick}");
        }
    }

    #[test]
    fn widened_batch_matches_historical_256_batches() {
        // The production batch width is now > 256; the historical sampler
        // prefetched exactly 256 draws per refill.  Widening must be a pure
        // prefetch change: both samplers consume the ChaCha stream in the
        // same per-event order, so every delivered tick — time bits, edge,
        // counts — is identical across several refills of BOTH widths.
        const { assert!(GLOBAL_TICK_BATCH > 256, "the batch must stay widened") };
        for seed in [0u64, 7, 99, 0xC0FFEE] {
            let g = complete(6).unwrap();
            let mut widened = GlobalTickProcess::new(&g, seed).unwrap();
            let mut historical = GlobalTickProcess::with_batch_capacity(&g, seed, 256).unwrap();
            for tick in 0..(3 * GLOBAL_TICK_BATCH + 17) {
                let a = widened.next_tick();
                let b = historical.next_tick();
                assert_eq!(a.edge, b.edge, "seed {seed} tick {tick}");
                assert_eq!(
                    a.time.to_bits(),
                    b.time.to_bits(),
                    "seed {seed} tick {tick}"
                );
                assert_eq!(a.edge_tick_count, b.edge_tick_count);
                assert_eq!(a.global_tick_count, b.global_tick_count);
            }
        }
    }

    #[test]
    fn batch_capacity_rejects_zero() {
        let g = complete(4).unwrap();
        assert!(matches!(
            GlobalTickProcess::with_batch_capacity(&g, 1, 0),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn scratch_round_trip_is_bit_identical() {
        // Constructing a sampler from recycled buffers — even buffers
        // reclaimed from a *different* graph's sampler — must deliver the
        // exact tick stream of a fresh construction.
        let small = path(4).unwrap();
        let g = complete(6).unwrap();
        let mut scratch = ClockScratch::default();

        // Dirty the scratch on a smaller graph first.
        let mut warm = EdgeClockQueue::new_with_scratch(&small, 3, &mut scratch).unwrap();
        for _ in 0..50 {
            warm.next_tick();
        }
        warm.reclaim_scratch(&mut scratch);

        let mut fresh = EdgeClockQueue::new(&g, 42).unwrap();
        let mut recycled = EdgeClockQueue::new_with_scratch(&g, 42, &mut scratch).unwrap();
        for tick in 0..2_000 {
            let a = fresh.next_tick();
            let b = recycled.next_tick();
            assert_eq!(a.edge, b.edge, "tick {tick}");
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "tick {tick}");
            assert_eq!(a.edge_tick_count, b.edge_tick_count);
        }
        recycled.reclaim_scratch(&mut scratch);

        let mut warm = GlobalTickProcess::new_with_scratch(&small, 3, &mut scratch).unwrap();
        for _ in 0..50 {
            warm.next_tick();
        }
        warm.reclaim_scratch(&mut scratch);

        let mut fresh = GlobalTickProcess::new(&g, 42).unwrap();
        let mut recycled = GlobalTickProcess::new_with_scratch(&g, 42, &mut scratch).unwrap();
        for tick in 0..(2 * GLOBAL_TICK_BATCH + 13) {
            let a = fresh.next_tick();
            let b = recycled.next_tick();
            assert_eq!(a.edge, b.edge, "tick {tick}");
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "tick {tick}");
        }
    }

    #[test]
    fn sampler_checkpoint_round_trip_is_bit_identical() {
        // Capture both samplers mid-stream (including mid-batch for the
        // global process) and check the restored stream matches the
        // uninterrupted one bit-for-bit across several refills/re-arms.
        let g = complete(6).unwrap();
        for seed in [0u64, 7, 42] {
            for warmup in [0usize, 1, 17, GLOBAL_TICK_BATCH + 5] {
                let mut original = EdgeClockQueue::new(&g, seed).unwrap();
                for _ in 0..warmup {
                    original.next_tick();
                }
                let state = original.checkpoint_state();
                let mut restored = EdgeClockQueue::restore_state(seed, &state);
                for tick in 0..2_000 {
                    let a = original.next_tick();
                    let b = restored.next_tick();
                    assert_eq!(
                        a.edge, b.edge,
                        "queue seed {seed} warmup {warmup} tick {tick}"
                    );
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                    assert_eq!(a.edge_tick_count, b.edge_tick_count);
                    assert_eq!(a.global_tick_count, b.global_tick_count);
                }

                let mut original = GlobalTickProcess::new(&g, seed).unwrap();
                for _ in 0..warmup {
                    original.next_tick();
                }
                let state = original.checkpoint_state();
                let mut restored = GlobalTickProcess::restore_state(seed, &state);
                for tick in 0..(2 * GLOBAL_TICK_BATCH + 13) {
                    let a = original.next_tick();
                    let b = restored.next_tick();
                    assert_eq!(
                        a.edge, b.edge,
                        "global seed {seed} warmup {warmup} tick {tick}"
                    );
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                    assert_eq!(a.edge_tick_count, b.edge_tick_count);
                    assert_eq!(a.global_tick_count, b.global_tick_count);
                }
            }
        }
    }

    #[test]
    fn queue_is_reproducible() {
        let g = complete(4).unwrap();
        let mut a = EdgeClockQueue::new(&g, 7).unwrap();
        let mut b = EdgeClockQueue::new(&g, 7).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_tick(), b.next_tick());
        }
        let mut c = EdgeClockQueue::new(&g, 8).unwrap();
        let differs = (0..100).any(|_| a.next_tick() != c.next_tick());
        assert!(differs);
    }

    #[test]
    fn global_process_counts_and_ordering() {
        let g = complete(5).unwrap();
        let mut clock = GlobalTickProcess::new(&g, 11).unwrap();
        let mut last = 0.0;
        for i in 1..=500u64 {
            let ev = clock.next_tick();
            assert!(ev.time > last);
            last = ev.time;
            assert_eq!(ev.global_tick_count, i);
            assert!(ev.edge.index() < g.edge_count());
        }
        let total: u64 = (0..g.edge_count())
            .map(|e| clock.edge_tick_count(EdgeId(e)))
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn tick_rate_matches_edge_count() {
        // With |E| rate-1 clocks, about t·|E| ticks happen by time t.
        let g = complete(6).unwrap(); // 15 edges
        let horizon = 200.0;
        for seed in [1u64, 2, 3] {
            let mut clock = EdgeClockQueue::new(&g, seed).unwrap();
            let mut count = 0u64;
            loop {
                let ev = clock.next_tick();
                if ev.time > horizon {
                    break;
                }
                count += 1;
            }
            let expected = horizon * g.edge_count() as f64;
            let sd = expected.sqrt();
            assert!(
                (count as f64 - expected).abs() < 6.0 * sd,
                "count {count} vs expected {expected}"
            );
        }
    }

    #[test]
    fn per_edge_counts_are_balanced_in_both_samplers() {
        let g = complete(4).unwrap(); // 6 edges
        let ticks = 6_000;
        let mut q = EdgeClockQueue::new(&g, 3).unwrap();
        let mut gp = GlobalTickProcess::new(&g, 3).unwrap();
        for _ in 0..ticks {
            q.next_tick();
            gp.next_tick();
        }
        for e in g.edge_ids() {
            for count in [q.edge_tick_count(e), gp.edge_tick_count(e)] {
                let expected = ticks as f64 / g.edge_count() as f64;
                assert!(
                    (count as f64 - expected).abs() < 5.0 * expected.sqrt(),
                    "edge {e} count {count} far from {expected}"
                );
            }
        }
    }

    /// Collects `k` consecutive inter-arrival gaps from any tick sampler.
    fn interarrivals(clock: &mut impl TickProcess, k: usize) -> Vec<f64> {
        let mut last = 0.0;
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let t = clock.next_tick().time;
            out.push(t - last);
            last = t;
        }
        out
    }

    /// Checks that a sampler's mean inter-arrival time over 4000 ticks is
    /// `1/|E|` within five standard deviations of the sample mean.
    fn check_interarrival_mean(
        clock: &mut impl TickProcess,
        edge_count: usize,
    ) -> std::result::Result<(), String> {
        let ticks = 4_000;
        let mean = interarrivals(clock, ticks).iter().sum::<f64>() / ticks as f64;
        let expected = 1.0 / edge_count as f64;
        // Exp(λ) inter-arrivals: sd of the sample mean is 1/(λ√k).
        let tol = 5.0 * expected / (ticks as f64).sqrt();
        if (mean - expected).abs() >= tol {
            return Err(format!("inter-arrival mean {mean} vs expected {expected}"));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_exponential_samples_positive(seed in 0u64..1000, rate in 0.1f64..10.0) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..50 {
                let x = exponential_sample(&mut rng, rate);
                prop_assert!(x >= 0.0);
                prop_assert!(x.is_finite());
            }
        }

        #[test]
        fn prop_queue_time_strictly_increases_overall(seed in 0u64..200) {
            let g = path(6).unwrap();
            let mut clock = EdgeClockQueue::new(&g, seed).unwrap();
            let mut last = -1.0;
            for _ in 0..200 {
                let ev = clock.next_tick();
                prop_assert!(ev.time >= last);
                last = ev.time;
            }
        }

        // --- Sampler-equivalence properties -------------------------------
        //
        // The two samplers realize the same point process: the union of |E|
        // independent rate-1 Poisson clocks IS a rate-|E| Poisson process
        // with uniform edge marks (superposition/thinning).  The properties
        // below check the two implementations against that common law —
        // inter-arrival mean AND the full distribution (two-sample
        // Kolmogorov–Smirnov) plus the per-edge mark frequencies.

        #[test]
        fn prop_global_interarrival_mean_matches_rate(seed in 0u64..300) {
            let g = complete(5).unwrap(); // 10 edges, total rate 10
            let mut clock = GlobalTickProcess::new(&g, seed).unwrap();
            if let Err(message) = check_interarrival_mean(&mut clock, g.edge_count()) {
                prop_assert!(false, "{message}");
            }
        }

        #[test]
        fn prop_queue_interarrival_mean_matches_rate(seed in 0u64..300) {
            let g = complete(5).unwrap();
            let mut clock = EdgeClockQueue::new(&g, seed).unwrap();
            if let Err(message) = check_interarrival_mean(&mut clock, g.edge_count()) {
                prop_assert!(false, "{message}");
            }
        }

        #[test]
        fn prop_samplers_have_ks_close_interarrival_distributions(seed in 0u64..100) {
            // Two-sample Kolmogorov–Smirnov distance between the
            // inter-arrival samples of the two implementations.  With
            // m = k = 4000 the 0.1% critical value is
            // 1.95·sqrt(2/4000) ≈ 0.0436; the pinned seeds stay well under.
            let g = complete(5).unwrap();
            let mut q = EdgeClockQueue::new(&g, seed).unwrap();
            let mut gp = GlobalTickProcess::new(&g, seed.wrapping_add(0x5eed)).unwrap();
            let mut a = interarrivals(&mut q, 4_000);
            let mut b = interarrivals(&mut gp, 4_000);
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            // Sweep the merged order, tracking the empirical-CDF gap.
            let (mut i, mut j, mut ks) = (0usize, 0usize, 0.0f64);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    i += 1;
                } else {
                    j += 1;
                }
                let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
                ks = ks.max(gap);
            }
            prop_assert!(ks < 0.0436, "KS distance {ks} too large");
        }

        #[test]
        fn prop_batch_width_is_stream_invariant(
            seed in 0u64..500,
            width in 1usize..2048,
        ) {
            // An arbitrary batch width must deliver the exact stream of the
            // unbatched sampler (capacity 1 = one draw per "batch"): the
            // width is prefetch policy, not probability.
            let g = complete(5).unwrap();
            let mut batched = GlobalTickProcess::with_batch_capacity(&g, seed, width).unwrap();
            let mut unbatched = GlobalTickProcess::with_batch_capacity(&g, seed, 1).unwrap();
            for tick in 0..700 {
                let a = batched.next_tick();
                let b = unbatched.next_tick();
                prop_assert_eq!(a.edge, b.edge, "width {} tick {}", width, tick);
                prop_assert_eq!(
                    a.time.to_bits(),
                    b.time.to_bits(),
                    "width {} tick {}",
                    width,
                    tick
                );
                prop_assert_eq!(a.edge_tick_count, b.edge_tick_count);
                prop_assert_eq!(a.global_tick_count, b.global_tick_count);
            }
        }

        #[test]
        fn prop_samplers_have_equivalent_edge_marks(seed in 0u64..100) {
            // Every edge receives ~1/|E| of the ticks under both samplers:
            // compare each sampler's per-edge frequencies against uniform
            // with a 5-sigma binomial tolerance.
            let g = complete(4).unwrap(); // 6 edges
            let ticks = 6_000u64;
            let mut q = EdgeClockQueue::new(&g, seed).unwrap();
            let mut gp = GlobalTickProcess::new(&g, seed.wrapping_add(0x5eed)).unwrap();
            for _ in 0..ticks {
                q.next_tick();
                gp.next_tick();
            }
            let p = 1.0 / g.edge_count() as f64;
            let expected = ticks as f64 * p;
            let sd = (ticks as f64 * p * (1.0 - p)).sqrt();
            for e in g.edge_ids() {
                for (which, count) in
                    [("queue", q.edge_tick_count(e)), ("global", gp.edge_tick_count(e))]
                {
                    prop_assert!(
                        (count as f64 - expected).abs() < 5.0 * sd,
                        "{which} sampler: edge {e} got {count} ticks, expected {expected}"
                    );
                }
            }
        }
    }
}
