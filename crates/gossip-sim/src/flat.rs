//! Flat data structures for the million-node tier.
//!
//! Two things live here:
//!
//! * [`FlatTopology`] — the packed endpoint table behind
//!   [`MemoryLayout::FlatSoA`](crate::engine::MemoryLayout::FlatSoA): one
//!   `u64` per edge in edge-id order (the order the tick samplers draw), so
//!   the hot loop reads 8 contiguous bytes per tick instead of chasing a
//!   3-word [`gossip_graph::Edge`].
//! * The **opt-in reduced-precision f32 value tier** ([`run_f32`]): node
//!   values stored as `f32`, every kernel application performed in `f64` on
//!   the widened operands and rounded back to `f32`, pinned by the a-priori
//!   error-bound oracle [`F32Oracle`].  This is the same policy the
//!   dense-vs-sparse and drift oracles established: a fast path is never
//!   trusted on faith — it either meets a bound stated *before* the run or
//!   the run is an error ([`SimError::PrecisionOracle`]), which the bench
//!   trial plumbing guarantees never reaches a journal.
//!
//! # The f32 error bound
//!
//! For a sum-conserving convex pairwise kernel (every kernel in the paper's
//! class `C`, vanilla averaging included) applied to `f32`-stored values:
//!
//! * Widening `f32 → f64` is exact, and the vanilla kernel's
//!   `0.5 * (xu + xv)` is exact in `f64` on widened `f32` operands (24-bit
//!   significands sum without rounding), so the *only* error per tick is
//!   rounding the two outputs back to `f32`: at most `ε₃₂/2 · M` each,
//!   where `M = max |value|` and `ε₃₂ = f32::EPSILON`.
//! * Convexity keeps every value inside the initial `[min, max]` — both
//!   endpoints exactly representable, and round-to-nearest cannot escape an
//!   interval with representable endpoints — so `M` is pinned by the
//!   *initial* state for the whole run.
//! * The exact kernel conserves the sum, so after `T` ticks on `n` nodes
//!   the mean has moved by at most `ε₃₂ · M · T / n` plus `ε₃₂ · M / 2`
//!   from rounding the initial state.
//!
//! [`F32Oracle::mean_drift_bound`] is that bound with a safety factor
//! (default 8×) on top; [`F32Oracle::variance_error_bound`] bounds the
//! incremental tracker's drift against an exact centered pass at stop time,
//! with the same `1e-9`-per-unit-variance margin the f64 drift oracles use.

use crate::engine::{Sampler, SimulationConfig, VarianceMode};
use crate::handler::PairwiseKernel;
use crate::moments::MomentTracker;
use crate::stopping::{SimulationStatus, StopReason};
use crate::values::NodeValues;
use crate::{Result, SimError};
use gossip_graph::Graph;

/// Packed endpoint table: one `u64` per edge (`u` in the high 32 bits, `v`
/// in the low 32), in edge-id order.
///
/// Edge-id order is deliberately preserved rather than re-sorted: the tick
/// samplers map their draws to edge ids, so id order *is* the access order,
/// and the packing is what makes each access one cache-line-friendly load.
#[derive(Debug, Clone)]
pub struct FlatTopology {
    packed: Vec<u64>,
}

impl FlatTopology {
    /// Packs `graph`'s edge endpoints; `None` when the node count does not
    /// fit 32-bit indices (see
    /// [`Graph::packed_edge_endpoints`]).
    pub fn new(graph: &Graph) -> Option<Self> {
        graph
            .packed_edge_endpoints()
            .map(|packed| FlatTopology { packed })
    }

    /// Number of packed edges.
    pub fn edge_count(&self) -> usize {
        self.packed.len()
    }

    /// The endpoint indices of `edge`, in the normalized `u < v` order of
    /// the [`gossip_graph::Edge`] it was packed from.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[inline]
    pub fn endpoints(&self, edge: usize) -> (usize, usize) {
        let packed = self.packed[edge];
        ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize)
    }
}

/// The a-priori error bounds the f32 tier must meet (see the module docs
/// for the derivation).  A violated bound is [`SimError::PrecisionOracle`],
/// never a silently-degraded result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32Oracle {
    /// Safety factor multiplying the analytic mean-drift bound
    /// `ε₃₂ · M · (T/n + 1)`; the default of 8 absorbs the slack between
    /// the worst-case and typical rounding without masking a real defect
    /// (a genuine f32 accumulation bug overshoots by orders of magnitude).
    pub mean_drift_safety: f64,
    /// Margin per unit of initial variance for the tracked-vs-exact final
    /// variance comparison — the same `1e-9` policy as the f64 engine's
    /// incremental-vs-exact drift oracle.
    pub variance_margin: f64,
}

impl Default for F32Oracle {
    fn default() -> Self {
        F32Oracle {
            mean_drift_safety: 8.0,
            variance_margin: 1e-9,
        }
    }
}

impl F32Oracle {
    /// The documented bound on `|mean(final) − mean(initial)|` after
    /// `ticks` ticks on `nodes` nodes with values of magnitude at most
    /// `magnitude`.
    pub fn mean_drift_bound(&self, magnitude: f64, ticks: u64, nodes: usize) -> f64 {
        if nodes == 0 {
            return 0.0;
        }
        self.mean_drift_safety
            * f64::from(f32::EPSILON)
            * magnitude
            * (ticks as f64 / nodes as f64 + 1.0)
    }

    /// The documented bound on `|tracked − exact|` for the final variance.
    pub fn variance_error_bound(&self, initial_variance: f64) -> f64 {
        self.variance_margin * initial_variance.max(1.0)
    }
}

/// Result of an f32-tier run: the `f32` analogue of
/// [`crate::engine::SimulationOutcome`], extended with the measured errors
/// and the bounds they were held to.
#[derive(Debug, Clone, PartialEq)]
pub struct F32Outcome {
    /// The node values when the run stopped.
    pub final_values: Vec<f32>,
    /// Exact variance of the (f32-rounded) initial values.
    pub initial_variance: f64,
    /// Exact (centered O(n) pass) variance of the final values.
    pub final_variance: f64,
    /// Simulated time at which the run stopped.
    pub elapsed_time: f64,
    /// Number of edge ticks processed.
    pub total_ticks: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of exact moment refreshes performed.
    pub moment_refreshes: u64,
    /// Measured `|mean(final) − mean(initial)|`.
    pub mean_drift: f64,
    /// The a-priori bound the drift was held to.
    pub mean_drift_bound: f64,
    /// Measured `|tracked − exact|` final-variance error.
    pub variance_error: f64,
    /// The bound the variance error was held to.
    pub variance_error_bound: f64,
}

impl F32Outcome {
    /// The normalized final variance `var X(T) / var X(0)`.
    pub fn variance_ratio(&self) -> f64 {
        if self.initial_variance <= 0.0 {
            0.0
        } else {
            self.final_variance / self.initial_variance
        }
    }

    /// `true` if the run stopped because it converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

fn invalid(reason: &str) -> SimError {
    SimError::InvalidConfig {
        reason: reason.to_string(),
    }
}

fn widen_into(xs: &[f32], widened: &mut [f64]) {
    for (wide, &narrow) in widened.iter_mut().zip(xs) {
        *wide = f64::from(narrow);
    }
}

fn exact_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The centered O(n) pass of `Vector::variance`, over a raw slice.
fn exact_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = exact_mean(xs);
    xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
}

/// Runs `kernel` on `graph` with `f32`-stored values until
/// `config.stopping_rule` fires, then checks the run against `oracle`.
///
/// The configuration is interpreted exactly as the f64 engine would: same
/// seed → same tick sequence (the clock streams never touch the values),
/// same stopping rule, same check and refresh cadence.  Only a serial,
/// trace-free, fault-free, honest, incremental-variance configuration is
/// supported; anything else is [`SimError::InvalidConfig`] — the tier is an
/// explicit opt-in, not a silent fallback.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for unsupported configurations,
/// [`SimError::StateSizeMismatch`] / [`SimError::NoEdges`] /
/// [`SimError::NonFiniteValue`] as in the f64 engine (values that overflow
/// `f32` on the initial rounding are non-finite), and
/// [`SimError::PrecisionOracle`] when the finished run violates `oracle` —
/// so a violating run can never be mistaken for (or journaled as) a good
/// one.
pub fn run_f32(
    graph: &Graph,
    initial: &NodeValues,
    kernel: PairwiseKernel,
    config: &SimulationConfig,
    oracle: &F32Oracle,
) -> Result<F32Outcome> {
    if config.trace.is_some() {
        return Err(invalid("the f32 tier does not record traces"));
    }
    if config.fault_plan.is_some() {
        return Err(invalid("the f32 tier does not support fault plans"));
    }
    if config.adversary_plan.is_some() {
        return Err(invalid("the f32 tier does not support adversary plans"));
    }
    if config.shards.is_some() {
        return Err(invalid("the f32 tier is serial; shards are unsupported"));
    }
    if config.variance_mode != VarianceMode::Incremental {
        return Err(invalid(
            "the f32 tier requires the incremental variance mode",
        ));
    }
    if config.settling_threshold.is_some() {
        return Err(invalid("the f32 tier does not track settling times"));
    }
    if initial.len() != graph.node_count() {
        return Err(SimError::StateSizeMismatch {
            nodes: graph.node_count(),
            values: initial.len(),
        });
    }
    let topology = FlatTopology::new(graph)
        .ok_or_else(|| invalid("graph node count does not fit the packed 32-bit topology"))?;

    let mut xs: Vec<f32> = initial.as_slice().iter().map(|&x| x as f32).collect();
    if let Some(node) = xs.iter().position(|v| !v.is_finite()) {
        return Err(SimError::NonFiniteValue { node });
    }
    let mut widened: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
    let mut tracker = MomentTracker::from_slice(&widened);
    let initial_mean = exact_mean(&widened);
    let initial_variance = exact_variance(&widened);
    // Convexity pins every value inside the initial range, so the rounded
    // initial magnitude bounds |value| for the whole run.
    let magnitude = f64::from(xs.iter().fold(0.0_f32, |acc, &x| acc.max(x.abs())));

    let mut sampler = Sampler::from_model(config.clock_model, graph, config.seed)?;
    let mut refreshes = 0u64;
    let mut time = 0.0_f64;
    let mut ticks = 0u64;
    let initial_status = SimulationStatus {
        time: 0.0,
        ticks: 0,
        variance: initial_variance,
        initial_variance,
    };
    let stop_reason = match config.stopping_rule.evaluate(&initial_status) {
        Some(reason) => reason,
        None => loop {
            if ticks >= config.max_events {
                return Err(SimError::EventBudgetExhausted { events: ticks });
            }
            let event = sampler.next_tick();
            ticks = event.global_tick_count;
            time = event.time;
            let (u, v) = topology.endpoints(event.edge.index());
            let xu = f64::from(xs[u]);
            let xv = f64::from(xs[v]);
            let (new_u, new_v) = kernel(xu, xv);
            let rounded_u = new_u as f32;
            let rounded_v = new_v as f32;
            xs[u] = rounded_u;
            tracker.record_update(xu, f64::from(rounded_u));
            xs[v] = rounded_v;
            tracker.record_update(xv, f64::from(rounded_v));

            if ticks.is_multiple_of(config.moment_refresh_every_ticks) {
                widen_into(&xs, &mut widened);
                tracker.refresh(&widened);
                refreshes += 1;
            }

            if ticks.is_multiple_of(config.check_every_ticks) {
                if !tracker.is_finite() {
                    if let Some(node) = xs.iter().position(|x| !x.is_finite()) {
                        return Err(SimError::NonFiniteValue { node });
                    }
                    // A transient poisoned the sticky running sums while the
                    // values recovered; rebuild exactly (finite f32 squares
                    // cannot overflow the f64 sums, so the refresh always
                    // restores finiteness).
                    widen_into(&xs, &mut widened);
                    tracker.refresh(&widened);
                    refreshes += 1;
                } else if tracker.needs_recenter() {
                    widen_into(&xs, &mut widened);
                    tracker.refresh(&widened);
                    refreshes += 1;
                }
                let status = SimulationStatus {
                    time,
                    ticks,
                    variance: tracker.variance(),
                    initial_variance,
                };
                if let Some(reason) = config.stopping_rule.evaluate(&status) {
                    break reason;
                }
            }
        },
    };

    widen_into(&xs, &mut widened);
    if let Some(node) = xs.iter().position(|x| !x.is_finite()) {
        return Err(SimError::NonFiniteValue { node });
    }
    let tracked_variance = tracker.variance();
    let final_variance = exact_variance(&widened);
    let mean_drift = (exact_mean(&widened) - initial_mean).abs();
    let mean_drift_bound = oracle.mean_drift_bound(magnitude, ticks, xs.len());
    if mean_drift > mean_drift_bound {
        return Err(SimError::PrecisionOracle {
            reason: format!(
                "f32 mean drift {mean_drift:e} exceeds the a-priori bound {mean_drift_bound:e} \
                 after {ticks} ticks on {} nodes",
                xs.len()
            ),
        });
    }
    let variance_error = (tracked_variance - final_variance).abs();
    let variance_error_bound = oracle.variance_error_bound(initial_variance);
    if variance_error > variance_error_bound {
        return Err(SimError::PrecisionOracle {
            reason: format!(
                "f32 tracked final variance is off by {variance_error:e} from the exact pass, \
                 beyond the documented margin {variance_error_bound:e}"
            ),
        });
    }
    Ok(F32Outcome {
        final_values: xs,
        initial_variance,
        final_variance,
        elapsed_time: time,
        total_ticks: ticks,
        stop_reason,
        moment_refreshes: refreshes,
        mean_drift,
        mean_drift_bound,
        variance_error,
        variance_error_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AsyncSimulator, ClockModel};
    use crate::handler::{EdgeTickContext, EdgeTickHandler};
    use crate::stopping::StoppingRule;
    use crate::trace::TraceConfig;
    use crate::values::NodeValues;
    use gossip_graph::generators::{complete, cycle, dumbbell};

    fn vanilla_kernel(xu: f64, xv: f64) -> (f64, f64) {
        let avg = 0.5 * (xu + xv);
        (avg, avg)
    }

    fn spread(n: usize) -> NodeValues {
        NodeValues::from_values((0..n).map(|i| (i as f64) / (n as f64) - 0.5).collect()).unwrap()
    }

    #[test]
    fn topology_packs_every_edge_in_id_order() {
        let (graph, _) = dumbbell(5).unwrap();
        let topology = FlatTopology::new(&graph).unwrap();
        assert_eq!(topology.edge_count(), graph.edge_count());
        for (i, edge) in graph.edges().iter().enumerate() {
            let (u, v) = edge.endpoints();
            assert_eq!(topology.endpoints(i), (u.index(), v.index()));
            assert!(u.index() < v.index());
        }
    }

    #[test]
    fn f32_tier_converges_within_its_oracle() {
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            let graph = complete(24).unwrap();
            let config = SimulationConfig::new(97)
                .with_clock_model(model)
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000));
            let outcome = run_f32(
                &graph,
                &spread(24),
                vanilla_kernel,
                &config,
                &F32Oracle::default(),
            )
            .unwrap();
            assert!(outcome.converged());
            assert!(outcome.total_ticks > 0);
            assert!(outcome.mean_drift <= outcome.mean_drift_bound);
            assert!(outcome.variance_error <= outcome.variance_error_bound);
            assert!(outcome.variance_ratio() < (-2.0_f64).exp());
        }
    }

    #[test]
    fn f32_tier_matches_f64_tick_schedule() {
        // The clock streams never read the values, so the f32 tier stops at
        // the same *kind* of schedule as f64; with a tick-based rule the
        // stopping tick is identical.
        let graph = cycle(32).unwrap();
        let config = SimulationConfig::new(11)
            .with_clock_model(ClockModel::GlobalUniform)
            .with_stopping_rule(StoppingRule::max_ticks(5_000));
        let f32_out = run_f32(
            &graph,
            &spread(32),
            vanilla_kernel,
            &config,
            &F32Oracle::default(),
        )
        .unwrap();
        struct Vanilla;
        impl EdgeTickHandler for Vanilla {
            fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
                let (u, v) = ctx.edge.endpoints();
                values.average_pair(u, v);
            }
        }
        let mut sim = AsyncSimulator::new(&graph, spread(32), Vanilla, config).unwrap();
        let f64_out = sim.run().unwrap();
        assert_eq!(f32_out.total_ticks, f64_out.total_ticks);
        assert_eq!(
            f32_out.elapsed_time.to_bits(),
            f64_out.elapsed_time.to_bits()
        );
        // And the states agree to f32 rounding.
        for (narrow, wide) in f32_out
            .final_values
            .iter()
            .zip(f64_out.final_values.as_slice())
        {
            assert!((f64::from(*narrow) - wide).abs() <= 1e-5);
        }
    }

    #[test]
    fn f32_tier_rejects_unsupported_configurations() {
        let graph = complete(4).unwrap();
        let initial = spread(4);
        let reject = |config: SimulationConfig| {
            matches!(
                run_f32(
                    &graph,
                    &initial,
                    vanilla_kernel,
                    &config,
                    &F32Oracle::default()
                ),
                Err(SimError::InvalidConfig { .. })
            )
        };
        assert!(reject(
            SimulationConfig::new(1).with_trace(TraceConfig::default())
        ));
        assert!(reject(
            SimulationConfig::new(1).with_fault_plan(crate::fault::FaultPlan::new(2))
        ));
        assert!(reject(
            SimulationConfig::new(1).with_adversary_plan(crate::adversary::AdversaryPlan::new(3))
        ));
        assert!(reject(SimulationConfig::new(1).with_shards(2)));
        assert!(reject(
            SimulationConfig::new(1).with_variance_mode(VarianceMode::ExactEveryCheck)
        ));
        assert!(reject(
            SimulationConfig::new(1).with_settling_threshold(0.5)
        ));
        assert!(matches!(
            run_f32(
                &graph,
                &spread(5),
                vanilla_kernel,
                &SimulationConfig::new(1),
                &F32Oracle::default()
            ),
            Err(SimError::StateSizeMismatch { .. })
        ));
    }

    #[test]
    fn f32_tier_zero_variance_stops_immediately() {
        let graph = complete(3).unwrap();
        let outcome = run_f32(
            &graph,
            &NodeValues::constant(3, 2.5),
            vanilla_kernel,
            &SimulationConfig::new(9),
            &F32Oracle::default(),
        )
        .unwrap();
        assert_eq!(outcome.total_ticks, 0);
        assert!(outcome.converged());
        assert_eq!(outcome.mean_drift, 0.0);
        assert_eq!(outcome.variance_error, 0.0);
    }

    #[test]
    fn f32_oracle_violation_is_a_precision_error() {
        // A zero safety factor makes any nonzero drift a violation.  The
        // initial values are deliberately non-dyadic (thirds), so pairwise
        // averages round in f32 from the very first tick and this seed's
        // accumulated drift is nonzero — dyadic initials like `spread`'s
        // would stay exactly representable through a Definition 1 stop and
        // never drift at all.
        let graph = complete(16).unwrap();
        let initial =
            NodeValues::from_values((0..16).map(|i| ((i as f64) + 0.1) / 3.0).collect()).unwrap();
        let strict = F32Oracle {
            mean_drift_safety: 0.0,
            variance_margin: 1e-9,
        };
        let config = SimulationConfig::new(41)
            .with_stopping_rule(StoppingRule::definition1().or_max_ticks(1_000_000));
        let result = run_f32(&graph, &initial, vanilla_kernel, &config, &strict);
        assert!(matches!(result, Err(SimError::PrecisionOracle { .. })));
    }

    #[test]
    fn f32_initial_overflow_is_non_finite() {
        let graph = complete(2).unwrap();
        let initial = NodeValues::from_values(vec![1e300, 0.0]).unwrap();
        assert!(matches!(
            run_f32(
                &graph,
                &initial,
                vanilla_kernel,
                &SimulationConfig::new(1),
                &F32Oracle::default()
            ),
            Err(SimError::NonFiniteValue { node: 0 })
        ));
    }

    #[test]
    fn oracle_bounds_are_monotone_and_degenerate_safely() {
        let oracle = F32Oracle::default();
        assert_eq!(oracle.mean_drift_bound(1.0, 0, 0), 0.0);
        assert!(oracle.mean_drift_bound(1.0, 1_000, 10) > oracle.mean_drift_bound(1.0, 100, 10));
        assert!(oracle.variance_error_bound(0.0) > 0.0);
        assert!(oracle.variance_error_bound(4.0) > oracle.variance_error_bound(1.0));
    }
}
