//! Deterministic fault injection: dynamic topology and message loss.
//!
//! The paper's guarantees are stated for a fixed graph, but gossip's appeal
//! is robustness under churn: links fail and recover, nodes pause and
//! resume, messages are lost.  A [`FaultPlan`] describes such a fault
//! environment **deterministically** — edge outages and node pauses are
//! half-open windows in *global tick* coordinates, and per-contact message
//! drops are sampled from a dedicated ChaCha8 stream seeded by the plan —
//! so a faulted run remains a pure function of `(config seed, plan)` and
//! stays bit-reproducible.
//!
//! The engine consumes the plan through the crate-internal
//! [`FaultInjector`], which classifies every edge tick *before* the handler
//! runs: a suppressed contact skips the pairwise update **atomically** (the
//! handler is never invoked, so no half-applied update can violate mass
//! conservation and the O(1) moment tracker is simply not touched).  The
//! clock still ticks and time still advances — a down link loses messages,
//! it does not slow the rest of the network.
//!
//! An empty plan ([`FaultPlan::none`]) draws nothing from its RNG and
//! suppresses nothing, so a run configured with it is **byte-identical** to
//! a run with no plan at all; `tests/fault_differential.rs` pins that
//! contract on every scale family.

use crate::{Result, SimError};
use gossip_graph::{Edge, EdgeId, Graph, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A half-open window `[from, until)` in global-tick coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickWindow {
    /// First tick (inclusive) at which the fault is active.
    pub from: u64,
    /// First tick at which the fault is no longer active.
    pub until: u64,
}

impl TickWindow {
    /// Creates a window; `until ≤ from` yields an empty window.
    pub fn new(from: u64, until: u64) -> Self {
        TickWindow { from, until }
    }

    /// Returns `true` if `tick` falls inside the window.
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.from && tick < self.until
    }

    /// Returns `true` if the window covers no tick at all.
    pub fn is_empty(&self) -> bool {
        self.until <= self.from
    }
}

/// One scheduled link outage: `edge` delivers nothing during `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeOutage {
    /// The edge that goes down.
    pub edge: EdgeId,
    /// When it is down.
    pub window: TickWindow,
}

/// One scheduled node pause: every contact incident to `node` is suppressed
/// during `window` (a crashed or sleeping node neither sends nor receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePause {
    /// The paused node.
    pub node: NodeId,
    /// When it is paused.
    pub window: TickWindow,
}

/// A deterministic description of the fault environment of one run.
///
/// # Examples
///
/// ```
/// use gossip_sim::fault::FaultPlan;
/// use gossip_graph::{EdgeId, NodeId};
///
/// let plan = FaultPlan::new(7)
///     .with_drop_probability(0.1)
///     .with_edge_outage(EdgeId(0), 100, 200)
///     .with_node_pause(NodeId(3), 50, 80);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the dedicated drop-sampling ChaCha8 stream (independent of
    /// the clock sampler's stream, so adding drops never perturbs the tick
    /// sequence itself).
    pub seed: u64,
    /// Probability that a topologically live contact is dropped, in `[0, 1]`.
    /// At `0.0` the drop stream is never drawn from.
    pub drop_probability: f64,
    /// Scheduled link outages.
    pub edge_outages: Vec<EdgeOutage>,
    /// Scheduled node pauses.
    pub node_pauses: Vec<NodePause>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// Creates an empty plan with the given drop-stream seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_probability: 0.0,
            edge_outages: Vec::new(),
            node_pauses: Vec::new(),
        }
    }

    /// The canonical no-op plan: nothing is ever suppressed, and a run
    /// configured with it is byte-identical to a fault-free run.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Sets the per-contact drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Schedules a link outage for `edge` over the ticks `[from, until)`.
    pub fn with_edge_outage(mut self, edge: EdgeId, from: u64, until: u64) -> Self {
        self.edge_outages.push(EdgeOutage {
            edge,
            window: TickWindow::new(from, until),
        });
        self
    }

    /// Schedules a pause for `node` over the ticks `[from, until)`.
    pub fn with_node_pause(mut self, node: NodeId, from: u64, until: u64) -> Self {
        self.node_pauses.push(NodePause {
            node,
            window: TickWindow::new(from, until),
        });
        self
    }

    /// Returns `true` if the plan can never suppress a contact.
    pub fn is_empty(&self) -> bool {
        self.drop_probability <= 0.0
            && self.edge_outages.iter().all(|o| o.window.is_empty())
            && self.node_pauses.iter().all(|p| p.window.is_empty())
    }

    /// Every edge that is down at some point of the plan, deduplicated and
    /// sorted — the input to worst-surviving-subgraph probes
    /// (`gossip_graph::dynamic::DynamicGraphView`).
    pub fn edges_ever_down(&self) -> Vec<EdgeId> {
        let mut edges: Vec<EdgeId> = self
            .edge_outages
            .iter()
            .filter(|o| !o.window.is_empty())
            .map(|o| o.edge)
            .collect();
        edges.sort();
        edges.dedup();
        edges
    }

    /// Every node that is paused at some point of the plan, deduplicated and
    /// sorted.
    pub fn nodes_ever_paused(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .node_pauses
            .iter()
            .filter(|p| !p.window.is_empty())
            .map(|p| p.node)
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Validates the plan against a graph: the drop probability must be a
    /// finite value in `[0, 1]`, and every referenced edge and node must
    /// exist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a bad drop probability and
    /// [`SimError::Graph`] for out-of-range identifiers.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        // `RangeInclusive::contains` is already false for NaN and ±∞, so a
        // separate finiteness check would be unreachable.
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "drop probability must be in [0, 1], got {}",
                    self.drop_probability
                ),
            });
        }
        for outage in &self.edge_outages {
            graph.edge(outage.edge)?;
        }
        for pause in &self.node_pauses {
            graph.check_node(pause.node)?;
        }
        Ok(())
    }
}

/// Why a contact was suppressed (or that it was delivered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactFate {
    /// The handler ran.
    Delivered,
    /// The edge was down.
    EdgeDown,
    /// An endpoint was paused.
    NodePaused,
    /// The message was dropped by the loss process.
    Dropped,
}

/// Counters of what the injector did during a run.  All zeros when the run
/// had no fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Contacts whose handler ran.
    pub delivered: u64,
    /// Contacts suppressed because the edge was down.
    pub edge_down_skips: u64,
    /// Contacts suppressed because an endpoint was paused.
    pub node_pause_skips: u64,
    /// Contacts suppressed by the message-loss process.
    pub dropped: u64,
}

impl FaultStats {
    /// Total suppressed contacts of any kind.
    pub fn total_suppressed(&self) -> u64 {
        self.edge_down_skips + self.node_pause_skips + self.dropped
    }

    /// Total contacts classified (delivered plus suppressed).
    pub fn total_contacts(&self) -> u64 {
        self.delivered + self.total_suppressed()
    }
}

/// Runtime state compiled from a [`FaultPlan`]: per-edge / per-node window
/// indexes plus the dedicated drop-sampling stream.  Owned by the engine.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_probability: f64,
    rng: ChaCha8Rng,
    edge_windows: BTreeMap<usize, Vec<TickWindow>>,
    node_windows: BTreeMap<usize, Vec<TickWindow>>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Compiles a plan for a graph.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn new(plan: &FaultPlan, graph: &Graph) -> Result<Self> {
        plan.validate(graph)?;
        let mut edge_windows: BTreeMap<usize, Vec<TickWindow>> = BTreeMap::new();
        for outage in &plan.edge_outages {
            if !outage.window.is_empty() {
                edge_windows
                    .entry(outage.edge.index())
                    .or_default()
                    .push(outage.window);
            }
        }
        let mut node_windows: BTreeMap<usize, Vec<TickWindow>> = BTreeMap::new();
        for pause in &plan.node_pauses {
            if !pause.window.is_empty() {
                node_windows
                    .entry(pause.node.index())
                    .or_default()
                    .push(pause.window);
            }
        }
        Ok(FaultInjector {
            drop_probability: plan.drop_probability,
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            edge_windows,
            node_windows,
            stats: FaultStats::default(),
        })
    }

    /// Classifies the contact at `tick` on `edge`, updating the counters.
    /// The drop stream is drawn from only for topologically live contacts
    /// and only when the drop probability is positive, so an empty plan
    /// consumes no randomness at all.
    pub fn classify(&mut self, edge_id: EdgeId, edge: Edge, tick: u64) -> ContactFate {
        if Self::in_window(&self.edge_windows, edge_id.index(), tick) {
            self.stats.edge_down_skips += 1;
            return ContactFate::EdgeDown;
        }
        let (u, v) = edge.endpoints();
        if Self::in_window(&self.node_windows, u.index(), tick)
            || Self::in_window(&self.node_windows, v.index(), tick)
        {
            self.stats.node_pause_skips += 1;
            return ContactFate::NodePaused;
        }
        if self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability {
            self.stats.dropped += 1;
            return ContactFate::Dropped;
        }
        self.stats.delivered += 1;
        ContactFate::Delivered
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Crate-internal: captures the mutable state for a checkpoint.  The
    /// window indexes are pure functions of the plan and are recompiled on
    /// restore; only the drop-stream position and counters evolve.
    pub(crate) fn checkpoint_state(&self) -> FaultInjectorState {
        FaultInjectorState {
            rng_word_pos: self.rng.get_word_pos(),
            stats: self.stats,
        }
    }

    /// Crate-internal: reinstalls checkpointed mutable state into a freshly
    /// compiled injector (same plan, same graph).
    pub(crate) fn restore_state(&mut self, state: &FaultInjectorState) {
        self.rng.set_word_pos(state.rng_word_pos);
        self.stats = state.stats;
    }

    fn in_window(windows: &BTreeMap<usize, Vec<TickWindow>>, index: usize, tick: u64) -> bool {
        windows
            .get(&index)
            .is_some_and(|ws| ws.iter().any(|w| w.contains(tick)))
    }
}

/// Checkpointed mutable state of a [`FaultInjector`] (crate-internal;
/// serialized by `crate::checkpoint`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultInjectorState {
    /// Keystream position of the drop-sampling RNG.
    pub(crate) rng_word_pos: u128,
    /// Counters accumulated up to the checkpoint.
    pub(crate) stats: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, path};

    #[test]
    fn tick_window_containment() {
        let w = TickWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.is_empty());
        assert!(TickWindow::new(5, 5).is_empty());
        assert!(TickWindow::new(7, 3).is_empty());
    }

    #[test]
    fn plan_builders_and_emptiness() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        // Empty windows do not make a plan non-empty.
        let degenerate = FaultPlan::new(1)
            .with_edge_outage(EdgeId(0), 5, 5)
            .with_node_pause(NodeId(0), 9, 3);
        assert!(degenerate.is_empty());
        assert!(degenerate.edges_ever_down().is_empty());
        assert!(degenerate.nodes_ever_paused().is_empty());
        let plan = FaultPlan::new(1).with_drop_probability(0.5);
        assert!(!plan.is_empty());
        let plan = FaultPlan::new(1)
            .with_edge_outage(EdgeId(2), 0, 10)
            .with_edge_outage(EdgeId(2), 20, 30)
            .with_edge_outage(EdgeId(1), 0, 1)
            .with_node_pause(NodeId(4), 0, 100);
        assert!(!plan.is_empty());
        assert_eq!(plan.edges_ever_down(), vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(plan.nodes_ever_paused(), vec![NodeId(4)]);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let g = path(3).unwrap(); // 2 edges, 3 nodes
        assert!(FaultPlan::new(0)
            .with_drop_probability(1.5)
            .validate(&g)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_drop_probability(-0.1)
            .validate(&g)
            .is_err());
        // The range check alone must reject every non-finite probability:
        // `contains` is false for NaN, and ±∞ fall outside [0, 1].
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                FaultPlan::new(0)
                    .with_drop_probability(bad)
                    .validate(&g)
                    .is_err(),
                "drop probability {bad} must be rejected"
            );
        }
        assert!(FaultPlan::new(0)
            .with_edge_outage(EdgeId(2), 0, 1)
            .validate(&g)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_node_pause(NodeId(3), 0, 1)
            .validate(&g)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_drop_probability(1.0)
            .with_edge_outage(EdgeId(1), 0, 1)
            .with_node_pause(NodeId(2), 0, 1)
            .validate(&g)
            .is_ok());
    }

    #[test]
    fn injector_classifies_in_priority_order() {
        let g = complete(3).unwrap(); // edges (0,1)=e0, (0,2)=e1, (1,2)=e2
        let plan = FaultPlan::new(3)
            .with_edge_outage(EdgeId(0), 0, 10)
            .with_node_pause(NodeId(2), 5, 15);
        let mut injector = FaultInjector::new(&plan, &g).unwrap();
        let edge = |i: usize| g.edge(EdgeId(i)).unwrap();
        // Edge 0 down at tick 1.
        assert_eq!(
            injector.classify(EdgeId(0), edge(0), 1),
            ContactFate::EdgeDown
        );
        // Edge 1 touches node 2, paused at tick 6.
        assert_eq!(
            injector.classify(EdgeId(1), edge(1), 6),
            ContactFate::NodePaused
        );
        // Edge 2 touches node 2 as well.
        assert_eq!(
            injector.classify(EdgeId(2), edge(2), 14),
            ContactFate::NodePaused
        );
        // Outside every window, no drops configured: delivered.
        assert_eq!(
            injector.classify(EdgeId(0), edge(0), 20),
            ContactFate::Delivered
        );
        let stats = injector.stats();
        assert_eq!(stats.edge_down_skips, 1);
        assert_eq!(stats.node_pause_skips, 2);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.total_suppressed(), 3);
        assert_eq!(stats.total_contacts(), 4);
    }

    #[test]
    fn drop_sampling_is_seeded_and_roughly_calibrated() {
        let g = complete(3).unwrap();
        let edge = g.edge(EdgeId(0)).unwrap();
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed).with_drop_probability(0.3);
            let mut injector = FaultInjector::new(&plan, &g).unwrap();
            let fates: Vec<ContactFate> = (0..2000)
                .map(|t| injector.classify(EdgeId(0), edge, t))
                .collect();
            (fates, injector.stats())
        };
        let (fates_a, stats_a) = run(7);
        let (fates_b, _) = run(7);
        assert_eq!(fates_a, fates_b, "drop stream must be seed-deterministic");
        let (fates_c, _) = run(8);
        assert_ne!(fates_a, fates_c, "different seeds must differ");
        // Binomial(2000, 0.3): 5σ ≈ 102.
        let expected = 600.0;
        assert!(
            (stats_a.dropped as f64 - expected).abs() < 110.0,
            "dropped {} far from {expected}",
            stats_a.dropped
        );
    }

    #[test]
    fn empty_plan_never_draws_and_never_suppresses_contacts() {
        let g = complete(4).unwrap();
        let mut injector = FaultInjector::new(&FaultPlan::none(), &g).unwrap();
        for t in 0..1000 {
            let id = EdgeId(t as usize % g.edge_count());
            assert_eq!(
                injector.classify(id, g.edge(id).unwrap(), t),
                ContactFate::Delivered
            );
        }
        assert_eq!(injector.stats().total_suppressed(), 0);
        assert_eq!(injector.stats().delivered, 1000);
    }

    mod conservation {
        //! Conservation oracles under arbitrary generated fault schedules:
        //! because a suppressed contact skips the pairwise update
        //! *atomically* (never half-applies it), the total mass is conserved
        //! exactly and the class-C variance stays monotonically
        //! non-increasing no matter what the schedule does.

        use super::*;
        use crate::engine::{AsyncSimulator, SimulationConfig};
        use crate::handler::{EdgeTickContext, EdgeTickHandler};
        use crate::stopping::StoppingRule;
        use crate::trace::TraceConfig;
        use crate::values::NodeValues;
        use gossip_graph::generators::dumbbell;
        use proptest::prelude::*;

        struct Vanilla;

        impl EdgeTickHandler for Vanilla {
            fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
                let (u, v) = ctx.edge.endpoints();
                values.average_pair(u, v);
            }
        }

        /// Builds a pseudo-random fault schedule from a seed (the vendored
        /// proptest has no tuple strategies, so the schedule itself is
        /// derived from a drawn seed via the same ChaCha8 discipline).
        fn random_plan(
            plan_seed: u64,
            drop_p: f64,
            outage_count: usize,
            pause_count: usize,
            edge_count: usize,
            node_count: usize,
        ) -> FaultPlan {
            let mut rng = ChaCha8Rng::seed_from_u64(plan_seed ^ 0xFA17);
            let mut plan = FaultPlan::new(plan_seed).with_drop_probability(drop_p);
            for _ in 0..outage_count {
                let e = rng.gen_range(0..edge_count);
                let from = rng.gen_range(0..2000u64);
                let len = rng.gen_range(0..1000u64);
                plan = plan.with_edge_outage(EdgeId(e), from, from + len);
            }
            for _ in 0..pause_count {
                let v = rng.gen_range(0..node_count);
                let from = rng.gen_range(0..2000u64);
                let len = rng.gen_range(0..1000u64);
                plan = plan.with_node_pause(NodeId(v), from, from + len);
            }
            plan
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn prop_mass_and_class_c_variance_conserved_under_faults(
                plan_seed in 0u64..10_000,
                clock_seed in 0u64..10_000,
                drop_p in 0.0f64..0.9,
                outage_count in 0usize..6,
                pause_count in 0usize..6,
            ) {
                let (g, _) = dumbbell(4).unwrap(); // 8 nodes, 13 edges
                let plan = random_plan(
                    plan_seed, drop_p, outage_count, pause_count,
                    g.edge_count(), g.node_count(),
                );
                let initial =
                    NodeValues::from_values(vec![4.0, -1.0, 2.5, 0.0, -3.0, 1.0, 0.5, -4.0])
                        .unwrap();
                let mean = initial.mean();
                let config = SimulationConfig::new(clock_seed)
                    .with_stopping_rule(StoppingRule::max_ticks(3_000))
                    .with_trace(TraceConfig::every_ticks(1))
                    .with_fault_plan(plan);
                let mut sim = AsyncSimulator::new(&g, initial, Vanilla, config).unwrap();
                let outcome = sim.run().unwrap();
                // Total mass conserved: drops skip the update atomically,
                // so no half-applied pair can leak or duplicate mass.
                prop_assert!((outcome.final_values.mean() - mean).abs() < 1e-9);
                // Class-C variance monotonicity: every delivered vanilla
                // average is convex, every suppressed contact is a no-op.
                let trace = outcome.trace.as_ref().unwrap();
                let mut last = f64::INFINITY;
                for point in trace.points() {
                    prop_assert!(
                        point.variance <= last + 1e-9,
                        "variance rose from {last} to {} at t = {}",
                        point.variance,
                        point.time
                    );
                    last = point.variance;
                }
                // Every tick was classified exactly once.
                prop_assert_eq!(
                    outcome.fault_stats.total_contacts(),
                    outcome.total_ticks
                );
            }
        }
    }
}
