//! Time-series recording of a simulation run.
//!
//! Experiments such as E4 (per-tick drift of the block mean `y(t)`) and E5
//! (evolution of `log var X` across Algorithm A's epochs) need the trajectory
//! of summary statistics, not just the final state.  A [`Trace`] is a
//! sequence of [`TracePoint`]s sampled every `sample_every_ticks` ticks (and
//! always at the first and last event), optionally carrying the per-block
//! means and within-block deviation with respect to a [`Partition`].

use crate::values::NodeValues;
use gossip_graph::partition::Block;
use gossip_graph::Partition;
use serde::{Deserialize, Serialize};

/// Sampling configuration for traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record a point every this many ticks (the first tick is always
    /// recorded).  A value of 1 records every tick.
    pub sample_every_ticks: u64,
    /// Also record per-block means and the within-block deviation.  Requires
    /// the simulation to have been given a partition.
    pub record_block_statistics: bool,
}

impl TraceConfig {
    /// Records every `sample_every_ticks` ticks, without block statistics.
    pub fn every_ticks(sample_every_ticks: u64) -> Self {
        TraceConfig {
            sample_every_ticks: sample_every_ticks.max(1),
            record_block_statistics: false,
        }
    }

    /// Enables per-block statistics.
    pub fn with_block_statistics(mut self) -> Self {
        self.record_block_statistics = true;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::every_ticks(1)
    }
}

/// One sampled point of a simulation trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulated time of the sample.
    pub time: f64,
    /// Number of ticks processed when the sample was taken.
    pub tick: u64,
    /// Variance of the node values.
    pub variance: f64,
    /// Mean of the node values (conserved by all linear algorithms).
    pub mean: f64,
    /// Mean over block one (`y(t)` / `µ₁(t)` in the paper), when recorded.
    pub block_mean_one: Option<f64>,
    /// Mean over block two (`z(t)` / `µ₂(t)` in the paper), when recorded.
    pub block_mean_two: Option<f64>,
    /// Within-block deviation `σ(t)`, when recorded.
    pub within_block_sigma: Option<f64>,
}

/// A recorded trajectory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// The recorded points, in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded point, if any.
    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Earliest recorded time at which the variance ratio (relative to
    /// `initial_variance`) is below `threshold`, if any.
    pub fn first_time_below_ratio(&self, initial_variance: f64, threshold: f64) -> Option<f64> {
        if initial_variance <= 0.0 {
            return self.points.first().map(|p| p.time);
        }
        self.points
            .iter()
            .find(|p| p.variance / initial_variance < threshold)
            .map(|p| p.time)
    }

    /// Iterates over `(time, variance)` pairs, the series most plots need.
    pub fn variance_series(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().map(|p| (p.time, p.variance))
    }
}

/// Incrementally builds a [`Trace`] during a run.  Drivers call
/// [`TraceRecorder::record`] after every tick; the recorder downsamples
/// according to its [`TraceConfig`].
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    partition: Option<Partition>,
    points: Vec<TracePoint>,
}

impl TraceRecorder {
    /// Creates a recorder.  `partition` is required for block statistics; if
    /// absent those fields stay `None` even when requested.
    pub fn new(config: TraceConfig, partition: Option<Partition>) -> Self {
        TraceRecorder {
            config,
            partition,
            points: Vec::new(),
        }
    }

    /// Records the state after the `tick`-th tick at simulated time `time`,
    /// subject to downsampling.  `force` bypasses downsampling (used for the
    /// final state).
    pub fn record(&mut self, time: f64, tick: u64, values: &NodeValues, force: bool) {
        if !force && !tick.is_multiple_of(self.config.sample_every_ticks) && tick != 1 {
            return;
        }
        self.push_point(time, tick, values);
    }

    fn push_point(&mut self, time: f64, tick: u64, values: &NodeValues) {
        let (block_mean_one, block_mean_two, within_block_sigma) =
            if self.config.record_block_statistics {
                match &self.partition {
                    Some(partition) => (
                        Some(values.block_mean(partition, Block::One)),
                        Some(values.block_mean(partition, Block::Two)),
                        Some(values.within_block_sigma(partition)),
                    ),
                    None => (None, None, None),
                }
            } else {
                (None, None, None)
            };
        self.points.push(TracePoint {
            time,
            tick,
            variance: values.variance(),
            mean: values.mean(),
            block_mean_one,
            block_mean_two,
            within_block_sigma,
        });
    }

    /// Finishes recording and returns the trace.
    pub fn finish(self) -> Trace {
        Trace {
            points: self.points,
        }
    }

    /// Finishes recording and returns the trace together with the
    /// configuration and partition the recorder was built from, so a driver
    /// that moved them in (instead of cloning per run) can restore them for
    /// a subsequent run.
    pub fn finish_with_parts(self) -> (Trace, TraceConfig, Option<Partition>) {
        (
            Trace {
                points: self.points,
            },
            self.config,
            self.partition,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::dumbbell;

    #[test]
    fn config_constructors() {
        let c = TraceConfig::every_ticks(0);
        assert_eq!(c.sample_every_ticks, 1);
        assert!(!c.record_block_statistics);
        let c = TraceConfig::every_ticks(10).with_block_statistics();
        assert_eq!(c.sample_every_ticks, 10);
        assert!(c.record_block_statistics);
        assert_eq!(TraceConfig::default().sample_every_ticks, 1);
    }

    #[test]
    fn recorder_downsamples() {
        let mut rec = TraceRecorder::new(TraceConfig::every_ticks(5), None);
        let values = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        for tick in 1..=20u64 {
            rec.record(tick as f64 * 0.1, tick, &values, false);
        }
        let trace = rec.finish();
        // Ticks recorded: 1 (always), 5, 10, 15, 20.
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.points()[0].tick, 1);
        assert_eq!(trace.last().unwrap().tick, 20);
        assert!(!trace.is_empty());
    }

    #[test]
    fn force_records_regardless_of_downsampling() {
        let mut rec = TraceRecorder::new(TraceConfig::every_ticks(100), None);
        let values = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        rec.record(0.5, 3, &values, true);
        let trace = rec.finish();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.points()[0].tick, 3);
    }

    #[test]
    fn block_statistics_recorded_with_partition() {
        let (_, partition) = dumbbell(2).unwrap();
        let mut rec = TraceRecorder::new(
            TraceConfig::every_ticks(1).with_block_statistics(),
            Some(partition),
        );
        let values = NodeValues::from_values(vec![1.0, 1.0, -1.0, -1.0]).unwrap();
        rec.record(0.1, 1, &values, false);
        let trace = rec.finish();
        let p = &trace.points()[0];
        assert_eq!(p.block_mean_one, Some(1.0));
        assert_eq!(p.block_mean_two, Some(-1.0));
        assert_eq!(p.within_block_sigma, Some(0.0));
        assert!((p.variance - 1.0).abs() < 1e-12);
        assert!((p.mean - 0.0).abs() < 1e-12);
    }

    #[test]
    fn block_statistics_absent_without_partition() {
        let mut rec = TraceRecorder::new(TraceConfig::every_ticks(1).with_block_statistics(), None);
        let values = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        rec.record(0.1, 1, &values, false);
        let trace = rec.finish();
        assert_eq!(trace.points()[0].block_mean_one, None);
    }

    #[test]
    fn first_time_below_ratio() {
        let mut rec = TraceRecorder::new(TraceConfig::every_ticks(1), None);
        // Variance decreasing over three ticks: 1.0, 0.5, 0.05.
        for (tick, spread) in [(1u64, 1.0f64), (2, 0.5), (3, 0.05)] {
            let v = NodeValues::from_values(vec![spread.sqrt(), -spread.sqrt()]).unwrap();
            rec.record(tick as f64, tick, &v, false);
        }
        let trace = rec.finish();
        assert_eq!(trace.first_time_below_ratio(1.0, 0.4), Some(3.0));
        assert_eq!(trace.first_time_below_ratio(1.0, 0.6), Some(2.0));
        assert_eq!(trace.first_time_below_ratio(1.0, 0.01), None);
        // Zero initial variance: converged at the first recorded time.
        assert_eq!(trace.first_time_below_ratio(0.0, 0.5), Some(1.0));
        let series: Vec<(f64, f64)> = trace.variance_series().collect();
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
    }
}
