//! Event-driven asynchronous gossip simulator.
//!
//! The model simulated here is exactly the one in *Distributed averaging in
//! the presence of a sparse cut* (Narayanan, PODC 2008): a graph `G = (V, E)`
//! where every edge carries an independent rate-1 Poisson clock; whenever the
//! clock of edge `e = (v, w)` ticks, an algorithm updates the values held by
//! the endpoints (and possibly consults bounded local state).  "True" time
//! `T` is continuous; the number of ticks of any edge by time `T` is Poisson
//! with mean `T`.
//!
//! The crate separates six concerns:
//!
//! * [`values::NodeValues`] — the state vector `x(t)` with the variance /
//!   mean / per-block accounting the paper's Definition 1 is phrased in,
//!   backed by an O(1) incremental [`moments::MomentTracker`] so per-tick
//!   Definition 1 stopping costs constant work per event.
//! * [`clock`] — two equivalent samplers of the edge-tick point process: a
//!   per-edge exponential clock queue and a global rate-`|E|` process with
//!   uniform edge selection.
//! * [`handler::EdgeTickHandler`] — the algorithm interface; concrete
//!   algorithms (vanilla gossip, the convex class `C`, the paper's
//!   non-convex Algorithm A, …) live in the `gossip-core` crate.
//! * [`fault::FaultPlan`] — deterministic fault environments (seeded edge
//!   up/down schedules, node pauses, per-contact message drops) injected
//!   ahead of the handler, so churn and loss scenarios stay bit-exactly
//!   reproducible.
//! * [`adversary::AdversaryPlan`] — deterministic Byzantine environments
//!   (biased/extreme/stale reporters, censoring bridges) classified before
//!   each pairwise update on their own RNG stream, with exact
//!   honest-subset falsification accounting for the drift oracles.
//! * [`engine::AsyncSimulator`] and [`sync::SyncSimulator`] — drivers that
//!   advance the clocks, invoke the handler, record [`trace::Trace`]s and
//!   evaluate [`stopping::StoppingRule`]s.
//! * [`flat`] — the million-node tier: the packed struct-of-arrays layout
//!   behind [`engine::MemoryLayout::FlatSoA`] (bit-identical to the legacy
//!   loop) and the opt-in f32 value tier pinned by an a-priori error-bound
//!   oracle.
//!
//! # Examples
//!
//! Run vanilla-style pairwise averaging (implemented inline here as a
//! closure-free handler) on a triangle until the variance collapses:
//!
//! ```
//! use gossip_graph::generators::complete;
//! use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
//! use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
//! use gossip_sim::stopping::StoppingRule;
//! use gossip_sim::values::NodeValues;
//!
//! struct Vanilla;
//! impl EdgeTickHandler for Vanilla {
//!     fn on_edge_tick(
//!         &mut self,
//!         values: &mut NodeValues,
//!         ctx: &EdgeTickContext<'_>,
//!     ) {
//!         let (u, v) = ctx.edge.endpoints();
//!         values.average_pair(u, v);
//!     }
//! }
//!
//! let graph = complete(4)?;
//! let initial = NodeValues::from_values(vec![1.0, 0.0, 0.0, 0.0])?;
//! let config = SimulationConfig::new(7)
//!     .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_time(1_000.0));
//! let mut simulator = AsyncSimulator::new(&graph, initial, Vanilla, config)?;
//! let outcome = simulator.run()?;
//! assert!(outcome.final_values.variance() < 1e-6 * outcome.initial_variance);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checkpoint;
pub mod clock;
pub mod engine;
pub mod fault;
pub mod flat;
pub mod handler;
pub mod moments;
mod shard;
pub mod stopping;
pub mod sync;
pub mod trace;
pub mod values;

pub use adversary::{AdversaryBehavior, AdversaryPlan, AdversaryStats, CensoringBridge};
pub use checkpoint::EngineCheckpoint;
pub use clock::ClockScratch;
pub use engine::{AsyncSimulator, MemoryLayout, SimulationConfig, SimulationOutcome, VarianceMode};
pub use fault::{FaultPlan, FaultStats};
pub use flat::{run_f32, F32Oracle, F32Outcome, FlatTopology};
pub use handler::{EdgeTickContext, EdgeTickHandler, PairwiseKernel};
pub use moments::MomentTracker;
pub use stopping::StoppingRule;
pub use trace::{Trace, TraceConfig, TracePoint};
pub use values::NodeValues;

use std::error::Error;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The state vector length does not match the graph's node count.
    StateSizeMismatch {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Length of the supplied state vector.
        values: usize,
    },
    /// The graph has no edges, so the Poisson edge-clock process is empty.
    NoEdges,
    /// A non-finite value (NaN or ±∞) was supplied or produced.
    NonFiniteValue {
        /// Index of the offending node.
        node: usize,
    },
    /// The simulation hit its safety cap on the number of events without any
    /// stopping rule firing.
    EventBudgetExhausted {
        /// The number of events processed before giving up.
        events: u64,
    },
    /// An invalid configuration parameter was supplied.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The run exceeded its configured wall-clock deadline
    /// ([`engine::SimulationConfig::wall_clock_deadline`]) and was cut off.
    /// The partial state stays observable on the simulator, so supervisors
    /// can journal the run as censored instead of discarding it.
    DeadlineExceeded {
        /// The number of ticks processed when the deadline fired.
        ticks: u64,
    },
    /// A checkpoint blob failed structural validation, or did not match the
    /// run it was offered to (wrong seed, graph shape, clock model, or
    /// fault/adversary plan shape) — see [`checkpoint::EngineCheckpoint`].
    CheckpointInvalid {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A reduced-precision run finished but violated its a-priori error
    /// bound (see [`flat::F32Oracle`]); the result must be discarded, never
    /// journaled.
    PrecisionOracle {
        /// Which bound was violated, with the measured and allowed values.
        reason: String,
    },
    /// An underlying graph operation failed.
    Graph(gossip_graph::GraphError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StateSizeMismatch { nodes, values } => write!(
                f,
                "state vector has {values} entries but the graph has {nodes} nodes"
            ),
            SimError::NoEdges => write!(f, "graph has no edges to attach Poisson clocks to"),
            SimError::NonFiniteValue { node } => {
                write!(f, "non-finite value at node {node}")
            }
            SimError::EventBudgetExhausted { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::DeadlineExceeded { ticks } => {
                write!(f, "wall-clock deadline exceeded after {ticks} ticks")
            }
            SimError::CheckpointInvalid { reason } => {
                write!(f, "invalid checkpoint: {reason}")
            }
            SimError::PrecisionOracle { reason } => {
                write!(f, "precision oracle violated: {reason}")
            }
            SimError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gossip_graph::GraphError> for SimError {
    fn from(e: gossip_graph::GraphError) -> Self {
        SimError::Graph(e)
    }
}

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty_and_pairwise_distinct() {
        // One representative of every variant: each must render a non-empty
        // message, and no two variants may render identically (a supervisor
        // journaling by message must be able to tell them apart).
        let errors = [
            SimError::StateSizeMismatch {
                nodes: 3,
                values: 4,
            },
            SimError::NoEdges,
            SimError::NonFiniteValue { node: 2 },
            SimError::EventBudgetExhausted { events: 10 },
            SimError::InvalidConfig {
                reason: "bad".into(),
            },
            SimError::DeadlineExceeded { ticks: 12 },
            SimError::CheckpointInvalid {
                reason: "bad".into(),
            },
            SimError::PrecisionOracle {
                reason: "drift over bound".into(),
            },
            SimError::Graph(gossip_graph::GraphError::Disconnected),
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty(), "{:?} renders empty", errors[i]);
            for (j, b) in rendered.iter().enumerate() {
                if i != j {
                    assert_ne!(
                        a, b,
                        "{:?} and {:?} render identically",
                        errors[i], errors[j]
                    );
                }
            }
        }
    }

    #[test]
    fn error_source_chain() {
        let e = SimError::Graph(gossip_graph::GraphError::Disconnected);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SimError::NoEdges).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
