//! The state vector `x(t)` held by the nodes, with the accounting used by the
//! paper: overall mean and variance (Definition 1), per-block means `y(t)` and
//! `z(t)` (Section 2), and the decomposition `var X = µ² + σ²` used in the
//! analysis of Algorithm A (Section 3).
//!
//! Alongside the values themselves the state carries a [`MomentTracker`]: the
//! running `Σ xᵢ` and `Σ xᵢ²`, updated in O(1) by every mutation ([`set`],
//! and hence [`average_pair`], [`convex_pair_update`] and
//! [`transfer_pair_update`], which each touch exactly two entries).  That is
//! what makes per-tick Definition 1 stopping affordable at any `n`; see
//! [`crate::moments`] for the drift/refresh contract.
//!
//! [`set`]: NodeValues::set
//! [`average_pair`]: NodeValues::average_pair
//! [`convex_pair_update`]: NodeValues::convex_pair_update
//! [`transfer_pair_update`]: NodeValues::transfer_pair_update

use crate::moments::MomentTracker;
use crate::{Result, SimError};
use gossip_graph::{NodeId, Partition};
use gossip_linalg::Vector;
use serde::{Deserialize, Serialize};

/// The values held by the nodes at a moment in (simulated) time.
///
/// # Examples
///
/// ```
/// use gossip_sim::values::NodeValues;
/// use gossip_graph::NodeId;
///
/// let mut values = NodeValues::from_values(vec![4.0, 0.0, 2.0])?;
/// assert!((values.mean() - 2.0).abs() < 1e-12);
/// values.average_pair(NodeId(0), NodeId(1));
/// assert_eq!(values.get(NodeId(0)), 2.0);
/// assert_eq!(values.get(NodeId(1)), 2.0);
/// // The sum (and hence the mean) is conserved by pairwise averaging.
/// assert!((values.mean() - 2.0).abs() < 1e-12);
/// # Ok::<(), gossip_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeValues {
    values: Vector,
    moments: MomentTracker,
}

/// Two states are equal when they hold the same node values; the moment
/// tracker is **intentionally excluded**: it is derived state (identical
/// update histories produce identical trackers, but a freshly constructed
/// copy of an evolved state is still the *same* state, even though the
/// evolved tracker carries float drift the fresh one does not).
///
/// In debug builds, equality additionally asserts the contract that makes
/// the exclusion sound: rebuilding both trackers from the (equal) values
/// must produce bit-identical moments — i.e. the only way two equal states
/// can disagree is through pre-refresh drift, which [`refresh_moments`]
/// reconciles.
///
/// [`refresh_moments`]: NodeValues::refresh_moments
impl PartialEq for NodeValues {
    fn eq(&self, other: &Self) -> bool {
        let equal = self.values == other.values;
        #[cfg(debug_assertions)]
        if equal {
            let a = MomentTracker::from_slice(self.values.as_slice());
            let b = MomentTracker::from_slice(other.values.as_slice());
            debug_assert!(
                a.sum().to_bits() == b.sum().to_bits()
                    && a.variance().to_bits() == b.variance().to_bits(),
                "equal values must rebuild bit-identical moment trackers"
            );
        }
        equal
    }
}

impl NodeValues {
    fn from_vector_unchecked(values: Vector) -> Self {
        let moments = MomentTracker::from_slice(values.as_slice());
        NodeValues { values, moments }
    }

    /// Creates a state where every one of the `n` nodes holds `value`.
    pub fn constant(n: usize, value: f64) -> Self {
        Self::from_vector_unchecked(Vector::constant(n, value))
    }

    /// Creates a state from explicit per-node values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteValue`] if any entry is NaN or infinite.
    pub fn from_values(values: Vec<f64>) -> Result<Self> {
        if let Some(node) = values.iter().position(|v| !v.is_finite()) {
            return Err(SimError::NonFiniteValue { node });
        }
        Ok(Self::from_vector_unchecked(Vector::from(values)))
    }

    /// Creates a state from a [`Vector`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteValue`] if any entry is NaN or infinite.
    pub fn from_vector(values: Vector) -> Result<Self> {
        if let Some(node) = values.iter().position(|v| !v.is_finite()) {
            return Err(SimError::NonFiniteValue { node });
        }
        Ok(Self::from_vector_unchecked(values))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value held by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn get(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Overwrites the value held by `node`, maintaining the running moments
    /// in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, value: f64) {
        let old = self.values[node.index()];
        self.values[node.index()] = value;
        self.moments.record_update(old, value);
    }

    /// Borrows the underlying values as a slice (node `i` at position `i`).
    pub fn as_slice(&self) -> &[f64] {
        self.values.as_slice()
    }

    /// Borrows the underlying [`Vector`].
    pub fn as_vector(&self) -> &Vector {
        &self.values
    }

    /// Consumes the state and returns the underlying [`Vector`].
    pub fn into_vector(self) -> Vector {
        self.values
    }

    /// Sum of all values (the conserved "mass" of linear averaging).
    pub fn sum(&self) -> f64 {
        self.values.sum()
    }

    /// The average `x_av` of all values.
    pub fn mean(&self) -> f64 {
        self.values.mean()
    }

    /// The paper's `var X(t) = Σᵢ (xᵢ − x_av)² / |V|`, computed exactly with
    /// a centered O(n) pass.  Hot loops should use
    /// [`Self::incremental_variance`] instead.
    pub fn variance(&self) -> f64 {
        self.values.variance()
    }

    /// The running moment tracker.
    pub fn moments(&self) -> &MomentTracker {
        &self.moments
    }

    /// O(1) mean from the running moments.
    pub fn incremental_mean(&self) -> f64 {
        self.moments.mean()
    }

    /// O(1) variance from the running moments (clamped at zero; see
    /// [`MomentTracker::variance`] for the drift and NaN contract).
    pub fn incremental_variance(&self) -> f64 {
        self.moments.variance()
    }

    /// `true` if the running moments are finite — the O(1) stand-in for
    /// [`Self::check_finite`] on the hot path (a NaN or infinite node value
    /// poisons at least one running sum).
    pub fn moments_finite(&self) -> bool {
        self.moments.is_finite()
    }

    /// `true` when the state's mean has drifted far enough from the moment
    /// tracker's shift that [`Self::incremental_variance`] is losing digits
    /// to cancellation and an exact [`Self::refresh_moments`] is due (see
    /// [`MomentTracker::needs_recenter`]; never fires for sum-conserving
    /// pairwise updates).
    pub fn moments_need_recenter(&self) -> bool {
        self.moments.needs_recenter()
    }

    /// Rebuilds the running moments with an exact O(n) pass, bounding the
    /// float drift accumulated by the O(1) deltas.  The simulation engine
    /// calls this on the deterministic schedule
    /// `SimulationConfig::moment_refresh_every_ticks`.
    pub fn refresh_moments(&mut self) {
        self.moments.refresh(self.values.as_slice());
    }

    /// Largest absolute deviation from the mean.
    pub fn max_deviation(&self) -> f64 {
        let mean = self.mean();
        self.values
            .iter()
            .fold(0.0_f64, |acc, &x| acc.max((x - mean).abs()))
    }

    /// Minimum value held by any node.
    pub fn min(&self) -> Option<f64> {
        self.values.min()
    }

    /// Maximum value held by any node.
    pub fn max(&self) -> Option<f64> {
        self.values.max()
    }

    /// Mean of the values held by the nodes in `block` of `partition`
    /// (the paper's `y(t)` and `z(t)` in Section 2, `µ₁(t)`/`µ₂(t)` in
    /// Section 3).
    ///
    /// # Panics
    ///
    /// Panics if the partition refers to nodes outside this state.
    pub fn block_mean(&self, partition: &Partition, block: gossip_graph::partition::Block) -> f64 {
        let nodes = partition.block(block);
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().map(|&v| self.get(v)).sum::<f64>() / nodes.len() as f64
    }

    /// The paper's `µ(t) = |µ₁(t)| + |µ₂(t)|` for a centered state
    /// (Section 3).  Callers analysing Algorithm A subtract the global mean
    /// first, as the paper does.
    pub fn block_mean_abs_sum(&self, partition: &Partition) -> f64 {
        self.block_mean(partition, gossip_graph::partition::Block::One)
            .abs()
            + self
                .block_mean(partition, gossip_graph::partition::Block::Two)
                .abs()
    }

    /// The paper's within-block deviation
    /// `σ(t) = sqrt( (Σ_{V₁}(xᵢ−µ₁)² + Σ_{V₂}(xᵢ−µ₂)²) / n )` (Section 3).
    pub fn within_block_sigma(&self, partition: &Partition) -> f64 {
        let n = self.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        for block in [
            gossip_graph::partition::Block::One,
            gossip_graph::partition::Block::Two,
        ] {
            let mu = self.block_mean(partition, block);
            for &v in partition.block(block) {
                let d = self.get(v) - mu;
                total += d * d;
            }
        }
        (total / n).sqrt()
    }

    /// Returns a copy with the global mean subtracted from every node, which
    /// is how the paper reduces the analysis of linear algorithms to the case
    /// `x_av = 0`.
    pub fn centered(&self) -> NodeValues {
        Self::from_vector_unchecked(self.values.centered())
    }

    /// Replaces the values at `u` and `v` by their arithmetic mean — the
    /// "vanilla" update.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn average_pair(&mut self, u: NodeId, v: NodeId) {
        let avg = 0.5 * (self.get(u) + self.get(v));
        self.set(u, avg);
        self.set(v, avg);
    }

    /// Applies the general convex pairwise update of the paper's class `C`:
    ///
    /// * `x_u ← α·x_u + (1−α)·x_v`
    /// * `x_v ← α·x_v + (1−α)·x_u(old)`
    ///
    /// with `α ∈ [0, 1]`.  `α = 1/2` recovers [`Self::average_pair`]; note the
    /// update uses the *old* values on both lines, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `α ∉ [0, 1]`.
    pub fn convex_pair_update(&mut self, u: NodeId, v: NodeId, alpha: f64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "convex update requires alpha in [0, 1], got {alpha}"
        );
        let xu = self.get(u);
        let xv = self.get(v);
        self.set(u, alpha * xu + (1.0 - alpha) * xv);
        self.set(v, alpha * xv + (1.0 - alpha) * xu);
    }

    /// Applies the paper's non-convex mass-transfer update at the designated
    /// cut edge `(u, v)` with coefficient `gamma` (the paper uses
    /// `gamma = n₁`):
    ///
    /// * `x_u ← x_u + gamma·(x_v − x_u)`
    /// * `x_v ← x_v − gamma·(x_v − x_u)`
    ///
    /// The sum `x_u + x_v` is conserved for every `gamma`; convexity holds
    /// only for `gamma ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn transfer_pair_update(&mut self, u: NodeId, v: NodeId, gamma: f64) {
        let xu = self.get(u);
        let xv = self.get(v);
        let delta = gamma * (xv - xu);
        self.set(u, xu + delta);
        self.set(v, xv - delta);
    }

    /// Overwrites this state with `source` — values *and* moment tracker —
    /// without reallocating.  The result is bitwise identical to
    /// `source.clone()`; the point is buffer reuse: a fan-out that replays
    /// the same initial state across many runs (the averaging-time
    /// estimator) copies into its per-worker buffer instead of allocating a
    /// fresh vector per derived seed.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different lengths.
    pub fn copy_from(&mut self, source: &NodeValues) {
        assert_eq!(self.len(), source.len(), "copy_from requires equal lengths");
        self.values
            .as_mut_slice()
            .copy_from_slice(source.values.as_slice());
        self.moments = source.moments;
    }

    /// Crate-internal: splits the state into its raw value slice and the
    /// moment tracker so the flat struct-of-arrays engine can index values
    /// directly while keeping every mutation paired with the same
    /// `record_update` call [`Self::set`] would have made.  Callers own the
    /// invariant that every slice write is mirrored into the tracker.
    pub(crate) fn as_mut_parts(&mut self) -> (&mut [f64], &mut MomentTracker) {
        (self.values.as_mut_slice(), &mut self.moments)
    }

    /// Crate-internal: reassembles a state from checkpointed parts — the
    /// value vector plus the *exact* (possibly drifted) moment tracker it
    /// carried when captured.  No finiteness check and no tracker rebuild:
    /// a restored run must continue with bit-identical sums, drift and all.
    pub(crate) fn from_parts(values: Vector, moments: MomentTracker) -> Self {
        NodeValues { values, moments }
    }

    /// Crate-internal: overwrites the values from a raw slice and rebuilds
    /// the tracker with an exact pass, **without** a finiteness check — the
    /// sharded engine installs its (possibly poisoned) final state through
    /// this before deciding whether to surface an error, mirroring how the
    /// serial loop's state stays observable after a failed run.
    pub(crate) fn overwrite_from_slice(&mut self, values: &[f64]) {
        self.values.as_mut_slice().copy_from_slice(values);
        self.moments = MomentTracker::from_slice(values);
    }

    /// Checks that every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteValue`] identifying the first bad node.
    pub fn check_finite(&self) -> Result<()> {
        if let Some(node) = self.values.iter().position(|v| !v.is_finite()) {
            return Err(SimError::NonFiniteValue { node });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::dumbbell;
    use gossip_graph::partition::Block;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn constructors_and_accessors() {
        let v = NodeValues::constant(3, 2.5);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(NodeId(1)), 2.5);
        assert_eq!(v.as_slice(), &[2.5, 2.5, 2.5]);
        assert!(close(v.sum(), 7.5));
        assert!(close(v.variance(), 0.0));

        let w = NodeValues::from_values(vec![1.0, 2.0]).unwrap();
        assert_eq!(w.as_vector().len(), 2);
        assert_eq!(w.clone().into_vector().as_slice(), &[1.0, 2.0]);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(2.0));

        assert!(NodeValues::from_values(vec![1.0, f64::NAN]).is_err());
        assert!(NodeValues::from_vector(Vector::from(vec![f64::INFINITY])).is_err());
    }

    #[test]
    fn set_and_check_finite() {
        let mut v = NodeValues::constant(2, 0.0);
        v.set(NodeId(0), 5.0);
        assert_eq!(v.get(NodeId(0)), 5.0);
        assert!(v.check_finite().is_ok());
        v.set(NodeId(1), f64::NAN);
        assert!(matches!(
            v.check_finite(),
            Err(SimError::NonFiniteValue { node: 1 })
        ));
    }

    #[test]
    fn average_pair_conserves_sum_and_reduces_variance() {
        let mut v = NodeValues::from_values(vec![4.0, 0.0, 10.0]).unwrap();
        let sum = v.sum();
        let var = v.variance();
        v.average_pair(NodeId(0), NodeId(1));
        assert!(close(v.sum(), sum));
        assert!(v.variance() <= var + 1e-12);
        assert_eq!(v.get(NodeId(0)), 2.0);
        assert_eq!(v.get(NodeId(1)), 2.0);
    }

    #[test]
    fn convex_update_matches_definition() {
        let mut v = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        v.convex_pair_update(NodeId(0), NodeId(1), 0.75);
        assert!(close(v.get(NodeId(0)), 0.75 - 0.25));
        assert!(close(v.get(NodeId(1)), -0.75 + 0.25));
        // α = 1 is the identity.
        let mut w = NodeValues::from_values(vec![3.0, 7.0]).unwrap();
        w.convex_pair_update(NodeId(0), NodeId(1), 1.0);
        assert_eq!(w.as_slice(), &[3.0, 7.0]);
        // α = 1/2 is the vanilla average.
        let mut z = NodeValues::from_values(vec![3.0, 7.0]).unwrap();
        z.convex_pair_update(NodeId(0), NodeId(1), 0.5);
        assert_eq!(z.as_slice(), &[5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "alpha in [0, 1]")]
    fn convex_update_rejects_bad_alpha() {
        let mut v = NodeValues::constant(2, 0.0);
        v.convex_pair_update(NodeId(0), NodeId(1), 1.5);
    }

    #[test]
    fn transfer_update_conserves_sum_but_may_increase_variance() {
        let mut v = NodeValues::from_values(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let sum = v.sum();
        let var = v.variance();
        // gamma = 3 (non-convex) moves three units of mass.
        v.transfer_pair_update(NodeId(0), NodeId(1), 3.0);
        assert!(close(v.sum(), sum));
        assert!(close(v.get(NodeId(0)), 1.0 + 3.0 * (0.0 - 1.0)));
        assert!(close(v.get(NodeId(1)), 0.0 - 3.0 * (0.0 - 1.0)));
        // Short-term skew: the variance increased.
        assert!(v.variance() > var);
        // gamma = 1 swaps the two values.
        let mut w = NodeValues::from_values(vec![2.0, 5.0]).unwrap();
        w.transfer_pair_update(NodeId(0), NodeId(1), 1.0);
        assert_eq!(w.as_slice(), &[5.0, 2.0]);
    }

    #[test]
    fn block_means_on_dumbbell() {
        let (_, partition) = dumbbell(3).unwrap();
        // V1 = {0,1,2}, V2 = {3,4,5}.
        let v = NodeValues::from_values(vec![1.0, 1.0, 1.0, -2.0, -2.0, -2.0]).unwrap();
        assert!(close(v.block_mean(&partition, Block::One), 1.0));
        assert!(close(v.block_mean(&partition, Block::Two), -2.0));
        assert!(close(v.block_mean_abs_sum(&partition), 3.0));
        assert!(close(v.within_block_sigma(&partition), 0.0));
        // Adding within-block disagreement shows up in sigma but not the means.
        let w = NodeValues::from_values(vec![2.0, 0.0, 1.0, -2.0, -2.0, -2.0]).unwrap();
        assert!(close(w.block_mean(&partition, Block::One), 1.0));
        assert!(w.within_block_sigma(&partition) > 0.0);
    }

    #[test]
    fn centered_preserves_variance_and_zeroes_mean() {
        let v = NodeValues::from_values(vec![5.0, 3.0, -1.0]).unwrap();
        let c = v.centered();
        assert!(close(c.mean(), 0.0));
        assert!(close(c.variance(), v.variance()));
        assert!(close(v.max_deviation(), 10.0 / 3.0));
    }

    #[test]
    fn max_deviation_simple() {
        let v = NodeValues::from_values(vec![0.0, 0.0, 3.0]).unwrap();
        assert!(close(v.max_deviation(), 2.0));
    }

    #[test]
    fn moments_stay_in_sync_with_every_update_kind() {
        let mut v = NodeValues::from_values(vec![4.0, 0.0, 10.0, -2.0]).unwrap();
        assert!(close(v.incremental_mean(), v.mean()));
        assert!(close(v.incremental_variance(), v.variance()));
        v.average_pair(NodeId(0), NodeId(1));
        v.convex_pair_update(NodeId(1), NodeId(2), 0.7);
        v.transfer_pair_update(NodeId(2), NodeId(3), 3.0);
        v.set(NodeId(0), -5.5);
        assert!((v.incremental_mean() - v.mean()).abs() < 1e-12);
        assert!((v.incremental_variance() - v.variance()).abs() < 1e-10);
        assert!(v.moments_finite());
        // An exact refresh pins the moments back to the full-pass values.
        v.refresh_moments();
        assert_eq!(v.moments().refreshes(), 1);
        assert!((v.incremental_variance() - v.variance()).abs() < 1e-12);
    }

    #[test]
    fn moments_detect_non_finite_values_in_o1() {
        let mut v = NodeValues::constant(3, 1.0);
        assert!(v.moments_finite());
        v.set(NodeId(2), f64::NAN);
        assert!(!v.moments_finite());
        assert!(v.check_finite().is_err());
    }

    #[test]
    fn equality_ignores_tracker_history() {
        // Same values reached through different histories compare equal.
        let mut a = NodeValues::from_values(vec![1.0, 3.0]).unwrap();
        a.average_pair(NodeId(0), NodeId(1));
        let b = NodeValues::from_values(vec![2.0, 2.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn equality_excludes_drifted_trackers_and_refresh_reconciles_them() {
        // Regression test for the PartialEq contract: trackers are
        // *intentionally* excluded from equality.  Drive one state through
        // many O(1) updates so its tracker accumulates drift, then compare
        // against a freshly constructed copy of the same values.
        let mut evolved = NodeValues::from_values(vec![4.0, 0.0, 10.0, -2.0, 1.5]).unwrap();
        for step in 0..2000usize {
            let i = NodeId(step % 5);
            let j = NodeId((step + 1 + step % 3) % 5);
            if i != j {
                evolved.convex_pair_update(i, j, 0.25 + 0.5 * ((step % 7) as f64 / 7.0));
            }
        }
        let fresh = NodeValues::from_values(evolved.as_slice().to_vec()).unwrap();
        // Equal as states, even though the evolved tracker carries drift the
        // fresh one does not.
        assert_eq!(evolved, fresh);
        // After an exact refresh the trackers agree bitwise: both are now
        // the pure function of the (equal) values.
        let mut reconciled = evolved.clone();
        reconciled.refresh_moments();
        assert_eq!(
            reconciled.incremental_variance().to_bits(),
            fresh.incremental_variance().to_bits()
        );
        assert_eq!(
            reconciled.incremental_mean().to_bits(),
            fresh.incremental_mean().to_bits()
        );
    }

    proptest! {
        #[test]
        fn prop_pairwise_updates_conserve_sum(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..20),
            alpha in 0.0f64..1.0,
            gamma in -5.0f64..5.0,
            i in 0usize..20,
            j in 0usize..20,
        ) {
            let n = xs.len();
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let mut v = NodeValues::from_values(xs).unwrap();
            let sum = v.sum();
            v.convex_pair_update(NodeId(i), NodeId(j), alpha);
            prop_assert!((v.sum() - sum).abs() < 1e-7);
            v.transfer_pair_update(NodeId(i), NodeId(j), gamma);
            prop_assert!((v.sum() - sum).abs() < 1e-6);
            v.average_pair(NodeId(i), NodeId(j));
            prop_assert!((v.sum() - sum).abs() < 1e-6);
        }

        #[test]
        fn prop_convex_update_never_increases_variance(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..16),
            alpha in 0.0f64..1.0,
            i in 0usize..16,
            j in 0usize..16,
        ) {
            let n = xs.len();
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let mut v = NodeValues::from_values(xs).unwrap();
            let var = v.variance();
            v.convex_pair_update(NodeId(i), NodeId(j), alpha);
            prop_assert!(v.variance() <= var + 1e-9);
        }

        #[test]
        fn prop_incremental_moments_track_exact_recompute(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..16),
            alpha in 0.0f64..1.0,
            gamma in -3.0f64..3.0,
            i in 0usize..16,
            j in 0usize..16,
        ) {
            let n = xs.len();
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let mut v = NodeValues::from_values(xs).unwrap();
            v.convex_pair_update(NodeId(i), NodeId(j), alpha);
            v.transfer_pair_update(NodeId(i), NodeId(j), gamma);
            v.average_pair(NodeId(i), NodeId(j));
            prop_assert!((v.incremental_mean() - v.mean()).abs() < 1e-9);
            prop_assert!((v.incremental_variance() - v.variance()).abs() < 1e-7);
        }

        #[test]
        fn prop_convex_update_stays_in_range(
            xs in proptest::collection::vec(-10.0f64..10.0, 2..12),
            alpha in 0.0f64..1.0,
            i in 0usize..12,
            j in 0usize..12,
        ) {
            let n = xs.len();
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let mut v = NodeValues::from_values(xs.clone()).unwrap();
            let lo = v.min().unwrap();
            let hi = v.max().unwrap();
            v.convex_pair_update(NodeId(i), NodeId(j), alpha);
            prop_assert!(v.min().unwrap() >= lo - 1e-9);
            prop_assert!(v.max().unwrap() <= hi + 1e-9);
        }
    }
}
