//! Incremental first and second moments of the node state.
//!
//! Definition 1 stops a run when `var X(t) / var X(0)` crosses `1/e²`, but a
//! fresh variance pass is O(n) — which is why earlier revisions of the bench
//! harness only evaluated the stopping rule every `|E|/10` ticks and thereby
//! overshot every measured averaging time by up to the check interval.
//! [`MomentTracker`] removes that trade-off: it carries the running sum
//! `Σ xᵢ` and sum of squares `Σ xᵢ²`, each updated in O(1) whenever a node
//! value changes (pairwise averages, convex updates, and the non-convex
//! transfer all mutate exactly two entries), so the mean and variance are
//! available in O(1) at every tick.
//!
//! Floating-point deltas drift, so the tracker is paired with a
//! **deterministic periodic exact recompute**: the simulation engine calls
//! [`MomentTracker::refresh`] on a fixed tick schedule
//! (`SimulationConfig::moment_refresh_every_ticks`, default
//! `2¹⁶ = 65 536` ticks), which rebuilds both sums with a full O(n) pass and
//! thereby bounds the accumulated error between refreshes.  On unit-scale
//! states the drift over one window is far below `1e-9`, the margin the
//! differential-oracle suite pins (`tests/moment_differential.rs`).
//!
//! The sums are kept **shifted by the state's mean** (re-centred at every
//! exact pass): the naive uncentred `Σ xᵢ²/n − (Σ xᵢ/n)²` loses all digits
//! to cancellation when the values share a large common offset — an error
//! the clamp would then silently turn into false convergence — whereas
//! around the shift the residual sum stays near zero and the formula is
//! numerically benign.  Pairwise gossip updates conserve the sum, so the
//! shift chosen at construction remains valid between refreshes.

use serde::{Deserialize, Serialize};

/// Running (shifted) sum and sum-of-squares of a state vector, maintained in
/// O(1) per single-entry update.
///
/// # Examples
///
/// ```
/// use gossip_sim::moments::MomentTracker;
///
/// let mut tracker = MomentTracker::from_slice(&[4.0, 0.0, 2.0]);
/// assert!((tracker.mean() - 2.0).abs() < 1e-12);
/// // Replace the 4.0 entry by 1.0 in O(1).
/// tracker.record_update(4.0, 1.0);
/// assert!((tracker.mean() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MomentTracker {
    len: usize,
    /// The common offset subtracted from every value before summing; the
    /// state's mean as of the last exact pass.
    shift: f64,
    /// `Σ (xᵢ − shift)`.
    sum: f64,
    /// `Σ (xᵢ − shift)²`.
    sum_sq: f64,
    refreshes: u64,
}

impl MomentTracker {
    /// Builds the tracker with one exact O(n) pass over `values` (two
    /// sweeps: the mean for the shift, then the shifted sums).
    pub fn from_slice(values: &[f64]) -> Self {
        let (shift, sum, sum_sq) = exact_shifted_sums(values);
        MomentTracker {
            len: values.len(),
            shift,
            sum,
            sum_sq,
            refreshes: 0,
        }
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tracked vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The running sum `Σ xᵢ`, reconstructed from the shifted sum.
    pub fn sum(&self) -> f64 {
        self.shift * self.len as f64 + self.sum
    }

    /// The running sum of squares `Σ xᵢ²`, reconstructed from the shifted
    /// sums.  Beware: for large-offset states this reconstruction has the
    /// very cancellation the shifted representation exists to avoid — use
    /// [`Self::variance`] for anything convergence-related.
    pub fn sum_of_squares(&self) -> f64 {
        // Σ x² = Σ (d + s)² = Σ d² + 2·s·Σ d + n·s², with d = x − s.
        self.sum_sq + 2.0 * self.shift * self.sum + self.len as f64 * self.shift * self.shift
    }

    /// The mean `Σ xᵢ / n` in O(1); `0.0` for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.shift + self.sum / self.len as f64
        }
    }

    /// The population variance in O(1), computed around the shift:
    /// `Σ dᵢ²/n − (Σ dᵢ/n)²` with `dᵢ = xᵢ − shift` (shift-invariant, and
    /// numerically benign because the shift tracks the mean).
    ///
    /// Tiny *negative* results (possible through float drift between
    /// refreshes, or residual cancellation) are clamped to `0.0` so no
    /// stopping rule ever sees a negative variance or forms a NaN ratio from
    /// one.  Non-finite results are returned as-is — a NaN or ±∞ here means
    /// the state itself is poisoned or out of range, which the caller must
    /// surface rather than mask (`NaN.max(0.0)` would silently report `0.0`,
    /// i.e. false convergence).
    pub fn variance(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let centered_mean = self.sum / self.len as f64;
        let raw = self.sum_sq / self.len as f64 - centered_mean * centered_mean;
        if raw.is_finite() {
            raw.max(0.0)
        } else {
            raw
        }
    }

    /// Returns `true` if both running sums are finite.  A NaN or infinite
    /// node value makes at least one sum non-finite (NaN is sticky under the
    /// delta updates), so this is an O(1) stand-in for the O(n)
    /// `check_finite` pass on the hot path.  Finite values can also land
    /// here when their squared deviations overflow `f64` — callers decide
    /// (see the engine) whether that is an error or merely "not converged".
    pub fn is_finite(&self) -> bool {
        self.sum.is_finite() && self.sum_sq.is_finite()
    }

    /// Returns `true` when the state's mean has drifted so far from the
    /// shift that [`Self::variance`] is about to lose its digits to
    /// cancellation, and the caller should re-centre with an exact
    /// [`Self::refresh`].
    ///
    /// Pairwise gossip updates conserve the sum, so for every algorithm in
    /// this workspace the drifted-mean term stays at rounding-noise level
    /// and this never fires.  It exists for custom [`EdgeTickHandler`]s that
    /// re-baseline the state through the public `set` API: without the
    /// guard, a large post-construction offset would make `Σ dᵢ²/n − d̄²` a
    /// difference of two huge nearly-equal numbers whose clamped result
    /// could read as instant false convergence until the next scheduled
    /// refresh.  The `1e8` factor trips while the subtraction still has ~8
    /// good digits.
    ///
    /// [`EdgeTickHandler`]: ../handler/trait.EdgeTickHandler.html
    pub fn needs_recenter(&self) -> bool {
        if self.len == 0 {
            return false;
        }
        let drifted_mean = self.sum / self.len as f64;
        let raw = self.sum_sq / self.len as f64 - drifted_mean * drifted_mean;
        drifted_mean * drifted_mean > 1e8 * raw.abs().max(f64::MIN_POSITIVE)
    }

    /// Applies the O(1) delta for one entry changing from `old` to `new`.
    pub fn record_update(&mut self, old: f64, new: f64) {
        let d_old = old - self.shift;
        let d_new = new - self.shift;
        self.sum += d_new - d_old;
        self.sum_sq += d_new * d_new - d_old * d_old;
    }

    /// The current shift.  Crate-internal: the sharded engine accumulates
    /// per-lane update deltas relative to this shift and folds them in with
    /// [`Self::apply_delta`].
    pub(crate) fn shift(&self) -> f64 {
        self.shift
    }

    /// Adds pre-accumulated shifted deltas to the running sums.  The deltas
    /// must have been computed relative to [`Self::shift`] with the exact
    /// per-update arithmetic of [`Self::record_update`]; only the summation
    /// order may differ (which is what makes the sharded engine's merged
    /// lane partials a well-defined — though distinct — float schedule).
    pub(crate) fn apply_delta(&mut self, d_sum: f64, d_sum_sq: f64) {
        self.sum += d_sum;
        self.sum_sq += d_sum_sq;
    }

    /// Rebuilds both sums with an exact O(n) pass, re-centring the shift on
    /// the current mean (the scheduled drift bound), and counts the refresh.
    pub fn refresh(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), self.len, "tracker length must match");
        let (shift, sum, sum_sq) = exact_shifted_sums(values);
        self.shift = shift;
        self.sum = sum;
        self.sum_sq = sum_sq;
        self.refreshes += 1;
    }

    /// Number of exact refreshes performed since construction.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Crate-internal: the full raw state `(len, shift, sum, sum_sq,
    /// refreshes)` for checkpointing.  Paired with
    /// [`Self::from_raw_parts`], which reinstalls the *exact* drifted sums
    /// — a checkpointed tracker must resume bit-identically, which a
    /// rebuild-from-values pass would not (it loses the accumulated drift).
    pub(crate) fn to_raw_parts(self) -> (usize, f64, f64, f64, u64) {
        (self.len, self.shift, self.sum, self.sum_sq, self.refreshes)
    }

    /// Crate-internal: rebuilds a tracker from checkpointed raw state.  See
    /// [`Self::to_raw_parts`].
    pub(crate) fn from_raw_parts(
        len: usize,
        shift: f64,
        sum: f64,
        sum_sq: f64,
        refreshes: u64,
    ) -> Self {
        MomentTracker {
            len,
            shift,
            sum,
            sum_sq,
            refreshes,
        }
    }
}

fn exact_shifted_sums(values: &[f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let shift = values.iter().sum::<f64>() / values.len() as f64;
    let sum = values.iter().map(|x| x - shift).sum();
    let sum_sq = values.iter().map(|x| (x - shift) * (x - shift)).sum();
    (shift, sum, sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_matches_direct_formulas() {
        let xs = [4.0, 0.0, 2.0];
        let t = MomentTracker::from_slice(&xs);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.sum() - 6.0).abs() < 1e-12);
        assert!((t.sum_of_squares() - 20.0).abs() < 1e-12);
        assert!((t.mean() - 2.0).abs() < 1e-12);
        // var = 20/3 - 4 = 8/3.
        assert!((t.variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_degenerate_but_safe() {
        let t = MomentTracker::from_slice(&[]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert!(t.is_finite());
    }

    #[test]
    fn record_update_tracks_a_mirror_vector() {
        let mut xs = vec![1.0, -2.0, 0.5, 3.0, -0.25];
        let mut t = MomentTracker::from_slice(&xs);
        // A deterministic mutation sequence touching every index.
        for step in 0..1000usize {
            let i = (step * 7) % xs.len();
            let new = (step as f64 * 0.37).sin();
            t.record_update(xs[i], new);
            xs[i] = new;
        }
        let exact = MomentTracker::from_slice(&xs);
        assert!((t.sum() - exact.sum()).abs() < 1e-9);
        assert!((t.variance() - exact.variance()).abs() < 1e-9);
    }

    #[test]
    fn refresh_resets_drift_and_counts() {
        let xs = vec![0.1, 0.2, 0.3];
        let mut t = MomentTracker::from_slice(&xs);
        // Poison the running sums with artificial drift, then refresh.
        t.record_update(0.0, 1e-7);
        assert_eq!(t.refreshes(), 0);
        t.refresh(&xs);
        assert_eq!(t.refreshes(), 1);
        let exact = MomentTracker::from_slice(&xs);
        assert_eq!(t.sum().to_bits(), exact.sum().to_bits());
        assert_eq!(
            t.sum_of_squares().to_bits(),
            exact.sum_of_squares().to_bits()
        );
    }

    #[test]
    fn tiny_negative_variance_is_clamped_to_zero() {
        // Drive the running second moment slightly below n·mean² by hand:
        // constant vector, then a delta pair that cancels in `sum` but leaves
        // `sum_sq` a few ulps short.
        let mut t = MomentTracker::from_slice(&[1.0, 1.0, 1.0]);
        t.record_update(1.0, 1.0 + 1e-16);
        t.record_update(1.0 + 1e-16, 1.0);
        // Whatever the exact rounding, the result must never be negative.
        assert!(t.variance() >= 0.0);
        assert!(t.variance() < 1e-12);
    }

    #[test]
    fn large_offset_states_keep_full_relative_precision() {
        // 1e8 offset with a ~1e-4 spread: the uncentred Σx²/n − mean²
        // formula loses every digit here (absolute error ~ mean²·ε ≈ 2), and
        // its clamp would report variance 0 — false convergence.  The
        // shifted representation must stay within full relative precision.
        let xs: Vec<f64> = (0..100).map(|i| 1e8 + i as f64 * 1e-4).collect();
        let t = MomentTracker::from_slice(&xs);
        let exact = {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        assert!(exact > 1e-7, "test vector must have genuine spread");
        assert!((t.variance() - exact).abs() < 1e-6 * exact);
        // And O(1) updates on the offset state stay precise too.
        let mut t = t;
        let mut xs = xs;
        for step in 0..1000usize {
            let i = (step * 13) % xs.len();
            let new = 1e8 + (step as f64 * 0.29).sin() * 1e-4;
            t.record_update(xs[i], new);
            xs[i] = new;
        }
        let exact = {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        assert!((t.variance() - exact).abs() < 1e-6 * exact.max(1e-12));
        assert!((t.mean() - 1e8).abs() < 1.0);
    }

    #[test]
    fn post_construction_rebaseline_is_flagged_for_recentring() {
        // Shift chosen at construction (mean 0); a handler-style rebaseline
        // moves every entry to 1e8 + noise.  The stale shift makes the O(1)
        // variance cancellation-prone, which needs_recenter must flag — and
        // a refresh must clear.
        let n = 100usize;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.5).collect();
        let mut t = MomentTracker::from_slice(&xs);
        assert!(!t.needs_recenter());
        let moved: Vec<f64> = xs.iter().map(|x| 1e8 + x).collect();
        for (&old, &new) in xs.iter().zip(moved.iter()) {
            t.record_update(old, new);
        }
        assert!(t.needs_recenter(), "1e8 rebaseline must trip the guard");
        t.refresh(&moved);
        assert!(!t.needs_recenter());
        let exact_var = {
            let mean = moved.iter().sum::<f64>() / n as f64;
            moved.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
        };
        assert!((t.variance() - exact_var).abs() < 1e-6 * exact_var);
    }

    #[test]
    fn refresh_recentres_the_shift() {
        // Construct around mean 0, then move the whole state far away; the
        // refresh must adopt the new mean as its shift.
        let mut t = MomentTracker::from_slice(&[1.0, -1.0]);
        t.record_update(1.0, 1e9 + 1.0);
        t.record_update(-1.0, 1e9 - 1.0);
        t.refresh(&[1e9 + 1.0, 1e9 - 1.0]);
        assert!((t.mean() - 1e9).abs() < 1e-3);
        assert!((t.variance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_values_are_detected_and_not_masked() {
        let mut t = MomentTracker::from_slice(&[1.0, 2.0]);
        assert!(t.is_finite());
        t.record_update(1.0, f64::NAN);
        assert!(!t.is_finite());
        // The clamp must not turn a NaN variance into 0.0 (false
        // convergence); it propagates instead.
        assert!(t.variance().is_nan());
        // NaN is sticky: removing the entry again does not repair the sums…
        t.record_update(f64::NAN, 1.0);
        assert!(!t.is_finite());
        // …only an exact refresh does.
        t.refresh(&[1.0, 2.0]);
        assert!(t.is_finite());
    }

    #[test]
    fn infinities_poison_the_sums() {
        let mut t = MomentTracker::from_slice(&[0.0, 0.0]);
        t.record_update(0.0, f64::INFINITY);
        assert!(!t.is_finite());
    }
}
