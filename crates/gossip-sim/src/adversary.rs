//! Deterministic Byzantine adversaries: biased, extreme, stale, censoring.
//!
//! The fault layer ([`crate::fault`]) models *crash-style* failures — every
//! participant is honest, messages are merely lost.  This module models
//! *misbehaving* participants: an [`AdversaryPlan`] assigns per-node
//! behaviors (a [`BiasedInjector`] that reports its value offset by a fixed
//! bias, an [`ExtremeValueNode`] that reports `±M` outliers with a seeded
//! sign, a [`StaleReplayNode`] that replays its value from `k` ticks ago)
//! and per-edge [`CensoringBridge`]s that selectively suppress contacts
//! crossing a designated cut.  All randomness (censor coins, outlier signs)
//! comes from a dedicated ChaCha8 stream seeded by the plan — independent of
//! both the clock stream and the fault-drop stream — so an adversarial run
//! stays a pure function of `(config seed, fault plan, adversary plan)`.
//!
//! The engine consumes the plan through the crate-internal
//! [`AdversaryInjector`], which classifies every *delivered* contact
//! **before** the pairwise update runs: a censored contact skips the handler
//! atomically (exactly like a fault suppression), and a falsified contact
//! substitutes the adversary's report into the state for the duration of the
//! handler call, restoring fixed-state behaviors afterwards.  Because the
//! classification happens first, the injector can account the exact
//! falsification magnitude `|report − honest partner value|` per contact,
//! which is what makes the honest-subset mass-drift oracle
//! (`gossip_analysis::robust::honest_drift_bound`) exact: every convex
//! pairwise update moves the contacted honest value by at most that much.
//!
//! An empty plan ([`AdversaryPlan::none`]) draws nothing from its RNG,
//! censors nothing, and falsifies nothing, so a run configured with it is
//! **byte-identical** to a run with no plan at all — mirroring the
//! [`crate::fault::FaultPlan::none`] oracle pinned since PR 4;
//! `tests/adversary_differential.rs` pins the same contract for this layer.

use crate::{Result, SimError};
use gossip_graph::{Edge, EdgeId, Graph, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// What a misbehaving node does when one of its edges ticks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryBehavior {
    /// Reports its stored value offset by `bias`.  The node's stored value
    /// is frozen (it lies but never listens), so against vanilla gossip the
    /// network is dragged toward `initial + bias`.
    BiasedInjector {
        /// Additive report offset (finite, may be negative).
        bias: f64,
    },
    /// Reports `±magnitude`, the sign drawn per contact from the dedicated
    /// adversary stream.  The node's stored value is frozen.
    ExtremeValueNode {
        /// Absolute value of the reported outlier (finite, non-negative).
        magnitude: f64,
    },
    /// Reports the value it held `delay` global ticks ago (or its current
    /// value while the run is younger than the delay).  Unlike the two
    /// liars above, a stale node's stored value keeps evolving through the
    /// handler — it is honest-but-delayed, not frozen.
    StaleReplayNode {
        /// Replay age in global ticks.
        delay: u64,
    },
}

impl AdversaryBehavior {
    /// Short name used in stats breakdowns and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryBehavior::BiasedInjector { .. } => "biased",
            AdversaryBehavior::ExtremeValueNode { .. } => "extreme",
            AdversaryBehavior::StaleReplayNode { .. } => "stale",
        }
    }
}

/// One misbehaving node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryNode {
    /// The misbehaving node.
    pub node: NodeId,
    /// How it misbehaves.
    pub behavior: AdversaryBehavior,
}

/// A censoring attack on a designated cut: every contact on one of `edges`
/// is suppressed with probability `probability` (coin drawn from the
/// adversary stream), so cross-cut information flow is selectively starved
/// while intra-block gossip proceeds untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensoringBridge {
    /// The attacked (cut) edges.
    pub edges: Vec<EdgeId>,
    /// Per-contact suppression probability in `[0, 1]`.
    pub probability: f64,
}

/// A deterministic description of the adversarial environment of one run.
///
/// # Examples
///
/// ```
/// use gossip_sim::adversary::AdversaryPlan;
/// use gossip_graph::{EdgeId, NodeId};
///
/// let plan = AdversaryPlan::new(7)
///     .with_biased_injector(NodeId(0), 2.5)
///     .with_extreme_value_node(NodeId(3), 100.0)
///     .with_stale_replay_node(NodeId(5), 500)
///     .with_censoring_bridge(vec![EdgeId(0), EdgeId(9)], 0.8);
/// assert!(!plan.is_empty());
/// assert!(AdversaryPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Seed of the dedicated adversary ChaCha8 stream (independent of the
    /// clock sampler's stream and the fault layer's drop stream, so adding
    /// an adversary never perturbs the tick sequence or the drop pattern).
    pub seed: u64,
    /// The misbehaving nodes (at most one behavior per node).
    pub nodes: Vec<AdversaryNode>,
    /// The censoring attacks.
    pub censors: Vec<CensoringBridge>,
    /// When set, a falsified report whose distance from the honest
    /// partner's value exceeds this threshold increments
    /// [`AdversaryStats::flagged_reports`] — the detection counter robust
    /// aggregation variants key their outlier rejection to.
    pub detection_threshold: Option<f64>,
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl AdversaryPlan {
    /// Creates an empty plan with the given adversary-stream seed.
    pub fn new(seed: u64) -> Self {
        AdversaryPlan {
            seed,
            nodes: Vec::new(),
            censors: Vec::new(),
            detection_threshold: None,
        }
    }

    /// The canonical no-op plan: no node misbehaves, nothing is censored,
    /// and a run configured with it is byte-identical to an adversary-free
    /// run.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Makes `node` a [`AdversaryBehavior::BiasedInjector`] with the given
    /// bias.
    pub fn with_biased_injector(mut self, node: NodeId, bias: f64) -> Self {
        self.nodes.push(AdversaryNode {
            node,
            behavior: AdversaryBehavior::BiasedInjector { bias },
        });
        self
    }

    /// Makes `node` an [`AdversaryBehavior::ExtremeValueNode`] reporting
    /// `±magnitude`.
    pub fn with_extreme_value_node(mut self, node: NodeId, magnitude: f64) -> Self {
        self.nodes.push(AdversaryNode {
            node,
            behavior: AdversaryBehavior::ExtremeValueNode { magnitude },
        });
        self
    }

    /// Makes `node` a [`AdversaryBehavior::StaleReplayNode`] replaying its
    /// value from `delay` ticks ago.
    pub fn with_stale_replay_node(mut self, node: NodeId, delay: u64) -> Self {
        self.nodes.push(AdversaryNode {
            node,
            behavior: AdversaryBehavior::StaleReplayNode { delay },
        });
        self
    }

    /// Adds a [`CensoringBridge`] suppressing contacts on `edges` with the
    /// given probability.
    pub fn with_censoring_bridge(mut self, edges: Vec<EdgeId>, probability: f64) -> Self {
        self.censors.push(CensoringBridge { edges, probability });
        self
    }

    /// Sets the detection threshold (see [`Self::detection_threshold`]).
    pub fn with_detection_threshold(mut self, threshold: f64) -> Self {
        self.detection_threshold = Some(threshold);
        self
    }

    /// Returns `true` if the plan can never falsify, censor, or draw from
    /// its stream — the byte-identity precondition.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
            && self
                .censors
                .iter()
                .all(|c| c.edges.is_empty() || c.probability <= 0.0)
    }

    /// The misbehaving nodes, deduplicated and sorted — the honest-subset
    /// complement used by drift oracles.
    pub fn adversarial_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.nodes.iter().map(|a| a.node).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// The largest `|report − stored value|` any single contact of this plan
    /// can produce from a frozen-state behavior (`∞`-safe: empty plans give
    /// `0.0`).  Stale replays are excluded — their reach depends on the
    /// trajectory, which is why the runtime oracle accounts falsification
    /// exactly instead of relying on this a-priori figure alone.
    pub fn max_static_offset(&self) -> f64 {
        self.nodes
            .iter()
            .map(|a| match a.behavior {
                AdversaryBehavior::BiasedInjector { bias } => bias.abs(),
                AdversaryBehavior::ExtremeValueNode { magnitude } => magnitude.abs(),
                AdversaryBehavior::StaleReplayNode { .. } => 0.0,
            })
            .fold(0.0, f64::max)
    }

    /// Validates the plan against a graph: biases and magnitudes must be
    /// finite (magnitudes and probabilities non-negative, probabilities at
    /// most 1, the detection threshold finite and positive), every
    /// referenced node and edge must exist, and no node may carry two
    /// behaviors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for bad parameters and
    /// [`SimError::Graph`] for out-of-range identifiers.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        let mut seen: Vec<NodeId> = Vec::new();
        for adversary in &self.nodes {
            graph.check_node(adversary.node)?;
            if seen.contains(&adversary.node) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "node {} carries more than one adversary behavior",
                        adversary.node.index()
                    ),
                });
            }
            seen.push(adversary.node);
            match adversary.behavior {
                AdversaryBehavior::BiasedInjector { bias } => {
                    if !bias.is_finite() {
                        return Err(SimError::InvalidConfig {
                            reason: format!("biased injector bias must be finite, got {bias}"),
                        });
                    }
                }
                AdversaryBehavior::ExtremeValueNode { magnitude } => {
                    if !magnitude.is_finite() || magnitude < 0.0 {
                        return Err(SimError::InvalidConfig {
                            reason: format!(
                                "extreme-value magnitude must be finite and non-negative, \
                                 got {magnitude}"
                            ),
                        });
                    }
                }
                AdversaryBehavior::StaleReplayNode { .. } => {}
            }
        }
        for censor in &self.censors {
            if !(0.0..=1.0).contains(&censor.probability) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "censoring probability must be in [0, 1], got {}",
                        censor.probability
                    ),
                });
            }
            for &edge in &censor.edges {
                graph.edge(edge)?;
            }
        }
        if let Some(threshold) = self.detection_threshold {
            if !threshold.is_finite() || threshold <= 0.0 {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "detection threshold must be finite and positive, got {threshold}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Counters of what the adversary did during a run.  All zeros (with empty
/// report range) when the run had no adversary plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryStats {
    /// Delivered contacts with no adversarial involvement.
    pub honest_contacts: u64,
    /// Delivered contacts in which at least one endpoint's report was
    /// falsified.
    pub falsified_contacts: u64,
    /// Contacts suppressed by a censoring bridge.
    pub censored_contacts: u64,
    /// Falsified reports produced by biased injectors.
    pub biased_reports: u64,
    /// Falsified reports produced by extreme-value nodes.
    pub extreme_reports: u64,
    /// Falsified reports produced by stale-replay nodes.
    pub stale_reports: u64,
    /// Falsified reports (facing an honest partner) whose offset exceeded
    /// the plan's detection threshold.
    pub flagged_reports: u64,
    /// `Σ |report − honest partner value|` over all falsified reports that
    /// faced an honest partner — the exact per-contact budget of the
    /// honest-subset mass-drift oracle for conserving pairwise updates.
    pub falsification_l1: f64,
    /// Largest single `|report − honest partner value|`.
    pub max_falsification: f64,
    /// Smallest report ever injected (`+∞` when none).
    pub report_min: f64,
    /// Largest report ever injected (`−∞` when none).
    pub report_max: f64,
}

impl Default for AdversaryStats {
    fn default() -> Self {
        AdversaryStats {
            honest_contacts: 0,
            falsified_contacts: 0,
            censored_contacts: 0,
            biased_reports: 0,
            extreme_reports: 0,
            stale_reports: 0,
            flagged_reports: 0,
            falsification_l1: 0.0,
            max_falsification: 0.0,
            report_min: f64::INFINITY,
            report_max: f64::NEG_INFINITY,
        }
    }
}

impl AdversaryStats {
    /// Total delivered-or-censored contacts classified by the injector.
    /// When an adversary plan is configured this equals the fault layer's
    /// delivered count: every contact that survives crash-style faults is
    /// classified exactly once here.
    pub fn total_classified(&self) -> u64 {
        self.honest_contacts + self.falsified_contacts + self.censored_contacts
    }

    /// Total falsified reports of any behavior (one contact can contribute
    /// two when both endpoints misbehave).
    pub fn total_reports(&self) -> u64 {
        self.biased_reports + self.extreme_reports + self.stale_reports
    }
}

/// One falsified endpoint of a contact: the value the handler must see, and
/// whether the endpoint's stored value is restored after the update
/// (frozen-state liars restore; stale-replay nodes keep evolving).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalsifiedReport {
    /// The reported (substituted) value.
    pub value: f64,
    /// Restore the endpoint's pre-contact stored value after the handler.
    pub restore: bool,
}

/// The falsified endpoints of one delivered contact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FalsifiedContact {
    /// Report of the edge's `u` endpoint, if adversarial.
    pub u: Option<FalsifiedReport>,
    /// Report of the edge's `v` endpoint, if adversarial.
    pub v: Option<FalsifiedReport>,
}

/// What the adversary decided about one delivered contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryAction {
    /// No adversarial involvement: run the handler as usual.
    Honest,
    /// A censoring bridge suppressed the contact: skip the handler
    /// atomically.
    Censored,
    /// At least one endpoint reports a falsified value: substitute, run the
    /// handler, then restore the frozen-state endpoints.
    Falsified(FalsifiedContact),
}

/// Per-node compiled behavior state.
#[derive(Debug, Clone)]
enum Compiled {
    Biased {
        bias: f64,
    },
    Extreme {
        magnitude: f64,
    },
    Stale {
        delay: u64,
        /// `(tick, stored value)` at each of this node's past contacts,
        /// oldest first; pruned to the newest entry at least `delay` old.
        history: VecDeque<(u64, f64)>,
    },
}

/// Runtime state compiled from an [`AdversaryPlan`]: per-node behaviors, the
/// censored-edge index, and the dedicated adversary stream.  Owned by the
/// engine.
#[derive(Debug, Clone)]
pub struct AdversaryInjector {
    rng: ChaCha8Rng,
    /// Behavior per node index (`None` for honest nodes).
    behaviors: Vec<Option<Compiled>>,
    /// Suppression probability per censored edge index (max over bridges).
    censored_edges: BTreeMap<usize, f64>,
    detection_threshold: Option<f64>,
    stats: AdversaryStats,
}

impl AdversaryInjector {
    /// Compiles a plan for a graph.
    ///
    /// # Errors
    ///
    /// Propagates [`AdversaryPlan::validate`] failures.
    pub fn new(plan: &AdversaryPlan, graph: &Graph) -> Result<Self> {
        plan.validate(graph)?;
        let mut behaviors: Vec<Option<Compiled>> = vec![None; graph.node_count()];
        for adversary in &plan.nodes {
            behaviors[adversary.node.index()] = Some(match adversary.behavior {
                AdversaryBehavior::BiasedInjector { bias } => Compiled::Biased { bias },
                AdversaryBehavior::ExtremeValueNode { magnitude } => {
                    Compiled::Extreme { magnitude }
                }
                AdversaryBehavior::StaleReplayNode { delay } => Compiled::Stale {
                    delay,
                    history: VecDeque::new(),
                },
            });
        }
        let mut censored_edges: BTreeMap<usize, f64> = BTreeMap::new();
        for censor in &plan.censors {
            if censor.probability <= 0.0 {
                continue;
            }
            for &edge in &censor.edges {
                let entry = censored_edges.entry(edge.index()).or_insert(0.0);
                *entry = entry.max(censor.probability);
            }
        }
        Ok(AdversaryInjector {
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            behaviors,
            censored_edges,
            detection_threshold: plan.detection_threshold,
            stats: AdversaryStats::default(),
        })
    }

    /// Returns `true` if this contact can involve the adversary at all —
    /// the sharded engine's fast path batches contacts for which this is
    /// `false` without consulting the injector (pair with
    /// [`Self::note_honest`] to keep the counters exact).
    pub fn touches(&self, edge_id: EdgeId, edge: Edge) -> bool {
        if self.censored_edges.contains_key(&edge_id.index()) {
            return true;
        }
        let (u, v) = edge.endpoints();
        self.behaviors[u.index()].is_some() || self.behaviors[v.index()].is_some()
    }

    /// Counts a delivered contact that was classified honest without going
    /// through [`Self::classify`] (sharded fast path).
    pub fn note_honest(&mut self) {
        self.stats.honest_contacts += 1;
    }

    /// Classifies the delivered contact at `tick` on `edge`, given the
    /// endpoints' current stored values, updating the counters.  The
    /// adversary stream is drawn from only for censor coins and extreme
    /// signs, so an empty plan consumes no randomness at all.  Draw order is
    /// fixed (censor coin, then `u`'s report, then `v`'s), keeping the
    /// stream deterministic.
    pub fn classify(
        &mut self,
        edge_id: EdgeId,
        edge: Edge,
        tick: u64,
        value_u: f64,
        value_v: f64,
    ) -> AdversaryAction {
        if let Some(&probability) = self.censored_edges.get(&edge_id.index()) {
            if self.rng.gen::<f64>() < probability {
                self.stats.censored_contacts += 1;
                return AdversaryAction::Censored;
            }
        }
        let (u, v) = edge.endpoints();
        let report_u = self.report_for(u.index(), tick, value_u);
        let report_v = self.report_for(v.index(), tick, value_v);
        if report_u.is_none() && report_v.is_none() {
            self.stats.honest_contacts += 1;
            return AdversaryAction::Honest;
        }
        self.stats.falsified_contacts += 1;
        if let Some(report) = report_u {
            self.note_report(report.value, report_v.is_none().then_some(value_v));
        }
        if let Some(report) = report_v {
            self.note_report(report.value, report_u.is_none().then_some(value_u));
        }
        AdversaryAction::Falsified(FalsifiedContact {
            u: report_u,
            v: report_v,
        })
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> AdversaryStats {
        self.stats
    }

    /// Crate-internal: captures the mutable state for a checkpoint.  The
    /// compiled behaviors and censor index are pure functions of the plan
    /// and are recompiled on restore; what evolves is the stream position,
    /// the counters, and the stale-replay histories.
    pub(crate) fn checkpoint_state(&self) -> AdversaryInjectorState {
        let mut stale_histories = Vec::new();
        for (node, behavior) in self.behaviors.iter().enumerate() {
            if let Some(Compiled::Stale { history, .. }) = behavior {
                stale_histories.push((node, history.iter().copied().collect()));
            }
        }
        AdversaryInjectorState {
            rng_word_pos: self.rng.get_word_pos(),
            stats: self.stats,
            stale_histories,
        }
    }

    /// Crate-internal: reinstalls checkpointed mutable state into a freshly
    /// compiled injector (same plan, same graph).
    pub(crate) fn restore_state(&mut self, state: &AdversaryInjectorState) {
        self.rng.set_word_pos(state.rng_word_pos);
        self.stats = state.stats;
        for (node, history) in &state.stale_histories {
            if let Some(Some(Compiled::Stale { history: live, .. })) = self.behaviors.get_mut(*node)
            {
                *live = history.iter().copied().collect();
            }
        }
    }

    fn report_for(&mut self, node: usize, tick: u64, current: f64) -> Option<FalsifiedReport> {
        match self.behaviors[node].as_mut()? {
            Compiled::Biased { bias } => {
                self.stats.biased_reports += 1;
                Some(FalsifiedReport {
                    value: current + *bias,
                    restore: true,
                })
            }
            Compiled::Extreme { magnitude } => {
                let magnitude = *magnitude;
                self.stats.extreme_reports += 1;
                let sign = if self.rng.gen::<f64>() < 0.5 {
                    -1.0
                } else {
                    1.0
                };
                Some(FalsifiedReport {
                    value: sign * magnitude,
                    restore: true,
                })
            }
            Compiled::Stale { delay, history } => {
                self.stats.stale_reports += 1;
                history.push_back((tick, current));
                // Keep the front at the newest entry that is at least
                // `delay` old; report it if one exists, else behave honestly
                // (the run is younger than the replay age).
                while history.len() >= 2 && history[1].0.saturating_add(*delay) <= tick {
                    history.pop_front();
                }
                let front = history[0];
                let value = if front.0.saturating_add(*delay) <= tick {
                    front.1
                } else {
                    current
                };
                Some(FalsifiedReport {
                    value,
                    restore: false,
                })
            }
        }
    }

    fn note_report(&mut self, report: f64, honest_partner: Option<f64>) {
        self.stats.report_min = self.stats.report_min.min(report);
        self.stats.report_max = self.stats.report_max.max(report);
        if let Some(partner) = honest_partner {
            let offset = (report - partner).abs();
            self.stats.falsification_l1 += offset;
            self.stats.max_falsification = self.stats.max_falsification.max(offset);
            if let Some(threshold) = self.detection_threshold {
                if offset > threshold {
                    self.stats.flagged_reports += 1;
                }
            }
        }
    }
}

/// Checkpointed mutable state of an [`AdversaryInjector`] (crate-internal;
/// serialized by `crate::checkpoint`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AdversaryInjectorState {
    /// Keystream position of the adversary RNG.
    pub(crate) rng_word_pos: u128,
    /// Counters accumulated up to the checkpoint.
    pub(crate) stats: AdversaryStats,
    /// `(node index, (tick, stored value) history)` per stale-replay node.
    pub(crate) stale_histories: Vec<(usize, Vec<(u64, f64)>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, path};

    #[test]
    fn plan_builders_and_emptiness() {
        assert!(AdversaryPlan::none().is_empty());
        assert!(AdversaryPlan::default().is_empty());
        // Zero-probability or edgeless censors do not make a plan non-empty.
        let degenerate = AdversaryPlan::new(1)
            .with_censoring_bridge(vec![], 1.0)
            .with_censoring_bridge(vec![EdgeId(0)], 0.0);
        assert!(degenerate.is_empty());
        let plan = AdversaryPlan::new(1)
            .with_biased_injector(NodeId(2), 1.0)
            .with_extreme_value_node(NodeId(0), 9.0)
            .with_stale_replay_node(NodeId(2), 10);
        assert!(!plan.is_empty());
        assert_eq!(plan.adversarial_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(plan.max_static_offset(), 9.0);
        assert!(!AdversaryPlan::new(0)
            .with_censoring_bridge(vec![EdgeId(1)], 0.5)
            .is_empty());
    }

    #[test]
    fn validate_rejects_non_finite_and_out_of_range_parameters() {
        let g = path(4).unwrap(); // 3 edges, 4 nodes
        for bad_bias in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                AdversaryPlan::new(0)
                    .with_biased_injector(NodeId(0), bad_bias)
                    .validate(&g)
                    .is_err(),
                "bias {bad_bias} must be rejected"
            );
        }
        for bad_magnitude in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(
                AdversaryPlan::new(0)
                    .with_extreme_value_node(NodeId(0), bad_magnitude)
                    .validate(&g)
                    .is_err(),
                "magnitude {bad_magnitude} must be rejected"
            );
        }
        for bad_probability in [f64::NAN, f64::INFINITY, -0.1, 1.5] {
            assert!(
                AdversaryPlan::new(0)
                    .with_censoring_bridge(vec![EdgeId(0)], bad_probability)
                    .validate(&g)
                    .is_err(),
                "probability {bad_probability} must be rejected"
            );
        }
        for bad_threshold in [f64::NAN, f64::INFINITY, 0.0, -2.0] {
            assert!(
                AdversaryPlan::new(0)
                    .with_detection_threshold(bad_threshold)
                    .validate(&g)
                    .is_err(),
                "threshold {bad_threshold} must be rejected"
            );
        }
        // Out-of-range identifiers and duplicate behaviors.
        assert!(AdversaryPlan::new(0)
            .with_biased_injector(NodeId(4), 1.0)
            .validate(&g)
            .is_err());
        assert!(AdversaryPlan::new(0)
            .with_censoring_bridge(vec![EdgeId(3)], 0.5)
            .validate(&g)
            .is_err());
        assert!(AdversaryPlan::new(0)
            .with_biased_injector(NodeId(1), 1.0)
            .with_stale_replay_node(NodeId(1), 5)
            .validate(&g)
            .is_err());
        // A fully-specified valid plan passes.
        assert!(AdversaryPlan::new(0)
            .with_biased_injector(NodeId(0), -3.0)
            .with_extreme_value_node(NodeId(1), 50.0)
            .with_stale_replay_node(NodeId(2), 100)
            .with_censoring_bridge(vec![EdgeId(0), EdgeId(2)], 1.0)
            .with_detection_threshold(10.0)
            .validate(&g)
            .is_ok());
    }

    #[test]
    fn empty_plan_never_draws_and_never_interferes() {
        let g = complete(4).unwrap();
        let mut injector = AdversaryInjector::new(&AdversaryPlan::none(), &g).unwrap();
        for t in 0..1000u64 {
            let id = EdgeId(t as usize % g.edge_count());
            let edge = g.edge(id).unwrap();
            assert!(!injector.touches(id, edge));
            assert_eq!(
                injector.classify(id, edge, t, 1.0, 2.0),
                AdversaryAction::Honest
            );
        }
        let stats = injector.stats();
        assert_eq!(stats.honest_contacts, 1000);
        assert_eq!(stats.falsified_contacts, 0);
        assert_eq!(stats.censored_contacts, 0);
        assert_eq!(stats.total_reports(), 0);
        assert_eq!(stats.falsification_l1, 0.0);
        // The stream was never drawn from: a fresh injector's RNG is
        // bit-identical after the 1000 classifications.
        let fresh = AdversaryInjector::new(&AdversaryPlan::none(), &g).unwrap();
        assert_eq!(format!("{:?}", injector.rng), format!("{:?}", fresh.rng));
    }

    #[test]
    fn biased_injector_reports_offset_and_restores() {
        let g = path(2).unwrap();
        let plan = AdversaryPlan::new(3).with_biased_injector(NodeId(0), 2.5);
        let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
        let edge = g.edge(EdgeId(0)).unwrap();
        assert!(injector.touches(EdgeId(0), edge));
        match injector.classify(EdgeId(0), edge, 1, 1.0, 5.0) {
            AdversaryAction::Falsified(contact) => {
                let report = contact.u.expect("node 0 is adversarial");
                assert_eq!(report.value, 3.5);
                assert!(report.restore);
                assert!(contact.v.is_none());
            }
            other => panic!("expected falsified contact, got {other:?}"),
        }
        let stats = injector.stats();
        assert_eq!(stats.biased_reports, 1);
        assert_eq!(stats.falsified_contacts, 1);
        // |3.5 − 5.0| against the honest partner.
        assert!((stats.falsification_l1 - 1.5).abs() < 1e-12);
        assert_eq!(stats.report_min, 3.5);
        assert_eq!(stats.report_max, 3.5);
    }

    #[test]
    fn extreme_node_draws_seeded_signs_and_flags_detections() {
        let g = path(2).unwrap();
        let run = |seed: u64| {
            let plan = AdversaryPlan::new(seed)
                .with_extreme_value_node(NodeId(1), 100.0)
                .with_detection_threshold(10.0);
            let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
            let edge = g.edge(EdgeId(0)).unwrap();
            let signs: Vec<f64> = (0..200u64)
                .map(|t| match injector.classify(EdgeId(0), edge, t, 0.0, 0.0) {
                    AdversaryAction::Falsified(c) => c.v.unwrap().value.signum(),
                    other => panic!("expected falsified, got {other:?}"),
                })
                .collect();
            (signs, injector.stats())
        };
        let (signs_a, stats_a) = run(7);
        let (signs_b, _) = run(7);
        assert_eq!(signs_a, signs_b, "signs must be seed-deterministic");
        let (signs_c, _) = run(8);
        assert_ne!(signs_a, signs_c, "different seeds must differ");
        assert!(signs_a.contains(&1.0) && signs_a.contains(&-1.0));
        // Every ±100 report against an honest 0.0 partner exceeds the
        // detection threshold.
        assert_eq!(stats_a.flagged_reports, 200);
        assert_eq!(stats_a.extreme_reports, 200);
        assert_eq!(stats_a.report_min, -100.0);
        assert_eq!(stats_a.report_max, 100.0);
        assert_eq!(stats_a.max_falsification, 100.0);
    }

    #[test]
    fn stale_replay_reports_the_value_from_delay_ticks_ago() {
        let g = path(2).unwrap();
        let plan = AdversaryPlan::new(0).with_stale_replay_node(NodeId(0), 10);
        let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
        let edge = g.edge(EdgeId(0)).unwrap();
        let report_at = |injector: &mut AdversaryInjector, tick: u64, current: f64| match injector
            .classify(EdgeId(0), edge, tick, current, 0.0)
        {
            AdversaryAction::Falsified(c) => {
                let r = c.u.unwrap();
                assert!(!r.restore, "stale nodes keep evolving");
                r.value
            }
            other => panic!("expected falsified, got {other:?}"),
        };
        // Too young: reports the current value.
        assert_eq!(report_at(&mut injector, 2, 5.0), 5.0);
        // At tick 13 the newest entry at least 10 old is (2, 5.0).
        assert_eq!(report_at(&mut injector, 13, 8.0), 5.0);
        // At tick 24 it is (13, 8.0) — (2, 5.0) has been pruned.
        assert_eq!(report_at(&mut injector, 24, 9.0), 8.0);
        assert_eq!(injector.stats().stale_reports, 3);
    }

    #[test]
    fn censoring_bridge_suppresses_only_its_edges() {
        let g = complete(3).unwrap(); // edges e0=(0,1), e1=(0,2), e2=(1,2)
        let plan = AdversaryPlan::new(11).with_censoring_bridge(vec![EdgeId(1)], 1.0);
        let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
        for t in 0..50u64 {
            for id in [EdgeId(0), EdgeId(1), EdgeId(2)] {
                let edge = g.edge(id).unwrap();
                let action = injector.classify(id, edge, t, 0.0, 0.0);
                if id == EdgeId(1) {
                    assert_eq!(action, AdversaryAction::Censored);
                } else {
                    assert_eq!(action, AdversaryAction::Honest);
                }
            }
        }
        let stats = injector.stats();
        assert_eq!(stats.censored_contacts, 50);
        assert_eq!(stats.honest_contacts, 100);
        assert_eq!(stats.total_classified(), 150);
        // Probabilistic censoring is seeded and roughly calibrated.
        let plan = AdversaryPlan::new(5).with_censoring_bridge(vec![EdgeId(0)], 0.3);
        let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
        let edge = g.edge(EdgeId(0)).unwrap();
        for t in 0..2000u64 {
            injector.classify(EdgeId(0), edge, t, 0.0, 0.0);
        }
        let censored = injector.stats().censored_contacts as f64;
        // Binomial(2000, 0.3): 5σ ≈ 102.
        assert!(
            (censored - 600.0).abs() < 110.0,
            "censored {censored} far from 600"
        );
    }

    #[test]
    fn both_endpoints_adversarial_contributes_no_honest_falsification() {
        let g = path(2).unwrap();
        let plan = AdversaryPlan::new(0)
            .with_biased_injector(NodeId(0), 4.0)
            .with_biased_injector(NodeId(1), -4.0);
        let mut injector = AdversaryInjector::new(&plan, &g).unwrap();
        let edge = g.edge(EdgeId(0)).unwrap();
        match injector.classify(EdgeId(0), edge, 1, 1.0, 2.0) {
            AdversaryAction::Falsified(contact) => {
                assert_eq!(contact.u.unwrap().value, 5.0);
                assert_eq!(contact.v.unwrap().value, -2.0);
            }
            other => panic!("expected falsified, got {other:?}"),
        }
        let stats = injector.stats();
        assert_eq!(stats.falsified_contacts, 1);
        assert_eq!(stats.biased_reports, 2);
        // No honest partner on either side: the drift budget is untouched,
        // but the report range still covers both injected values.
        assert_eq!(stats.falsification_l1, 0.0);
        assert_eq!(stats.report_min, -2.0);
        assert_eq!(stats.report_max, 5.0);
    }
}
