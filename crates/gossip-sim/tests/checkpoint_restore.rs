//! Property-style checkpoint/restore suite over the scale families.
//!
//! For every scale-tier graph family, both clock models, and both a
//! fault-free and a mixed fault + adversary environment, a run restored
//! from an arbitrary committed mid-run checkpoint — round-tripped through
//! its serialized JSON document, exactly as the run store would hold it —
//! must reproduce the uninterrupted run on every observable bit: stop
//! tick, stop reason, elapsed-time bits, refresh count, fault/adversary
//! counters, settling time, and every final value.
//!
//! This is the cross-crate, cross-topology version of the in-crate smoke
//! test in `engine.rs`; the engine's own tests pin the mechanism, this one
//! pins it across the graphs the bench tiers actually sweep.

use gossip_graph::generators::scale::{
    chordal_ring, expander_barbell, expander_dumbbell, ring_of_cliques,
};
use gossip_graph::{Graph, NodeId};
use gossip_sim::engine::ClockModel;
use gossip_sim::handler::EdgeTickContext;
use gossip_sim::{
    AdversaryPlan, AsyncSimulator, EdgeTickHandler, EngineCheckpoint, FaultPlan, NodeValues,
    SimulationConfig, SimulationOutcome, StoppingRule,
};

struct Vanilla;

impl EdgeTickHandler for Vanilla {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        values.average_pair(u, v);
    }

    fn name(&self) -> &str {
        "vanilla"
    }

    fn pairwise_kernel(&self) -> Option<fn(f64, f64) -> (f64, f64)> {
        Some(|xu, xv| {
            let avg = 0.5 * (xu + xv);
            (avg, avg)
        })
    }
}

fn spike(n: usize) -> NodeValues {
    let mut v = vec![0.0; n];
    v[0] = n as f64;
    NodeValues::from_values(v).expect("non-empty finite values")
}

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("chordal_ring(24)", chordal_ring(24).unwrap()),
        ("expander_dumbbell(12)", expander_dumbbell(12).unwrap().0),
        (
            "expander_barbell(10,14)",
            expander_barbell(10, 14).unwrap().0,
        ),
        ("ring_of_cliques(4,6)", ring_of_cliques(4, 6).unwrap().0),
    ]
}

/// A mixed hostile environment seeded per family: probabilistic drops, a
/// paused node, a biased injector, an extreme-value node, and a stale
/// replayer — every checkpointed RNG stream and injector cursor is live.
fn hostile(config: SimulationConfig, seed_offset: u64) -> SimulationConfig {
    config
        .with_fault_plan(
            FaultPlan::new(7 + seed_offset)
                .with_drop_probability(0.1)
                .with_node_pause(NodeId(0), 100, 400),
        )
        .with_adversary_plan(
            AdversaryPlan::new(13 + seed_offset)
                .with_biased_injector(NodeId(1), 0.4)
                .with_extreme_value_node(NodeId(3), 50.0)
                .with_stale_replay_node(NodeId(5), 64),
        )
}

fn assert_outcomes_bit_identical(a: &SimulationOutcome, b: &SimulationOutcome, ctx: &str) {
    assert_eq!(a.total_ticks, b.total_ticks, "{ctx}");
    assert_eq!(a.stop_reason, b.stop_reason, "{ctx}");
    assert_eq!(a.moment_refreshes, b.moment_refreshes, "{ctx}");
    assert_eq!(a.fault_stats, b.fault_stats, "{ctx}");
    assert_eq!(a.adversary_stats, b.adversary_stats, "{ctx}");
    assert_eq!(a.elapsed_time.to_bits(), b.elapsed_time.to_bits(), "{ctx}");
    assert_eq!(
        a.final_variance.to_bits(),
        b.final_variance.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.settling_time.map(f64::to_bits),
        b.settling_time.map(f64::to_bits),
        "{ctx}"
    );
    for (x, y) in a
        .final_values
        .as_slice()
        .iter()
        .zip(b.final_values.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}");
    }
}

#[test]
fn restore_is_bit_identical_across_families_clocks_and_environments() {
    for (family_index, (family, graph)) in families().into_iter().enumerate() {
        let n = graph.node_count();
        for model in [ClockModel::PerEdgeQueue, ClockModel::GlobalUniform] {
            for hostile_env in [false, true] {
                let ctx = format!("{family} {model:?} hostile={hostile_env}");
                // A stopping rule that can never fire plus a tick cap makes
                // every run exactly 8192 ticks long — long enough for many
                // refreshes (every 128 ticks) and checkpoints (every 512)
                // regardless of how fast the family converges.
                let mut config = SimulationConfig::new(29 + family_index as u64)
                    .with_clock_model(model)
                    .with_stopping_rule(StoppingRule::variance_ratio_below(0.0).or_max_ticks(8192))
                    .with_moment_refresh_every_ticks(128)
                    .with_settling_threshold(0.5)
                    .with_checkpoint_every_ticks(512);
                if hostile_env {
                    config = hostile(config, family_index as u64);
                }

                let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
                let mut sim =
                    AsyncSimulator::new(&graph, spike(n), Vanilla, config.clone()).unwrap();
                let baseline = sim
                    .run_with_checkpoints(&mut |cp| {
                        checkpoints.push(cp);
                        Ok(())
                    })
                    .unwrap();
                assert!(
                    checkpoints.len() >= 3,
                    "{ctx}: run too short to exercise restore"
                );
                if hostile_env {
                    // The injectors must actually have fired, otherwise the
                    // restored RNG/cursor state is vacuously exercised.
                    assert!(baseline.fault_stats.total_suppressed() > 0, "{ctx}");
                    assert!(baseline.adversary_stats.falsified_contacts > 0, "{ctx}");
                } else {
                    assert_eq!(baseline.fault_stats.total_suppressed(), 0, "{ctx}");
                    assert_eq!(baseline.adversary_stats.falsified_contacts, 0, "{ctx}");
                }

                // Restore from the first, an arbitrary interior, and the
                // last committed checkpoint, each after a JSON round trip.
                for index in [0, checkpoints.len() / 2, checkpoints.len() - 1] {
                    let blob = checkpoints[index].to_value();
                    let reloaded = EngineCheckpoint::from_value(&blob).unwrap();
                    assert_eq!(reloaded, checkpoints[index], "{ctx} checkpoint {index}");
                    let mut resumed =
                        AsyncSimulator::restore(&graph, Vanilla, config.clone(), &reloaded)
                            .unwrap();
                    let outcome = resumed.run().unwrap();
                    assert_outcomes_bit_identical(
                        &baseline,
                        &outcome,
                        &format!("{ctx} from checkpoint {index}"),
                    );
                }
            }
        }
    }
}
