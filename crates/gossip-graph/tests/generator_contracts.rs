//! Contract property tests for every generator in `generators/`: the graph
//! is connected, and when a [`Partition`] is returned it is consistent —
//! the blocks cover the nodes exactly once, and the recorded cut edges are
//! precisely the edges whose endpoints lie in different blocks.

use gossip_graph::generators::{
    barbell, bridged_clusters, complete, complete_bipartite, cycle, dumbbell,
    erdos_renyi_connected, grid2d, grid_corridor, hypercube, path, random_regular, star, torus2d,
    two_block_sbm,
};
use gossip_graph::partition::Block;
use gossip_graph::traversal::is_connected;
use gossip_graph::{Graph, Partition};
use proptest::prelude::*;

/// Asserts the full partition contract against its graph; returns an error
/// message naming the violated clause so property failures are readable.
fn check_partition_contract(
    name: &str,
    graph: &Graph,
    partition: &Partition,
) -> Result<(), String> {
    // Blocks cover the node set exactly once.
    if partition.node_count() != graph.node_count() {
        return Err(format!(
            "{name}: partition covers {} of {} nodes",
            partition.node_count(),
            graph.node_count()
        ));
    }
    if partition.block_one_size() + partition.block_two_size() != graph.node_count() {
        return Err(format!("{name}: block sizes do not sum to n"));
    }
    let mut seen = vec![false; graph.node_count()];
    for &node in partition.block_one().iter().chain(partition.block_two()) {
        if seen[node.index()] {
            return Err(format!("{name}: node {node} appears in both blocks"));
        }
        seen[node.index()] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(format!("{name}: some node is in neither block"));
    }
    // Neither block may be empty (Notation 1 requires a genuine two-block
    // decomposition).
    if partition.block_one_size() == 0 || partition.block_two_size() == 0 {
        return Err(format!("{name}: a block is empty"));
    }
    // The recorded cut is exactly the set of crossing edges.
    let cut: std::collections::BTreeSet<usize> =
        partition.cut_edges().iter().map(|e| e.index()).collect();
    if cut.len() != partition.cut_edge_count() {
        return Err(format!("{name}: duplicate edges in the recorded cut"));
    }
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id).expect("edge exists");
        let (u, v) = edge.endpoints();
        let crosses = partition.block_of(u) != partition.block_of(v);
        let recorded = cut.contains(&edge_id.index());
        if crosses != recorded {
            return Err(format!(
                "{name}: edge {edge_id} crosses={crosses} but recorded={recorded}"
            ));
        }
        if crosses != partition.is_cut_edge(&edge) {
            return Err(format!("{name}: is_cut_edge disagrees on edge {edge_id}"));
        }
    }
    // The Theorem 1 ratio is consistent with the recorded quantities.
    let expected_ratio =
        partition.smaller_block_size() as f64 / partition.cut_edge_count().max(1) as f64;
    if partition.cut_edge_count() > 0 && (partition.theorem1_ratio() - expected_ratio).abs() > 1e-12
    {
        return Err(format!("{name}: theorem1_ratio inconsistent"));
    }
    Ok(())
}

fn check_connected(name: &str, graph: &Graph) -> Result<(), String> {
    if !is_connected(graph) {
        return Err(format!("{name}: generated graph is disconnected"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deterministic families: connected for every size.
    #[test]
    fn prop_deterministic_generators_are_connected(n in 2usize..24) {
        for (name, graph) in [
            ("complete", complete(n).unwrap()),
            ("path", path(n).unwrap()),
            ("cycle", cycle(n.max(3)).unwrap()),
            ("star", star(n).unwrap()),
            ("grid2d", grid2d(2 + n % 4, 2 + n / 4).unwrap()),
            ("torus2d", torus2d(3 + n % 3, 3 + n / 5).unwrap()),
            ("hypercube", hypercube(1 + n % 5).unwrap()),
            ("complete_bipartite", complete_bipartite(1 + n / 2, 1 + n % 7).unwrap()),
        ] {
            if let Err(message) = check_connected(name, &graph) {
                prop_assert!(false, "{message}");
            }
        }
    }

    /// Random families: connected (by construction or retry) for every seed.
    #[test]
    fn prop_random_generators_are_connected(n in 4usize..24, seed in 0u64..200) {
        let er = erdos_renyi_connected(n, 0.6, seed, 64).unwrap();
        if let Err(message) = check_connected("erdos_renyi_connected", &er) {
            prop_assert!(false, "{message}");
        }
        let degree = if n % 2 == 0 { 3 } else { 4 };
        let rr = random_regular(n.max(degree + 1), degree, seed).unwrap();
        if let Err(message) = check_connected("random_regular", &rr) {
            prop_assert!(false, "{message}");
        }
    }

    /// Sparse-cut families: connected AND the returned partition satisfies
    /// the full contract (cut edges actually cross the cut).
    #[test]
    fn prop_sparse_cut_generators_return_consistent_partitions(
        half in 2usize..12,
        extra in 0usize..6,
        bridges in 1usize..5,
        seed in 0u64..100,
    ) {
        let cases: Vec<(&str, (Graph, Partition))> = vec![
            ("dumbbell", dumbbell(half).unwrap()),
            ("barbell", barbell(half, half + extra.max(1)).unwrap()),
            (
                "bridged_clusters",
                bridged_clusters(half + 2, half + 2, bridges, 0.7, seed).unwrap(),
            ),
            (
                "two_block_sbm",
                two_block_sbm(half + 4, half + 4, 0.9, 0.1, seed).unwrap(),
            ),
            (
                "grid_corridor",
                grid_corridor(2 + half % 3, 3 + half % 4, 1 + bridges % 2).unwrap(),
            ),
        ];
        for (name, (graph, partition)) in cases {
            if let Err(message) = check_connected(name, &graph) {
                prop_assert!(false, "{message}");
            }
            if let Err(message) = check_partition_contract(name, &graph, &partition) {
                prop_assert!(false, "{message}");
            }
        }
    }

    /// The normalized/swapped views preserve the contract.
    #[test]
    fn prop_partition_views_preserve_the_contract(half in 2usize..10) {
        let (graph, partition) = dumbbell(half).unwrap();
        for (name, view) in [
            ("swapped", partition.swapped()),
            ("normalized", partition.normalized()),
        ] {
            if let Err(message) = check_partition_contract(name, &graph, &view) {
                prop_assert!(false, "{message}");
            }
        }
        // Swapping exchanges the blocks.
        prop_assert_eq!(
            partition.swapped().block(Block::One).len(),
            partition.block(Block::Two).len()
        );
    }
}
