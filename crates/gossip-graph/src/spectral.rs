//! Spectral quantities of a graph: algebraic connectivity, spectral gap of the
//! expected gossip matrix, and the Fiedler vector.
//!
//! These feed two consumers:
//!
//! * `gossip-core` uses `1/λ₂`-style quantities to estimate the vanilla
//!   averaging times `T_van(G₁)`, `T_van(G₂)` that parametrize Algorithm A's
//!   epoch length;
//! * [`crate::cut`] uses the Fiedler vector for spectral bisection when a
//!   sparse cut is not known in advance.

use crate::{laplacian, Graph, GraphError, Result};
use gossip_linalg::{SymmetricEigen, Vector};
use serde::{Deserialize, Serialize};

/// Summary of the spectral quantities relevant to gossip averaging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralProfile {
    /// Algebraic connectivity: second-smallest eigenvalue of the Laplacian.
    pub algebraic_connectivity: f64,
    /// Largest Laplacian eigenvalue.
    pub laplacian_lambda_max: f64,
    /// Spectral gap `1 − λ₂(W̄)` of the expected gossip matrix
    /// `W̄ = I − L/(2|E|)`.
    pub gossip_spectral_gap: f64,
    /// Relaxation time `1 / gap`, the natural time-scale (in *global* clock
    /// ticks) on which vanilla gossip mixes.
    pub relaxation_ticks: f64,
    /// Number of edges of the graph (so callers can convert between tick
    /// counts and the absolute time of rate-1 Poisson clocks).
    pub edge_count: usize,
    /// Number of nodes.
    pub node_count: usize,
}

impl SpectralProfile {
    /// Computes the profile of a connected graph with at least one edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for graphs with fewer than two
    /// nodes or no edges, [`GraphError::Disconnected`] if `λ₂ ≈ 0`, and
    /// propagates eigensolver failures.
    pub fn compute(graph: &Graph) -> Result<Self> {
        if graph.node_count() < 2 {
            return Err(GraphError::InvalidParameter {
                reason: "spectral profile requires at least two nodes".into(),
            });
        }
        if graph.edge_count() == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "spectral profile requires at least one edge".into(),
            });
        }
        let lap = laplacian::laplacian(graph);
        let eig = SymmetricEigen::compute(&lap)?;
        let lambda2 = eig.second_smallest()?;
        let lambda_max = eig.largest();
        if lambda2 < 1e-9 {
            return Err(GraphError::Disconnected);
        }
        let gap = lambda2 / (2.0 * graph.edge_count() as f64);
        Ok(SpectralProfile {
            algebraic_connectivity: lambda2,
            laplacian_lambda_max: lambda_max,
            gossip_spectral_gap: gap,
            relaxation_ticks: 1.0 / gap,
            edge_count: graph.edge_count(),
            node_count: graph.node_count(),
        })
    }

    /// Relaxation time expressed in absolute (Poisson-clock) time rather than
    /// ticks: with `|E|` rate-1 clocks, ticks arrive at rate `|E|`, so the
    /// absolute relaxation time is `relaxation_ticks / |E|`.
    pub fn relaxation_time(&self) -> f64 {
        self.relaxation_ticks / self.edge_count as f64
    }

    /// Spectral estimate of the ε-averaging time in absolute time, the
    /// standard `Θ(log(1/ε) / (gap · |E|))` formula specialized to the
    /// `ε = e⁻²`-style threshold of Definition 1 (`log(1/ε) = 2` plus a
    /// `log n` term accounting for the worst-case initial vector).
    pub fn vanilla_averaging_time_estimate(&self) -> f64 {
        let log_term = 2.0 + (self.node_count as f64).ln();
        log_term * self.relaxation_time()
    }
}

/// Second-smallest eigenvalue of the combinatorial Laplacian.
///
/// # Errors
///
/// See [`SpectralProfile::compute`]; additionally this returns whatever the
/// eigensolver reports for degenerate inputs.
pub fn algebraic_connectivity(graph: &Graph) -> Result<f64> {
    let lap = laplacian::laplacian(graph);
    let eig = SymmetricEigen::compute(&lap)?;
    Ok(eig.second_smallest()?)
}

/// The Fiedler vector: the unit-norm eigenvector of the Laplacian associated
/// with the second-smallest eigenvalue.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for graphs with fewer than two
/// nodes and propagates eigensolver failures.
pub fn fiedler_vector(graph: &Graph) -> Result<Vector> {
    if graph.node_count() < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "Fiedler vector requires at least two nodes".into(),
        });
    }
    let lap = laplacian::laplacian(graph);
    let eig = SymmetricEigen::compute(&lap)?;
    Ok(eig.second_smallest_eigenvector()?.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn complete_graph_connectivity_is_n() {
        let n = 6;
        let g = complete(n);
        assert!((algebraic_connectivity(&g).unwrap() - n as f64).abs() < 1e-7);
    }

    #[test]
    fn path_graph_connectivity_matches_formula() {
        let n = 7;
        let g = path(n);
        let expected = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!((algebraic_connectivity(&g).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn profile_of_complete_graph() {
        let n = 8;
        let g = complete(n);
        let p = SpectralProfile::compute(&g).unwrap();
        assert!((p.algebraic_connectivity - n as f64).abs() < 1e-6);
        assert!((p.laplacian_lambda_max - n as f64).abs() < 1e-6);
        let m = g.edge_count() as f64;
        assert!((p.gossip_spectral_gap - n as f64 / (2.0 * m)).abs() < 1e-9);
        assert!((p.relaxation_ticks - 2.0 * m / n as f64).abs() < 1e-6);
        assert!((p.relaxation_time() - p.relaxation_ticks / m).abs() < 1e-12);
        assert!(p.vanilla_averaging_time_estimate() > 0.0);
        assert_eq!(p.node_count, n);
        assert_eq!(p.edge_count, g.edge_count());
    }

    #[test]
    fn profile_rejects_degenerate_graphs() {
        assert!(SpectralProfile::compute(&Graph::from_edges(1, &[]).unwrap()).is_err());
        assert!(SpectralProfile::compute(&Graph::from_edges(3, &[]).unwrap()).is_err());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            SpectralProfile::compute(&disconnected),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn fiedler_vector_is_orthogonal_to_ones_and_separates_path() {
        let g = path(6);
        let f = fiedler_vector(&g).unwrap();
        assert!((f.norm() - 1.0).abs() < 1e-9);
        assert!(f.sum().abs() < 1e-8);
        // On a path the Fiedler vector is monotone, so the two halves have
        // opposite signs.
        let first = f[0];
        let last = f[5];
        assert!(first * last < 0.0);
        assert!(fiedler_vector(&Graph::from_edges(1, &[]).unwrap()).is_err());
    }

    #[test]
    fn denser_graphs_relax_faster() {
        let sparse = path(8);
        let dense = complete(8);
        let ps = SpectralProfile::compute(&sparse).unwrap();
        let pd = SpectralProfile::compute(&dense).unwrap();
        assert!(pd.relaxation_time() < ps.relaxation_time());
        assert!(pd.vanilla_averaging_time_estimate() < ps.vanilla_averaging_time_estimate());
    }
}
