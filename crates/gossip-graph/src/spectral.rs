//! Spectral quantities of a graph: algebraic connectivity, spectral gap of the
//! expected gossip matrix, and the Fiedler vector.
//!
//! These feed two consumers:
//!
//! * `gossip-core` uses `1/λ₂`-style quantities to estimate the vanilla
//!   averaging times `T_van(G₁)`, `T_van(G₂)` that parametrize Algorithm A's
//!   epoch length;
//! * [`crate::cut`] uses the Fiedler vector for spectral bisection when a
//!   sparse cut is not known in advance.

use crate::{laplacian, Graph, GraphError, Result};
use gossip_linalg::{Lanczos, SymmetricEigen, Vector};
use serde::{Deserialize, Serialize};

/// Node count above which [`SpectralProfile::compute`] (and the other
/// dispatching helpers in this module) switch from the dense Jacobi path to
/// the sparse matrix-free Lanczos path.
///
/// Below the threshold the dense path is both fast and bit-reproducibly the
/// *reference*: the differential oracle suite pins the sparse path against
/// it.  Above the threshold dense costs O(n²) memory and O(n³) time, which
/// is exactly what the sparse tier exists to avoid.  The value is far below
/// the Lanczos iteration cap, so the small dense tridiagonal systems the
/// sparse path solves internally never come close to it.
pub const SPARSE_DISPATCH_THRESHOLD: usize = 512;

/// Summary of the spectral quantities relevant to gossip averaging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralProfile {
    /// Algebraic connectivity: second-smallest eigenvalue of the Laplacian.
    pub algebraic_connectivity: f64,
    /// Largest Laplacian eigenvalue.
    pub laplacian_lambda_max: f64,
    /// Spectral gap `1 − λ₂(W̄)` of the expected gossip matrix
    /// `W̄ = I − L/(2|E|)`.
    pub gossip_spectral_gap: f64,
    /// Relaxation time `1 / gap`, the natural time-scale (in *global* clock
    /// ticks) on which vanilla gossip mixes.
    pub relaxation_ticks: f64,
    /// Number of edges of the graph (so callers can convert between tick
    /// counts and the absolute time of rate-1 Poisson clocks).
    pub edge_count: usize,
    /// Number of nodes.
    pub node_count: usize,
}

impl SpectralProfile {
    /// Computes the profile of a connected graph with at least one edge,
    /// dispatching on size: graphs with at most [`SPARSE_DISPATCH_THRESHOLD`]
    /// nodes go through the dense reference path
    /// ([`SpectralProfile::compute_dense`]), larger graphs through the sparse
    /// matrix-free path ([`SpectralProfile::compute_sparse`]).
    ///
    /// Below the threshold the result is byte-identical to calling the dense
    /// path directly — dispatch never perturbs small-graph results.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for graphs with fewer than two
    /// nodes or no edges, [`GraphError::Disconnected`] if `λ₂ ≈ 0`, and
    /// propagates eigensolver failures.
    pub fn compute(graph: &Graph) -> Result<Self> {
        if graph.node_count() > SPARSE_DISPATCH_THRESHOLD {
            Self::compute_sparse(graph)
        } else {
            Self::compute_dense(graph)
        }
    }

    /// Computes the profile with the dense Jacobi eigensolver: O(n²) memory,
    /// O(n³) time, the full spectrum.  This is the trusted reference path of
    /// the differential test oracle.
    ///
    /// # Errors
    ///
    /// See [`SpectralProfile::compute`].
    pub fn compute_dense(graph: &Graph) -> Result<Self> {
        Self::check_shape(graph)?;
        let lap = laplacian::laplacian(graph);
        let eig = SymmetricEigen::compute(&lap)?;
        let lambda2 = eig.second_smallest()?;
        let lambda_max = eig.largest();
        Self::from_extremes(graph, lambda2, lambda_max)
    }

    /// Computes the profile with the sparse CSR Laplacian and matrix-free
    /// Lanczos iteration (deflating the all-ones null direction): O(|E| +
    /// k·n) memory and O(k·|E| + k²·n) time for `k` Lanczos steps (the k·n
    /// term is the reorthogonalization basis), never materializing an n×n
    /// matrix.
    ///
    /// # Errors
    ///
    /// See [`SpectralProfile::compute`].
    pub fn compute_sparse(graph: &Graph) -> Result<Self> {
        Self::check_shape(graph)?;
        let eig = sparse_laplacian_extremes(graph)?;
        Self::from_extremes(graph, eig.smallest, eig.largest)
    }

    fn check_shape(graph: &Graph) -> Result<()> {
        if graph.node_count() < 2 {
            return Err(GraphError::InvalidParameter {
                reason: "spectral profile requires at least two nodes".into(),
            });
        }
        if graph.edge_count() == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "spectral profile requires at least one edge".into(),
            });
        }
        Ok(())
    }

    fn from_extremes(graph: &Graph, lambda2: f64, lambda_max: f64) -> Result<Self> {
        if lambda2 < 1e-9 {
            return Err(GraphError::Disconnected);
        }
        let gap = lambda2 / (2.0 * graph.edge_count() as f64);
        Ok(SpectralProfile {
            algebraic_connectivity: lambda2,
            laplacian_lambda_max: lambda_max,
            gossip_spectral_gap: gap,
            relaxation_ticks: 1.0 / gap,
            edge_count: graph.edge_count(),
            node_count: graph.node_count(),
        })
    }

    /// Relaxation time expressed in absolute (Poisson-clock) time rather than
    /// ticks: with `|E|` rate-1 clocks, ticks arrive at rate `|E|`, so the
    /// absolute relaxation time is `relaxation_ticks / |E|`.
    pub fn relaxation_time(&self) -> f64 {
        self.relaxation_ticks / self.edge_count as f64
    }

    /// Spectral estimate of the ε-averaging time in absolute time, the
    /// standard `Θ(log(1/ε) / (gap · |E|))` formula specialized to the
    /// `ε = e⁻²`-style threshold of Definition 1 (`log(1/ε) = 2` plus a
    /// `log n` term accounting for the worst-case initial vector).
    pub fn vanilla_averaging_time_estimate(&self) -> f64 {
        let log_term = 2.0 + (self.node_count as f64).ln();
        log_term * self.relaxation_time()
    }
}

/// The sparse tier's one Laplacian eigensolve, shared by every dispatching
/// helper in this module: build the CSR Laplacian and run Lanczos with the
/// all-ones null direction deflated, so the smallest Ritz pair is the
/// Fiedler value/vector and the largest is `λ_max` (eigenvectors of non-zero
/// Laplacian eigenvalues are automatically orthogonal to the ones vector).
///
/// The iteration budget: up to 2 500 nodes the full Krylov space is allowed
/// (exhaustion makes the extremes exact for *any* spectrum, including the
/// Θ(n)-step 1-D chains where eigenvalue spacing is ~1/n²), and beyond that
/// a `max(2 500, 8·√n)` cap — enough for the expander/grid/clique families
/// of the scale tier, whose smallest non-trivial eigenvalue resolves in
/// O(√n)-ish steps.  Extremely chain-like graphs above ~6 000 nodes may
/// exhaust the cap and report [`gossip_linalg::LinalgError::NoConvergence`]
/// (an explicit error, never a silently wrong eigenvalue); such graphs were
/// equally out of reach for the O(n³) dense path.
///
/// Callers needing both the Fiedler value *and* vector of a large graph
/// should call this once rather than paying two solves through the
/// individual helpers.
pub fn sparse_laplacian_extremes(graph: &Graph) -> Result<gossip_linalg::LanczosResult> {
    let n = graph.node_count();
    let budget = n.min(2_500).max((8.0 * (n as f64).sqrt()) as usize);
    let lap = laplacian::laplacian_sparse(graph);
    Lanczos::new()
        .with_deflation(Vector::ones(n))
        .with_max_iterations(budget)
        .run(&lap)
        .map_err(GraphError::Linalg)
}

/// Second-smallest eigenvalue of the combinatorial Laplacian (the Fiedler
/// value), dispatching dense/sparse on [`SPARSE_DISPATCH_THRESHOLD`] like
/// [`SpectralProfile::compute`].
///
/// Unlike [`SpectralProfile::compute`] this does *not* reject disconnected
/// graphs: for those it simply reports `λ₂ ≈ 0`.
///
/// # Errors
///
/// See [`SpectralProfile::compute`]; additionally this returns whatever the
/// eigensolver reports for degenerate inputs.
pub fn algebraic_connectivity(graph: &Graph) -> Result<f64> {
    if graph.node_count() > SPARSE_DISPATCH_THRESHOLD {
        Ok(sparse_laplacian_extremes(graph)?.smallest)
    } else {
        let lap = laplacian::laplacian(graph);
        let eig = SymmetricEigen::compute(&lap)?;
        Ok(eig.second_smallest()?)
    }
}

/// Alias for [`algebraic_connectivity`] under its common name in the
/// sparse-cut literature.
///
/// # Errors
///
/// See [`algebraic_connectivity`].
pub fn fiedler_value(graph: &Graph) -> Result<f64> {
    algebraic_connectivity(graph)
}

/// The Fiedler vector: the unit-norm eigenvector of the Laplacian associated
/// with the second-smallest eigenvalue, dispatching dense/sparse on
/// [`SPARSE_DISPATCH_THRESHOLD`].
///
/// The sign is solver-dependent (both signs are valid eigenvectors); the
/// spectral bisection in [`crate::cut`] is sign-invariant.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for graphs with fewer than two
/// nodes and propagates eigensolver failures.
pub fn fiedler_vector(graph: &Graph) -> Result<Vector> {
    if graph.node_count() < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "Fiedler vector requires at least two nodes".into(),
        });
    }
    if graph.node_count() > SPARSE_DISPATCH_THRESHOLD {
        Ok(sparse_laplacian_extremes(graph)?.smallest_vector)
    } else {
        let lap = laplacian::laplacian(graph);
        let eig = SymmetricEigen::compute(&lap)?;
        Ok(eig.second_smallest_eigenvector()?.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn complete_graph_connectivity_is_n() {
        let n = 6;
        let g = complete(n);
        assert!((algebraic_connectivity(&g).unwrap() - n as f64).abs() < 1e-7);
    }

    #[test]
    fn path_graph_connectivity_matches_formula() {
        let n = 7;
        let g = path(n);
        let expected = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!((algebraic_connectivity(&g).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn profile_of_complete_graph() {
        let n = 8;
        let g = complete(n);
        let p = SpectralProfile::compute(&g).unwrap();
        assert!((p.algebraic_connectivity - n as f64).abs() < 1e-6);
        assert!((p.laplacian_lambda_max - n as f64).abs() < 1e-6);
        let m = g.edge_count() as f64;
        assert!((p.gossip_spectral_gap - n as f64 / (2.0 * m)).abs() < 1e-9);
        assert!((p.relaxation_ticks - 2.0 * m / n as f64).abs() < 1e-6);
        assert!((p.relaxation_time() - p.relaxation_ticks / m).abs() < 1e-12);
        assert!(p.vanilla_averaging_time_estimate() > 0.0);
        assert_eq!(p.node_count, n);
        assert_eq!(p.edge_count, g.edge_count());
    }

    #[test]
    fn profile_rejects_degenerate_graphs() {
        assert!(SpectralProfile::compute(&Graph::from_edges(1, &[]).unwrap()).is_err());
        assert!(SpectralProfile::compute(&Graph::from_edges(3, &[]).unwrap()).is_err());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            SpectralProfile::compute(&disconnected),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn fiedler_vector_is_orthogonal_to_ones_and_separates_path() {
        let g = path(6);
        let f = fiedler_vector(&g).unwrap();
        assert!((f.norm() - 1.0).abs() < 1e-9);
        assert!(f.sum().abs() < 1e-8);
        // On a path the Fiedler vector is monotone, so the two halves have
        // opposite signs.
        let first = f[0];
        let last = f[5];
        assert!(first * last < 0.0);
        assert!(fiedler_vector(&Graph::from_edges(1, &[]).unwrap()).is_err());
    }

    #[test]
    fn dense_and_sparse_profiles_agree_on_small_graphs() {
        for graph in [complete(9), path(11)] {
            let dense = SpectralProfile::compute_dense(&graph).unwrap();
            let sparse = SpectralProfile::compute_sparse(&graph).unwrap();
            let scale = dense.laplacian_lambda_max.max(1.0);
            assert!(
                (dense.algebraic_connectivity - sparse.algebraic_connectivity).abs() < 1e-7 * scale
            );
            assert!(
                (dense.laplacian_lambda_max - sparse.laplacian_lambda_max).abs() < 1e-7 * scale
            );
            assert_eq!(dense.edge_count, sparse.edge_count);
            assert_eq!(dense.node_count, sparse.node_count);
        }
    }

    #[test]
    fn dispatch_is_bitwise_dense_below_threshold() {
        let g = path(10);
        assert!(g.node_count() <= SPARSE_DISPATCH_THRESHOLD);
        let dispatched = SpectralProfile::compute(&g).unwrap();
        let dense = SpectralProfile::compute_dense(&g).unwrap();
        assert_eq!(
            dispatched.algebraic_connectivity.to_bits(),
            dense.algebraic_connectivity.to_bits()
        );
        assert_eq!(
            dispatched.vanilla_averaging_time_estimate().to_bits(),
            dense.vanilla_averaging_time_estimate().to_bits()
        );
        assert_eq!(dispatched, dense);
    }

    #[test]
    fn sparse_path_rejects_degenerate_graphs_like_dense() {
        assert!(SpectralProfile::compute_sparse(&Graph::from_edges(1, &[]).unwrap()).is_err());
        assert!(SpectralProfile::compute_sparse(&Graph::from_edges(3, &[]).unwrap()).is_err());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            SpectralProfile::compute_sparse(&disconnected),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn fiedler_value_matches_connectivity() {
        let g = path(9);
        assert_eq!(
            fiedler_value(&g).unwrap().to_bits(),
            algebraic_connectivity(&g).unwrap().to_bits()
        );
    }

    #[test]
    fn denser_graphs_relax_faster() {
        let sparse = path(8);
        let dense = complete(8);
        let ps = SpectralProfile::compute(&sparse).unwrap();
        let pd = SpectralProfile::compute(&dense).unwrap();
        assert!(pd.relaxation_time() < ps.relaxation_time());
        assert!(pd.vanilla_averaging_time_estimate() < ps.vanilla_averaging_time_estimate());
    }
}
