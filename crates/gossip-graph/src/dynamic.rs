//! A dynamic-topology view over an immutable [`Graph`].
//!
//! The fault-injection tier (see `gossip-sim::fault`) models churn as edges
//! going down and coming back while the underlying graph object — which owns
//! the edge identifiers the Poisson clocks are attached to — stays fixed.
//! [`DynamicGraphView`] is the graph-layer counterpart: a live/dead mask
//! over the edge set plus probes of what survives, most importantly the
//! **worst-surviving-subgraph spectral probe**: the smallest algebraic
//! connectivity over the connected components of the live subgraph, i.e. the
//! mixing bottleneck of the worst-connected island the faults leave behind.
//!
//! The view never mutates the base graph and can be reset or replayed
//! freely, so the same instance can evaluate many fault plans.

use crate::spectral::SpectralProfile;
use crate::traversal;
use crate::{EdgeId, Graph, GraphBuilder, NodeId, Result};

/// A live/dead edge mask over a borrowed [`Graph`], with connectivity and
/// spectral probes of the surviving subgraph.
///
/// # Examples
///
/// ```
/// use gossip_graph::dynamic::DynamicGraphView;
/// use gossip_graph::generators::dumbbell;
///
/// let (graph, partition) = dumbbell(4)?;
/// let mut view = DynamicGraphView::new(&graph);
/// assert!(view.is_live_connected());
/// // Kill the single bridge edge: the dumbbell splits into its two cliques.
/// view.kill_edge(partition.cut_edges()[0])?;
/// assert!(!view.is_live_connected());
/// assert_eq!(view.live_components().len(), 2);
/// # Ok::<(), gossip_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraphView<'g> {
    graph: &'g Graph,
    alive: Vec<bool>,
    alive_count: usize,
}

impl<'g> DynamicGraphView<'g> {
    /// Creates a view with every edge alive.
    pub fn new(graph: &'g Graph) -> Self {
        DynamicGraphView {
            graph,
            alive: vec![true; graph.edge_count()],
            alive_count: graph.edge_count(),
        }
    }

    /// The underlying (static) graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Returns `true` if `edge` is currently alive.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::EdgeOutOfRange`] for an invalid id.
    pub fn is_edge_alive(&self, edge: EdgeId) -> Result<bool> {
        self.graph.edge(edge)?;
        Ok(self.alive[edge.index()])
    }

    /// Sets the liveness of `edge`; returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::EdgeOutOfRange`] for an invalid id.
    pub fn set_edge_alive(&mut self, edge: EdgeId, alive: bool) -> Result<bool> {
        self.graph.edge(edge)?;
        let slot = &mut self.alive[edge.index()];
        if *slot == alive {
            return Ok(false);
        }
        *slot = alive;
        if alive {
            self.alive_count += 1;
        } else {
            self.alive_count -= 1;
        }
        Ok(true)
    }

    /// Marks `edge` dead; returns whether it was previously alive.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::EdgeOutOfRange`] for an invalid id.
    pub fn kill_edge(&mut self, edge: EdgeId) -> Result<bool> {
        self.set_edge_alive(edge, false)
    }

    /// Marks `edge` alive again; returns whether it was previously dead.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::EdgeOutOfRange`] for an invalid id.
    pub fn revive_edge(&mut self, edge: EdgeId) -> Result<bool> {
        self.set_edge_alive(edge, true)
    }

    /// Marks every edge incident to `node` dead (the topological shadow of a
    /// node pause: a down node neither sends nor receives).  Returns how
    /// many edges changed state.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::NodeOutOfRange`] for an invalid id.
    pub fn kill_node(&mut self, node: NodeId) -> Result<usize> {
        self.graph.check_node(node)?;
        let incident: Vec<EdgeId> = self.graph.neighbors(node).map(|(_, e)| e).collect();
        let mut changed = 0;
        for edge in incident {
            if self.kill_edge(edge)? {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Restores every edge to alive.
    pub fn reset(&mut self) {
        self.alive.fill(true);
        self.alive_count = self.graph.edge_count();
    }

    /// Number of currently live edges.
    pub fn live_edge_count(&self) -> usize {
        self.alive_count
    }

    /// Number of currently dead edges.
    pub fn dead_edge_count(&self) -> usize {
        self.graph.edge_count() - self.alive_count
    }

    /// Iterates over the identifiers of the live edges in increasing order.
    pub fn live_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| EdgeId(i))
    }

    /// Degree of `node` counting live edges only.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range (mirrors [`Graph::degree`]).
    pub fn live_degree(&self, node: NodeId) -> usize {
        self.graph
            .neighbors(node)
            .filter(|(_, e)| self.alive[e.index()])
            .count()
    }

    /// Materializes the live subgraph on the full node set.
    pub fn live_graph(&self) -> Graph {
        let mut builder = GraphBuilder::new(self.graph.node_count());
        for id in self.live_edges() {
            let edge = self.graph.edge(id).expect("live edge ids are in range");
            builder
                .add_edge(edge.u().index(), edge.v().index())
                .expect("the live subgraph of a simple graph is simple");
        }
        builder.build()
    }

    /// Returns `true` if the live subgraph is connected (isolated nodes make
    /// it disconnected, matching [`traversal::is_connected`]).
    pub fn is_live_connected(&self) -> bool {
        self.live_components().len() <= 1
    }

    /// The connected components of the live subgraph, each sorted by node
    /// id, ordered by their smallest member.
    pub fn live_components(&self) -> Vec<Vec<NodeId>> {
        Self::components_of(&self.live_graph())
    }

    fn components_of(live: &Graph) -> Vec<Vec<NodeId>> {
        let labels = traversal::connected_components(live);
        let component_count = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut components = vec![Vec::new(); component_count];
        for (node, &label) in labels.iter().enumerate() {
            components[label].push(NodeId(node));
        }
        components
    }

    /// The worst-surviving-subgraph spectral probe: the minimum algebraic
    /// connectivity `λ₂` over the connected components of the live subgraph
    /// that still contain an edge — i.e. the mixing bottleneck of the
    /// worst-connected island the faults leave behind.  Isolated nodes are
    /// skipped (they hold no edge to average over); `None` when no live
    /// edge remains anywhere.
    ///
    /// Each component goes through [`SpectralProfile::compute`], so large
    /// surviving islands take the sparse Lanczos path automatically.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn worst_surviving_connectivity(&self) -> Result<Option<f64>> {
        let live = self.live_graph();
        let mut worst: Option<f64> = None;
        for component in Self::components_of(&live) {
            if component.len() < 2 {
                continue;
            }
            let (sub, _) = live.induced_subgraph(&component)?;
            let lambda2 = SpectralProfile::compute(&sub)?.algebraic_connectivity;
            worst = Some(match worst {
                Some(w) => w.min(lambda2),
                None => lambda2,
            });
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, dumbbell, path};

    #[test]
    fn fresh_view_matches_the_base_graph() {
        let g = complete(5).unwrap();
        let view = DynamicGraphView::new(&g);
        assert_eq!(view.live_edge_count(), g.edge_count());
        assert_eq!(view.dead_edge_count(), 0);
        assert_eq!(view.live_edges().count(), g.edge_count());
        assert!(view.is_live_connected());
        assert_eq!(view.live_components(), vec![g.nodes().collect::<Vec<_>>()]);
        assert_eq!(view.live_graph(), g.clone());
        for v in g.nodes() {
            assert_eq!(view.live_degree(v), g.degree(v));
        }
        assert_eq!(view.graph().node_count(), 5);
    }

    #[test]
    fn kill_and_revive_edges() {
        let g = path(4).unwrap(); // 0-1-2-3
        let mut view = DynamicGraphView::new(&g);
        assert!(view.kill_edge(EdgeId(1)).unwrap());
        assert!(!view.kill_edge(EdgeId(1)).unwrap(), "already dead");
        assert!(!view.is_edge_alive(EdgeId(1)).unwrap());
        assert_eq!(view.live_edge_count(), 2);
        assert_eq!(view.dead_edge_count(), 1);
        assert!(!view.is_live_connected());
        assert_eq!(view.live_components().len(), 2);
        assert!(view.revive_edge(EdgeId(1)).unwrap());
        assert!(!view.revive_edge(EdgeId(1)).unwrap(), "already alive");
        assert!(view.is_live_connected());
        assert!(view.is_edge_alive(EdgeId(9)).is_err());
        assert!(view.kill_edge(EdgeId(9)).is_err());
    }

    #[test]
    fn kill_node_removes_incident_edges() {
        let g = complete(4).unwrap(); // every node has degree 3
        let mut view = DynamicGraphView::new(&g);
        assert_eq!(view.kill_node(NodeId(0)).unwrap(), 3);
        assert_eq!(view.live_degree(NodeId(0)), 0);
        // A second kill changes nothing.
        assert_eq!(view.kill_node(NodeId(0)).unwrap(), 0);
        // Node 0 is now isolated; the remaining triangle survives.
        let components = view.live_components();
        assert_eq!(components.len(), 2);
        assert!(components.iter().any(|c| c == &vec![NodeId(0)]));
        assert!(view.kill_node(NodeId(7)).is_err());
        view.reset();
        assert_eq!(view.live_edge_count(), g.edge_count());
        assert!(view.is_live_connected());
    }

    #[test]
    fn worst_surviving_connectivity_tracks_the_weakest_island() {
        // Dumbbell of two K4s: killing the bridge leaves two cliques whose
        // λ₂ is 4 (complete graph on 4 nodes); the intact dumbbell's λ₂ is
        // far smaller because of the bottleneck.
        let (g, partition) = dumbbell(4).unwrap();
        let mut view = DynamicGraphView::new(&g);
        let intact = view.worst_surviving_connectivity().unwrap().unwrap();
        assert!(intact > 0.0);
        assert!(
            intact < 1.0,
            "bottlenecked λ₂ should be small, got {intact}"
        );
        view.kill_edge(partition.cut_edges()[0]).unwrap();
        let split = view.worst_surviving_connectivity().unwrap().unwrap();
        assert!(
            (split - 4.0).abs() < 1e-6,
            "each surviving K4 has λ₂ = 4, got {split}"
        );
        // Additionally isolating a node inside one clique leaves a K3
        // (λ₂ = 3) as the new worst island; the isolated node is skipped.
        view.kill_node(NodeId(0)).unwrap();
        let worst = view.worst_surviving_connectivity().unwrap().unwrap();
        assert!((worst - 3.0).abs() < 1e-6, "K3 has λ₂ = 3, got {worst}");
    }

    #[test]
    fn worst_surviving_connectivity_is_none_without_live_edges() {
        let g = path(3).unwrap();
        let mut view = DynamicGraphView::new(&g);
        view.kill_edge(EdgeId(0)).unwrap();
        view.kill_edge(EdgeId(1)).unwrap();
        assert_eq!(view.worst_surviving_connectivity().unwrap(), None);
        assert_eq!(view.live_components().len(), 3);
    }
}
